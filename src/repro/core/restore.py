"""Incremental state restoration (§5.2) and fallback recomputation (§5.3).

The :class:`StateLoader` executes a checkout plan against the live kernel:
it loads (only) the diverged co-variables of the target state, deletes
names absent from it, regenerates VarGraphs for everything it touched, and
moves the head — all inside the same kernel process, which is what makes
Kishu's checkout *incremental* and non-intrusive.

The :class:`DataRestorer` reconstructs versioned co-variables whose
payloads are missing (skipped at checkpoint time) or fail to load: it loads
the cell's recorded dependencies — recursively recomputing any of *those*
that are also missing — into a temporary namespace and re-runs the cell's
code (Fig 11 of the paper). Memoizing materialized versions per checkout
makes the recursion follow the shortest load/recompute path through the
checkpoint graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.covariable import (
    CoVariable,
    CoVariablePool,
    CoVarKey,
    group_into_components,
)
from repro.core.graph import CheckpointGraph
from repro.core.planner import CheckoutPlan, CheckoutPlanner
from repro.core.replay import ReplayEngine
from repro.core.retry import RetryPolicy
from repro.core.serialization import SerializerChain, active_globals
from repro.core.storage import CheckpointStore
from repro.errors import (
    DeserializationError,
    RestorationError,
    StorageError,
)
from repro.kernel.namespace import PatchedNamespace
from repro.obs import NO_OBSERVER, EventType, Observer

#: Sentinel distinguishing "name absent" from "name bound to None" when the
#: checkout barrier compares live bindings against its pre-materialization
#: snapshot.
_MISSING = object()


@dataclass
class CheckoutReport:
    """What a checkout did, for verification and benchmarking."""

    target_id: str
    seconds: float = 0.0
    loaded_keys: List[CoVarKey] = field(default_factory=list)
    recomputed_keys: List[CoVarKey] = field(default_factory=list)
    identical_keys: List[CoVarKey] = field(default_factory=list)
    deleted_names: List[str] = field(default_factory=list)
    bytes_loaded: int = 0
    #: Replay-plan declines hit while materializing this checkout
    #: (:class:`~repro.core.replay.PlanDecline` records, reason + detail).
    declines: List[Any] = field(default_factory=list)

    @property
    def touched_names(self) -> Set[str]:
        names: Set[str] = set(self.deleted_names)
        for key in self.loaded_keys + self.recomputed_keys:
            names |= key
        return names


class DataRestorer:
    """Fallback recomputation engine (§5.3)."""

    def __init__(
        self,
        graph: CheckpointGraph,
        store: CheckpointStore,
        serializer: SerializerChain,
        *,
        max_depth: int = 10_000,
        retry: Optional[RetryPolicy] = None,
        replay_engine: Optional[ReplayEngine] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.graph = graph
        self.store = store
        self.serializer = serializer
        self.max_depth = max_depth
        self.retry = retry if retry is not None else RetryPolicy()
        #: Statically planned replay (DESIGN.md §10), tried before the
        #: recursive runtime-dependency recomputation. None disables the
        #: static path entirely (legacy behavior).
        self.replay_engine = replay_engine
        self.observer = observer if observer is not None else NO_OBSERVER

    def materialize(
        self,
        key: CoVarKey,
        node_id: str,
        *,
        globals_for_load: Dict[str, Any],
        cache: Optional[Dict[Tuple[CoVarKey, str], Dict[str, Any]]] = None,
        report: Optional[CheckoutReport] = None,
    ) -> Dict[str, Any]:
        """Produce the value dict of versioned co-variable (key, node_id).

        Tries the stored payload first; on a missing or unloadable payload
        falls back to recursive recomputation. ``cache`` memoizes versions
        across one checkout so shared dependencies load once.
        """
        if cache is None:
            cache = {}
        with self.observer.span(
            "checkout.materialize", covariable=sorted(key), node=node_id
        ):
            return self._materialize(
                key, node_id, globals_for_load, cache, report, depth=0
            )

    def _materialize(
        self,
        key: CoVarKey,
        node_id: str,
        globals_for_load: Dict[str, Any],
        cache: Dict[Tuple[CoVarKey, str], Dict[str, Any]],
        report: Optional[CheckoutReport],
        depth: int,
    ) -> Dict[str, Any]:
        cache_key = (key, node_id)
        if cache_key in cache:
            return cache[cache_key]
        if depth > self.max_depth:
            raise RestorationError(
                f"fallback recomputation exceeded depth {self.max_depth} "
                f"for co-variable {sorted(key)}"
            )

        node = self.graph.get(node_id)
        info = node.updated.get(key)
        values: Optional[Dict[str, Any]] = None
        if info is not None and info.stored:
            values = self._try_load(key, node_id, globals_for_load)
            if values is not None and report is not None:
                report.loaded_keys.append(key)
                report.bytes_loaded += info.size_bytes
        if values is None and self.replay_engine is not None and depth == 0:
            # Preferred fallback: a statically planned minimal replay
            # (DESIGN.md §10). The engine reports its own loads and
            # recomputations and populates ``cache``; it returns None to
            # decline, in which case the legacy recursion below runs.
            # Only tried at the recursion root — inner frames are already
            # executing the legacy strategy's dependency walk.
            values = self.replay_engine.try_materialize(
                key,
                node_id,
                cache=cache,
                report=report,
                load_values=lambda k, v: self._try_load(
                    k, v, globals_for_load
                ),
            )
            if (
                values is not None
                and report is not None
                and key not in report.recomputed_keys
            ):
                report.recomputed_keys.append(key)
        if values is None:
            values = self._recompute(
                key, node_id, globals_for_load, cache, report, depth
            )
            if report is not None:
                report.recomputed_keys.append(key)

        cache[cache_key] = values
        return values

    def _try_load(
        self, key: CoVarKey, node_id: str, globals_for_load: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        try:
            # Transient read faults retry with backoff; anything storage
            # still cannot produce degrades to fallback recomputation.
            payload = self.retry.run(
                lambda: self.store.read_payload(node_id, key)
            )
        except StorageError:
            return None
        if payload.data is None:
            return None
        try:
            with active_globals(globals_for_load):
                values = self.serializer.deserialize(payload.data, payload.serializer)
        except DeserializationError:
            return None
        if not isinstance(values, dict):
            return None
        return values

    def _recompute(
        self,
        key: CoVarKey,
        node_id: str,
        globals_for_load: Dict[str, Any],
        cache: Dict[Tuple[CoVarKey, str], Dict[str, Any]],
        report: Optional[CheckoutReport],
        depth: int,
    ) -> Dict[str, Any]:
        """Re-run CE ``node_id`` on its recorded dependencies (Fig 11)."""
        node = self.graph.get(node_id)
        if not node.cell_source:
            raise RestorationError(
                f"cannot recompute co-variable {sorted(key)}: node {node_id} "
                "records no cell code"
            )
        temp_ns: Dict[str, Any] = {"__builtins__": __builtins__}
        for dep_key, dep_node in node.dependencies.items():
            dep_values = self._materialize(
                dep_key, dep_node, globals_for_load, cache, report, depth + 1
            )
            temp_ns.update(dep_values)
        try:
            with self.observer.span(
                "replay.legacy", node=node_id, covariable=sorted(key), depth=depth
            ):
                exec(compile(node.cell_source, "<recompute>", "exec"), temp_ns)
        except Exception as exc:
            # The kernel commits cells that raise: a cell can error live,
            # leave its (partially mutated) namespace behind, and still
            # produce a checkpoint — conservative dirty-marking then bumps
            # co-variables the cell never wrote. Replaying such a cell
            # reproduces the same deterministic error at the same point,
            # with the same partial effects applied to the materialized
            # dependencies in ``temp_ns``. If every name of the key is
            # present there, the failed replay IS the faithful
            # reconstruction; only a key the replay cannot resolve at all
            # is a hard restoration failure.
            if all(name in temp_ns for name in key):
                self.observer.event(
                    EventType.REPLAY_ERROR_TOLERATED,
                    node=node_id,
                    covariable=sorted(key),
                    error=f"{type(exc).__name__}: {exc}",
                )
                return {name: temp_ns[name] for name in key}
            raise RestorationError(
                f"re-running cell of node {node_id} failed while recomputing "
                f"co-variable {sorted(key)}: {exc!r}"
            ) from exc
        missing = [name for name in key if name not in temp_ns]
        if missing:
            raise RestorationError(
                f"re-running cell of node {node_id} did not produce "
                f"variable(s) {missing} of co-variable {sorted(key)}"
            )
        return {name: temp_ns[name] for name in key}


class StateLoader:
    """Executes checkout plans against the live kernel namespace (§5.2)."""

    def __init__(
        self,
        graph: CheckpointGraph,
        store: CheckpointStore,
        serializer: SerializerChain,
        pool: CoVariablePool,
        *,
        retry: Optional[RetryPolicy] = None,
        observer: Optional[Observer] = None,
        plan_stats: Optional["PlanStats"] = None,
        use_summaries: bool = True,
        use_stubs: bool = True,
        stub_registry: Optional[Any] = None,
    ) -> None:
        self.graph = graph
        self.store = store
        self.serializer = serializer
        self.pool = pool
        self.observer = observer if observer is not None else NO_OBSERVER
        self.planner = CheckoutPlanner(graph)
        self.replay_engine = ReplayEngine(
            graph,
            observer=self.observer,
            stats=plan_stats,
            use_summaries=use_summaries,
            use_stubs=use_stubs,
            stub_registry=stub_registry,
        )
        self.restorer = DataRestorer(
            graph, store, serializer, retry=retry,
            replay_engine=self.replay_engine,
            observer=self.observer,
        )

    def checkout(
        self, target_id: str, namespace: PatchedNamespace
    ) -> CheckoutReport:
        """Restore the kernel to the session state at ``target_id``.

        Follows the paper's three steps: (1) load versioned co-variables to
        update diverged ones, (2) re-generate VarGraphs for what changed,
        (3) move the head.
        """
        started = time.perf_counter()
        # Write-ahead barrier: wait out (and surface failures from) any
        # queued commits so checkout only ever sees a consistent
        # committed prefix. Synchronous stores make this a no-op.
        self.store.drain()
        with self.observer.span("checkout", target=target_id) as root:
            with self.observer.span("checkout.plan"):
                plan = self.planner.plan(self.graph.head_id, target_id)
                self.observer.annotate(
                    loads=len(plan.loads),
                    deletes=len(plan.delete_names),
                    identical=len(plan.identical),
                )
            report = CheckoutReport(target_id=target_id)
            report.identical_keys = sorted(plan.identical, key=sorted)

            # Materialize every diverged co-variable before touching the
            # live namespace, so a failed load cannot leave the state
            # half-updated.
            #
            # Hidden-store barrier: fallback replay/recompute run cell
            # code in scratch namespaces, but functions deserialized by
            # value are rebound to the *live* namespace (so that, once
            # planted, they execute against the session they live in).
            # A replayed cell that calls such a function can therefore
            # write or delete live bindings through ``__globals__``
            # mid-checkout — side effects the plan, which diffs committed
            # states only, cannot account for. Snapshot the binding map
            # and reinstate it before the apply phase.
            bindings_before = namespace.user_items()
            cache: Dict[Tuple[CoVarKey, str], Dict[str, Any]] = {}
            materialized: List[Tuple[CoVarKey, Dict[str, Any]]] = []
            for load in plan.loads:
                values = self.restorer.materialize(
                    load.key,
                    load.node_id,
                    globals_for_load=namespace,
                    cache=cache,
                    report=report,
                )
                materialized.append((load.key, values))
            for name in namespace.user_names() - set(bindings_before):
                namespace.uproot(name)
            for name, obj in bindings_before.items():
                if namespace.peek(name, _MISSING) is not obj:
                    namespace.plant(name, obj)

            # Validate every materialized dict against its co-variable's
            # member names BEFORE mutating the namespace: a payload that
            # deserializes to a dict missing a member (corruption, a buggy
            # reducer) must not crash the apply phase half-way through —
            # after deletions were applied but before all plants landed.
            incomplete = [
                (key, sorted(set(key) - set(values)))
                for key, values in materialized
                if not set(key) <= set(values)
            ]
            if incomplete:
                details = "; ".join(
                    f"co-variable {sorted(key)} missing {missing}"
                    for key, missing in incomplete
                )
                raise RestorationError(
                    f"checkout of {target_id} aborted before touching the "
                    f"namespace: materialized payload(s) incomplete — "
                    f"{details}"
                )

            with self.observer.span("checkout.apply"):
                # Apply deletions, then plant loaded co-variables.
                for name in plan.delete_names:
                    namespace.uproot(name)
                    report.deleted_names.append(name)
                for key, values in materialized:
                    for name in key:
                        namespace.plant(name, values[name])

            with self.observer.span("checkout.resync"):
                self._resync_pool(plan, materialized, namespace)
            self.graph.move_head(target_id)
            root.update(
                {
                    "loaded": len(report.loaded_keys),
                    "recomputed": len(report.recomputed_keys),
                    "bytes_loaded": report.bytes_loaded,
                }
            )
        report.seconds = time.perf_counter() - started
        self.observer.event(
            EventType.CHECKOUT,
            target=target_id,
            loads=len(report.loaded_keys),
            recomputes=len(report.recomputed_keys),
            deletes=len(report.deleted_names),
            declines=len(report.declines),
            bytes_loaded=report.bytes_loaded,
        )
        self.observer.count("checkout.count")
        self.observer.count("checkout.bytes_loaded", report.bytes_loaded)
        return report

    def _resync_pool(
        self,
        plan: CheckoutPlan,
        materialized: List[Tuple[CoVarKey, Dict[str, Any]]],
        namespace: PatchedNamespace,
    ) -> None:
        """Step 2 of checkout: re-generate VarGraphs for updated
        co-variables and re-partition the pool accordingly.

        The rebuilt graphs are re-grouped into connected components rather
        than trusting the plan-key grouping: materialized values may alias
        across plan keys (a shared dependency memoized by the restorer, a
        nondeterministic recompute), and keeping them in separate
        co-variables would violate Definition 1's disjointness invariant —
        every later delta and checkout would then reason over a broken
        partition."""
        touched_names: Set[str] = set(plan.delete_names)
        for key, _ in materialized:
            touched_names |= key
        if not touched_names:
            return

        stale_keys = {
            self.pool.key_of(name)
            for name in touched_names
            if self.pool.key_of(name) is not None
        }
        # The old objects of every stale co-variable were just replaced (or
        # deleted); drop their cached subtrees so the walk cache neither
        # pins dead objects nor splices pre-checkout state.
        builder = self.pool.builder
        if getattr(builder, "cache", None) is not None:
            stale_ids: Set[int] = set()
            for key in stale_keys:
                covariable = self.pool.get(key)
                if covariable is not None:
                    stale_ids |= covariable.id_set
            builder.invalidate_ids(stale_ids)

        items = namespace.user_items()
        restored_names = {
            name for key, _ in materialized for name in key if name in items
        }
        graphs = builder.build_many({name: items[name] for name in restored_names})
        rebuilt = [
            CoVariable(
                names=frozenset(member_names),
                graphs={name: graphs[name] for name in member_names},
            )
            for member_names in group_into_components(graphs)
        ]
        self.pool.replace(stale_keys, rebuilt)
