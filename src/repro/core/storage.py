"""Checkpoint stores: where versioned co-variable payloads live (§6.1).

The paper's implementation stores versioned co-variables in SQLite but
notes "any storage mechanism can be used in its place — even in-memory
ones". Both backends are provided here behind one interface:

* :class:`SQLiteCheckpointStore` — the paper's default; durable, queried
  with normalized tables.
* :class:`InMemoryCheckpointStore` — maximally fast, used by benchmarks
  that want to isolate algorithmic costs from disk I/O.

A store holds (a) node metadata rows — enough to rebuild the checkpoint
graph after a restart — and (b) payload rows: one pickled blob per
versioned co-variable, or a tombstone for payloads that failed to
serialize.

Sessions
--------
One physical store serves many notebook sessions (DESIGN.md §13): every
node/payload row is namespaced by a ``session_id``, and a ``sessions``
registry table records each session's notebook path and lifecycle
status. A store object is a *handle* bound to one session; sibling
handles over the same backend come from :meth:`CheckpointStore.for_session`.
All handles share one connection/lock, so ``":memory:"`` databases work
across sessions too. Databases written by earlier schema versions are
migrated in place (see :meth:`SQLiteCheckpointStore._migrate`); their
existing history lands under the ``"default"`` session.

Crash consistency
-----------------
A checkpoint spans many store writes (one payload per updated
co-variable, plus the node row). A crash between any two of them must
not leave a *torn* node — metadata without payloads, or vice versa —
observable after restart. Stores therefore expose a commit protocol:

    store.begin_checkpoint(node_id)
    store.write_payload(...); ...; store.write_node(...)
    store.commit_checkpoint(node_id)     # or rollback_checkpoint(...)

Between ``begin`` and ``commit`` nothing is visible to readers: the
SQLite backend holds one transaction and stamps the node row with a
``committed`` marker only at commit; the in-memory backend buffers
writes in a staging area merged atomically at commit. ``read_nodes()``
returns committed nodes only, and opening a durable store sweeps any
uncommitted leftovers (see :meth:`CheckpointStore.recover`).

Threading
---------
The SQLite connection is opened with ``check_same_thread=False`` so the
service's background commit writer can share it; every operation is
serialized through one re-entrant lock per backend. ``begin_checkpoint``
*holds* that lock until commit/rollback, so a checkpoint in one thread
is never interleaved with writes or reads from another.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.covariable import CoVarKey, covar_key
from repro.errors import StorageError, StoreBusyError
from repro.obs import EventType, NO_OBSERVER, Observer

try:  # POSIX only; on other platforms the advisory store lock is a no-op.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: Separator for canonical co-variable key encoding. Unit-separator is not
#: a valid Python identifier character, so it cannot collide with names.
_KEY_SEP = "\x1f"

#: The session that single-session stores (and migrated history) live in.
DEFAULT_SESSION_ID = "default"

#: Current durable schema version (``PRAGMA user_version``).
#: v0 = pre-durability (no ``committed`` column); v1 = committed marker;
#: v2 = per-session namespacing (``sessions`` table + ``session_id``).
SCHEMA_VERSION = 2


def encode_key(key: CoVarKey) -> str:
    return _KEY_SEP.join(sorted(key))


def decode_key(encoded: str) -> CoVarKey:
    return covar_key(encoded.split(_KEY_SEP)) if encoded else frozenset()


@dataclass(frozen=True)
class StoredPayload:
    """One versioned co-variable's stored form."""

    node_id: str
    key: CoVarKey
    data: Optional[bytes]  # None when serialization was skipped
    serializer: Optional[str]

    @property
    def stored(self) -> bool:
        return self.data is not None

    @property
    def size_bytes(self) -> int:
        return len(self.data) if self.data is not None else 0


@dataclass(frozen=True)
class StoredNode:
    """Node metadata as persisted; mirrors CheckpointNode minus payloads."""

    node_id: str
    parent_id: Optional[str]
    timestamp: int
    execution_count: int
    cell_source: str
    deleted_keys: Tuple[CoVarKey, ...]
    dependencies: Tuple[Tuple[CoVarKey, str], ...]


@dataclass(frozen=True)
class SessionRecord:
    """One row of the session registry."""

    session_id: str
    notebook_path: Optional[str]
    created_seq: int
    status: str
    checkpoints: int = 0


@dataclass(frozen=True)
class RecoveryReport:
    """What a recovery scan found (and removed) in a checkpoint store.

    ``swept_nodes`` are node ids whose checkpoint never committed — the
    session crashed mid-checkpoint — and were pruned so readers only ever
    see whole checkpoints. ``orphan_payloads`` are (node_id, covar names)
    pairs for payload rows with no surviving node row. Ids from sessions
    other than ``"default"`` are rendered as ``session:node``.
    """

    swept_nodes: Tuple[str, ...] = ()
    orphan_payloads: Tuple[Tuple[str, str], ...] = ()

    @property
    def clean(self) -> bool:
        return not self.swept_nodes and not self.orphan_payloads

    def summary(self) -> str:
        if self.clean:
            return "store is clean: no torn checkpoints found"
        parts = []
        if self.swept_nodes:
            parts.append(
                f"swept {len(self.swept_nodes)} uncommitted checkpoint(s): "
                + ", ".join(self.swept_nodes)
            )
        if self.orphan_payloads:
            parts.append(f"pruned {len(self.orphan_payloads)} orphan payload(s)")
        return "; ".join(parts)


class CheckpointStore:
    """Interface both backends implement."""

    #: Recovery scan result from the most recent open/recover, if any.
    last_recovery: Optional[RecoveryReport] = None
    #: Observability sink (DESIGN.md §11); the disabled default makes
    #: every emission a single attribute check. Sessions rebind this to
    #: their live observer; recovery scans report through it.
    observer: Observer = NO_OBSERVER
    #: Which session's rows this handle reads and writes.
    session_id: str = DEFAULT_SESSION_ID

    def write_node(self, node: StoredNode) -> None:
        raise NotImplementedError

    def read_nodes(self) -> List[StoredNode]:
        raise NotImplementedError

    def write_payload(self, payload: StoredPayload) -> None:
        raise NotImplementedError

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        raise NotImplementedError

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        raise NotImplementedError

    def total_payload_bytes(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; in-memory stores are a no-op."""

    # -- write-ahead barrier ---------------------------------------------------

    def flush(self) -> None:
        """Barrier: wait until every previously accepted write is applied.

        Synchronous stores apply writes immediately, so this is a no-op;
        write-ahead wrappers (``repro.service.queue``) override it.
        """

    def drain(self) -> None:
        """:meth:`flush`, then surface any asynchronous write failures.

        Checkout calls this first so it only ever sees a consistent
        committed prefix.
        """
        self.flush()

    def sync(self) -> None:
        """Durability barrier (fsync); no-op for non-durable backends."""

    # -- session registry ------------------------------------------------------

    def for_session(
        self, session_id: str, *, notebook_path: Optional[str] = None
    ) -> "CheckpointStore":
        """A sibling handle over the same backend, bound to ``session_id``
        (registering it if new). Handles share one connection and lock."""
        raise NotImplementedError

    def list_sessions(self) -> List[SessionRecord]:
        raise NotImplementedError

    def register_session(
        self,
        session_id: str,
        notebook_path: Optional[str] = None,
        *,
        status: str = "detached",
    ) -> None:
        """Idempotently add a session to the registry."""
        raise NotImplementedError

    def rename_session(self, session_id: str, notebook_path: str) -> None:
        """Repoint a session at a new notebook path (the "rename
        catastrophe" fix: identity is the session id, the path is mutable
        metadata). Raises :class:`StorageError` for unknown sessions."""
        raise NotImplementedError

    def set_session_status(self, session_id: str, status: str) -> None:
        raise NotImplementedError

    def has_session(self, session_id: str) -> bool:
        raise NotImplementedError

    # -- atomic checkpoint protocol --------------------------------------------

    def begin_checkpoint(self, node_id: str) -> None:
        """Start buffering writes for one checkpoint; nothing is visible
        to readers until :meth:`commit_checkpoint`."""
        raise NotImplementedError

    def commit_checkpoint(self, node_id: str) -> None:
        """Atomically publish every write since :meth:`begin_checkpoint`."""
        raise NotImplementedError

    def rollback_checkpoint(self, node_id: str) -> None:
        """Discard every write since :meth:`begin_checkpoint`."""
        raise NotImplementedError

    def release_crashed_checkpoint(self) -> None:
        """Last-gasp lock hygiene for a dying writer thread.

        A thread that took a :class:`~repro.errors.SimulatedCrash` (or any
        fatal error) mid-checkpoint still owns the backend lock; calling
        this from that thread rolls the open transaction back and releases
        the lock so the rest of the process is not deadlocked. Durable
        state afterwards equals what a real process crash would leave.
        """

    @property
    def in_checkpoint(self) -> bool:
        """Whether a begin_checkpoint is currently open."""
        return False

    @contextmanager
    def checkpoint(self, node_id: str) -> Iterator["CheckpointStore"]:
        """Commit-protocol scope: commits on success, rolls back on error.

        A :class:`~repro.errors.SimulatedCrash` (a BaseException) escapes
        *without* rolling back — a crashed process gets no chance to clean
        up; that is exactly the state recovery-on-open must handle.
        """
        self.begin_checkpoint(node_id)
        try:
            yield self
        except Exception:
            self.rollback_checkpoint(node_id)
            raise
        else:
            self.commit_checkpoint(node_id)

    def recover(self) -> RecoveryReport:
        """Sweep torn state (uncommitted nodes, orphan payloads).

        Durable stores run this automatically on open; it is also safe to
        invoke at any quiescent point. Returns what was pruned.
        """
        return self._record_recovery(RecoveryReport())

    def _record_recovery(self, report: RecoveryReport) -> RecoveryReport:
        """Publish a recovery scan: remember it and, when it actually
        swept something, emit a ``recovery`` event (satellite of
        DESIGN.md §11 — recovery actions must be visible outside the
        report object)."""
        self.last_recovery = report
        if not report.clean:
            self.observer.event(
                EventType.RECOVERY,
                swept_nodes=list(report.swept_nodes),
                orphan_payloads=[list(pair) for pair in report.orphan_payloads],
            )
            self.observer.count("store.recoveries")
        return report

    def _emit_rollback_on_close(self, node_id: str, session_id: str) -> None:
        """An open checkpoint was rolled back because the store is
        closing — never silently abandoned (DESIGN.md §13 lifecycle
        contract)."""
        self.observer.event(
            EventType.CHECKPOINT_ROLLED_BACK_ON_CLOSE,
            node=node_id,
            session=session_id,
        )
        self.observer.count("store.rollback_on_close")

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _node_sort_key(order: int, node: StoredNode) -> Tuple[int, int, int]:
    """Deterministic node ordering: timestamp, then execution count, then
    insertion order. Timestamps alone are not unique (two checkpoints in
    the same clock second), and graph reconstruction requires parents to
    sort before children."""
    return (node.timestamp, node.execution_count, order)


def _public_id(session_id: str, node_id: str) -> str:
    """Render a namespaced node id for reports: plain for the default
    session, ``session:node`` otherwise."""
    return node_id if session_id == DEFAULT_SESSION_ID else f"{session_id}:{node_id}"


class _MemoryBackend:
    """Shared state behind every session handle of one in-memory store."""

    __slots__ = (
        "lock",
        "sessions",
        "session_seq",
        "nodes",
        "node_order",
        "insertions",
        "payloads",
    )

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.sessions: Dict[str, Dict[str, object]] = {}
        self.session_seq = 0
        self.nodes: Dict[str, Dict[str, StoredNode]] = {}
        self.node_order: Dict[str, Dict[str, int]] = {}
        self.insertions: Dict[str, int] = {}
        # Payloads indexed by session, node_id, then encoded co-variable
        # key, so payloads_of() is O(payloads of that node).
        self.payloads: Dict[str, Dict[str, Dict[str, StoredPayload]]] = {}


class InMemoryCheckpointStore(CheckpointStore):
    """Dict-backed store, for tests and I/O-free benchmarking.

    Checkpoint atomicity is provided by staged-dict buffering: between
    ``begin_checkpoint`` and ``commit_checkpoint`` all writes land in a
    staging area invisible to readers; commit merges it in one step.
    Staging is per-handle, so independent sessions can stage concurrently;
    the merge itself happens under the backend lock.
    """

    def __init__(
        self,
        session_id: str = DEFAULT_SESSION_ID,
        *,
        notebook_path: Optional[str] = None,
        _backend: Optional[_MemoryBackend] = None,
    ) -> None:
        self.session_id = session_id
        self._backend = _backend if _backend is not None else _MemoryBackend()
        self._txn_node: Optional[str] = None
        self._staged_nodes: Dict[str, StoredNode] = {}
        self._staged_payloads: Dict[str, Dict[str, StoredPayload]] = {}
        self.last_recovery = None
        self.register_session(session_id, notebook_path)

    # -- session registry ------------------------------------------------------

    def for_session(
        self, session_id: str, *, notebook_path: Optional[str] = None
    ) -> "InMemoryCheckpointStore":
        return InMemoryCheckpointStore(
            session_id, notebook_path=notebook_path, _backend=self._backend
        )

    def register_session(
        self,
        session_id: str,
        notebook_path: Optional[str] = None,
        *,
        status: str = "detached",
    ) -> None:
        backend = self._backend
        with backend.lock:
            record = backend.sessions.get(session_id)
            if record is None:
                backend.session_seq += 1
                backend.sessions[session_id] = {
                    "notebook_path": notebook_path,
                    "created_seq": backend.session_seq,
                    "status": status,
                }
            elif notebook_path is not None and record["notebook_path"] is None:
                record["notebook_path"] = notebook_path

    def list_sessions(self) -> List[SessionRecord]:
        backend = self._backend
        with backend.lock:
            records = [
                SessionRecord(
                    session_id=sid,
                    notebook_path=meta["notebook_path"],  # type: ignore[arg-type]
                    created_seq=meta["created_seq"],  # type: ignore[arg-type]
                    status=meta["status"],  # type: ignore[arg-type]
                    checkpoints=len(backend.nodes.get(sid, {})),
                )
                for sid, meta in backend.sessions.items()
            ]
        return sorted(records, key=lambda record: record.created_seq)

    def rename_session(self, session_id: str, notebook_path: str) -> None:
        with self._backend.lock:
            record = self._backend.sessions.get(session_id)
            if record is None:
                raise StorageError(f"unknown session {session_id!r}")
            record["notebook_path"] = notebook_path

    def set_session_status(self, session_id: str, status: str) -> None:
        with self._backend.lock:
            record = self._backend.sessions.get(session_id)
            if record is None:
                raise StorageError(f"unknown session {session_id!r}")
            record["status"] = status

    def has_session(self, session_id: str) -> bool:
        with self._backend.lock:
            return session_id in self._backend.sessions

    # -- per-session views of the backend --------------------------------------

    def _session_nodes(self) -> Dict[str, StoredNode]:
        return self._backend.nodes.setdefault(self.session_id, {})

    def _session_order(self) -> Dict[str, int]:
        return self._backend.node_order.setdefault(self.session_id, {})

    def _session_payloads(self) -> Dict[str, Dict[str, StoredPayload]]:
        return self._backend.payloads.setdefault(self.session_id, {})

    # -- writes ----------------------------------------------------------------

    def write_node(self, node: StoredNode) -> None:
        if self._txn_node is not None:
            self._staged_nodes[node.node_id] = node
            return
        with self._backend.lock:
            self._store_node(node)

    def write_payload(self, payload: StoredPayload) -> None:
        if self._txn_node is not None:
            self._staged_payloads.setdefault(payload.node_id, {})[
                encode_key(payload.key)
            ] = payload
            return
        with self._backend.lock:
            self._session_payloads().setdefault(payload.node_id, {})[
                encode_key(payload.key)
            ] = payload

    def _store_node(self, node: StoredNode) -> None:
        order = self._session_order()
        if node.node_id not in order:
            count = self._backend.insertions.get(self.session_id, 0)
            order[node.node_id] = count
            self._backend.insertions[self.session_id] = count + 1
        self._session_nodes()[node.node_id] = node

    # -- atomic checkpoint protocol --------------------------------------------

    def begin_checkpoint(self, node_id: str) -> None:
        if self._txn_node is not None:
            raise StorageError(
                f"checkpoint {self._txn_node!r} already in progress"
            )
        self._txn_node = node_id

    def commit_checkpoint(self, node_id: str) -> None:
        if self._txn_node != node_id:
            raise StorageError(
                f"commit_checkpoint({node_id!r}) without matching begin"
            )
        with self._backend.lock:
            for node in self._staged_nodes.values():
                self._store_node(node)
            payloads = self._session_payloads()
            for owner, staged in self._staged_payloads.items():
                payloads.setdefault(owner, {}).update(staged)
        self._clear_stage()

    def rollback_checkpoint(self, node_id: str) -> None:
        self._clear_stage()

    def release_crashed_checkpoint(self) -> None:
        self._clear_stage()

    def _clear_stage(self) -> None:
        self._txn_node = None
        self._staged_nodes = {}
        self._staged_payloads = {}

    @property
    def in_checkpoint(self) -> bool:
        return self._txn_node is not None

    # -- reads (committed state only) ------------------------------------------

    def read_nodes(self) -> List[StoredNode]:
        with self._backend.lock:
            order = self._session_order()
            return sorted(
                self._session_nodes().values(),
                key=lambda node: _node_sort_key(order[node.node_id], node),
            )

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        with self._backend.lock:
            try:
                return self._session_payloads()[node_id][encode_key(key)]
            except KeyError:
                raise StorageError(
                    f"no payload for co-variable {sorted(key)} at node {node_id}"
                ) from None

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        with self._backend.lock:
            return list(self._session_payloads().get(node_id, {}).values())

    def total_payload_bytes(self) -> int:
        with self._backend.lock:
            return sum(
                payload.size_bytes
                for payloads in self._session_payloads().values()
                for payload in payloads.values()
            )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        # Never silently abandon an open checkpoint: roll it back and say
        # so. The staging area would otherwise leak into the next begin.
        if self._txn_node is not None:
            open_node = self._txn_node
            self.rollback_checkpoint(open_node)
            self._emit_rollback_on_close(open_node, self.session_id)

    # -- recovery --------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Sweep staged leftovers (an abandoned checkpoint — the in-memory
        analogue of a crash) and payloads whose node never committed."""
        swept = tuple(sorted(self._staged_nodes))
        self._clear_stage()
        orphans: List[Tuple[str, str]] = []
        with self._backend.lock:
            nodes = self._session_nodes()
            payloads = self._session_payloads()
            for node_id in sorted(set(payloads) - set(nodes)):
                for encoded in sorted(payloads[node_id]):
                    orphans.append((node_id, encoded))
                del payloads[node_id]
        report = RecoveryReport(swept_nodes=swept, orphan_payloads=tuple(orphans))
        return self._record_recovery(report)


#: Process-local registry of held advisory store locks: realpath of the
#: database → ``[lock fd, refcount]``. ``flock`` locks are per open file
#: description, so a second in-process open of the same database must
#: share the first open's fd instead of re-locking (which would block
#: against ourselves and misreport the database as busy).
_STORE_LOCKS: Dict[str, List] = {}
_STORE_LOCKS_GUARD = threading.Lock()


def _acquire_store_lock(path: str) -> Optional[str]:
    """Take the cross-process advisory lock for database ``path``.

    Returns the registry token to pass to :func:`_release_store_lock`
    (``None`` for in-memory databases and non-POSIX platforms). Raises
    :class:`StoreBusyError` when another process holds the lock.
    """
    if fcntl is None or path == ":memory:":
        return None
    real = os.path.realpath(path)
    with _STORE_LOCKS_GUARD:
        entry = _STORE_LOCKS.get(real)
        if entry is not None:
            entry[1] += 1
            return real
        lock_path = real + ".lock"
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise StoreBusyError(
                f"checkpoint database {path!r} is open in another process "
                f"(advisory lock {lock_path!r} is held)"
            ) from None
        _STORE_LOCKS[real] = [fd, 1]
        return real


def _release_store_lock(token: Optional[str]) -> None:
    """Drop one reference on ``token``; the last drop unlocks the file."""
    if token is None:
        return
    with _STORE_LOCKS_GUARD:
        entry = _STORE_LOCKS.get(token)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del _STORE_LOCKS[token]
            try:
                fcntl.flock(entry[0], fcntl.LOCK_UN)
            finally:
                os.close(entry[0])


class _SQLiteBackend:
    """Shared connection state behind every session handle of one database.

    ``check_same_thread=False`` lets the service's background commit
    writer share the connection; ``lock`` serializes every use of it.
    ``txn_hold`` records that ``begin_checkpoint`` is holding the lock
    until its matching commit/rollback.
    """

    __slots__ = ("path", "conn", "lock", "txn_node", "txn_session", "txn_hold", "closed")

    def __init__(self, path: str) -> None:
        self.path = path
        # Autocommit mode: transactions are managed explicitly so the
        # checkpoint protocol can hold one open across many writes.
        self.conn = sqlite3.connect(
            path, isolation_level=None, check_same_thread=False
        )
        self.lock = threading.RLock()
        self.txn_node: Optional[str] = None
        self.txn_session: Optional[str] = None
        self.txn_hold = False
        self.closed = False


class SQLiteCheckpointStore(CheckpointStore):
    """SQLite-backed store — the paper's default storage mechanism.

    Pass ``":memory:"`` for an ephemeral database or a path for a durable
    one. The schema is normalized: ``sessions``, ``nodes``,
    ``node_deletes``, ``node_deps``, and ``payloads``; every data row
    carries a ``session_id``.

    Checkpoint atomicity: ``begin_checkpoint`` opens one SQLite
    transaction; node rows written inside it carry ``committed = 0``
    until ``commit_checkpoint`` flips the marker and commits. A process
    crash mid-checkpoint (connection dropped without COMMIT) therefore
    loses the whole transaction; if torn rows do reach disk through a
    non-transactional path, the ``committed`` marker keeps them invisible
    to :meth:`read_nodes` and the recovery scan on open sweeps them.
    """

    _TABLES = {
        "sessions": """
            CREATE TABLE IF NOT EXISTS sessions (
                session_id    TEXT PRIMARY KEY,
                notebook_path TEXT,
                created_seq   INTEGER NOT NULL,
                status        TEXT NOT NULL DEFAULT 'detached'
            )""",
        "nodes": """
            CREATE TABLE IF NOT EXISTS nodes (
                session_id      TEXT NOT NULL DEFAULT 'default',
                node_id         TEXT NOT NULL,
                parent_id       TEXT,
                timestamp       INTEGER NOT NULL,
                execution_count INTEGER NOT NULL,
                cell_source     TEXT NOT NULL,
                committed       INTEGER NOT NULL DEFAULT 1,
                PRIMARY KEY (session_id, node_id)
            )""",
        "node_deletes": """
            CREATE TABLE IF NOT EXISTS node_deletes (
                session_id TEXT NOT NULL DEFAULT 'default',
                node_id    TEXT NOT NULL,
                covar_key  TEXT NOT NULL,
                PRIMARY KEY (session_id, node_id, covar_key)
            )""",
        "node_deps": """
            CREATE TABLE IF NOT EXISTS node_deps (
                session_id TEXT NOT NULL DEFAULT 'default',
                node_id    TEXT NOT NULL,
                covar_key  TEXT NOT NULL,
                ref_node   TEXT NOT NULL,
                PRIMARY KEY (session_id, node_id, covar_key)
            )""",
        "payloads": """
            CREATE TABLE IF NOT EXISTS payloads (
                session_id TEXT NOT NULL DEFAULT 'default',
                node_id    TEXT NOT NULL,
                covar_key  TEXT NOT NULL,
                data       BLOB,
                serializer TEXT,
                PRIMARY KEY (session_id, node_id, covar_key)
            )""",
    }
    _INDEXES = (
        "CREATE INDEX IF NOT EXISTS idx_payloads_node"
        " ON payloads (session_id, node_id)",
    )
    #: v1 column lists, used to carry rows through the v1→v2 rebuild.
    _V1_COLUMNS = {
        "nodes": "node_id, parent_id, timestamp, execution_count, cell_source, committed",
        "node_deletes": "node_id, covar_key",
        "node_deps": "node_id, covar_key, ref_node",
        "payloads": "node_id, covar_key, data, serializer",
    }

    def __init__(
        self,
        path: str = ":memory:",
        session_id: str = DEFAULT_SESSION_ID,
        *,
        notebook_path: Optional[str] = None,
        _backend: Optional[_SQLiteBackend] = None,
    ) -> None:
        self.path = path
        self.session_id = session_id
        self._lock_token: Optional[str] = None
        if _backend is not None:
            self._backend = _backend
            self._owns_backend = False
            self.register_session(session_id, notebook_path)
            self.last_recovery = None
            return
        # Cross-process exclusivity first: two processes writing one
        # database interleave node sequences, so the open fails fast
        # with StoreBusyError instead (in-process double-opens refcount).
        self._lock_token = _acquire_store_lock(path)
        try:
            backend = _SQLiteBackend(path)
        except BaseException:
            _release_store_lock(self._lock_token)
            raise
        try:
            with backend.lock:
                self._migrate(backend.conn)
            self._backend = backend
            self._owns_backend = True
            self.register_session(session_id, notebook_path)
            self.last_recovery = self.recover()
        except BaseException:
            # Never leak the OS-level handle when open fails — a corrupt
            # or wrong-schema file reaches here via `_open_store_strict`.
            backend.conn.close()
            _release_store_lock(self._lock_token)
            raise

    @property
    def _conn(self) -> sqlite3.Connection:
        return self._backend.conn

    def _migrate(self, conn: sqlite3.Connection) -> None:
        """Bring older databases up to the current schema in place.

        v0 (pre-durability, no ``committed`` column) gains the marker with
        rows presumed committed; v1 (single-session) is rebuilt with
        ``session_id`` namespacing, its history assigned to the
        ``"default"`` session. Fresh databases are created at v2 directly.
        """
        existing = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "nodes" in existing:
            columns = {
                row[1] for row in conn.execute("PRAGMA table_info(nodes)")
            }
            if "committed" not in columns:
                conn.execute(
                    "ALTER TABLE nodes ADD COLUMN committed INTEGER NOT NULL DEFAULT 1"
                )
            if "session_id" not in columns:
                self._rebuild_v1_to_v2(conn)
        for ddl in self._TABLES.values():
            conn.execute(ddl)
        for ddl in self._INDEXES:
            conn.execute(ddl)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    def _rebuild_v1_to_v2(self, conn: sqlite3.Connection) -> None:
        """One transaction: rename old tables aside, create the namespaced
        shape, copy rows under the default session preserving rowid order,
        drop the old tables."""
        tables = tuple(self._V1_COLUMNS)
        conn.execute("BEGIN IMMEDIATE")
        try:
            for table in tables:
                conn.execute(f"ALTER TABLE {table} RENAME TO {table}_v1")
            conn.execute("DROP INDEX IF EXISTS idx_payloads_node")
            for table in tables:
                # Strip IF NOT EXISTS semantics are fine: the originals
                # were just renamed away.
                conn.execute(self._TABLES[table])
            for table, columns in self._V1_COLUMNS.items():
                conn.execute(
                    f"INSERT INTO {table} (session_id, {columns})"
                    f" SELECT ?, {columns} FROM {table}_v1 ORDER BY rowid",
                    (DEFAULT_SESSION_ID,),
                )
            for table in tables:
                conn.execute(f"DROP TABLE {table}_v1")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    # -- session registry ------------------------------------------------------

    def for_session(
        self, session_id: str, *, notebook_path: Optional[str] = None
    ) -> "SQLiteCheckpointStore":
        if self._backend.closed:
            raise StorageError("store is closed")
        return SQLiteCheckpointStore(
            self.path,
            session_id,
            notebook_path=notebook_path,
            _backend=self._backend,
        )

    def register_session(
        self,
        session_id: str,
        notebook_path: Optional[str] = None,
        *,
        status: str = "detached",
    ) -> None:
        with self._backend.lock:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO sessions"
                " (session_id, notebook_path, created_seq, status) VALUES"
                " (?, ?, (SELECT COALESCE(MAX(created_seq), 0) + 1 FROM sessions), ?)",
                (session_id, notebook_path, status),
            )
            if cursor.rowcount == 0 and notebook_path is not None:
                self._conn.execute(
                    "UPDATE sessions SET notebook_path = ?"
                    " WHERE session_id = ? AND notebook_path IS NULL",
                    (notebook_path, session_id),
                )

    def list_sessions(self) -> List[SessionRecord]:
        with self._backend.lock:
            rows = self._conn.execute(
                "SELECT s.session_id, s.notebook_path, s.created_seq, s.status,"
                " (SELECT COUNT(*) FROM nodes n"
                "  WHERE n.session_id = s.session_id AND n.committed = 1)"
                " FROM sessions s ORDER BY s.created_seq"
            ).fetchall()
        return [
            SessionRecord(
                session_id=sid,
                notebook_path=path,
                created_seq=seq,
                status=status,
                checkpoints=checkpoints,
            )
            for sid, path, seq, status, checkpoints in rows
        ]

    def rename_session(self, session_id: str, notebook_path: str) -> None:
        with self._backend.lock:
            cursor = self._conn.execute(
                "UPDATE sessions SET notebook_path = ? WHERE session_id = ?",
                (notebook_path, session_id),
            )
            if cursor.rowcount == 0:
                raise StorageError(f"unknown session {session_id!r}")

    def set_session_status(self, session_id: str, status: str) -> None:
        with self._backend.lock:
            cursor = self._conn.execute(
                "UPDATE sessions SET status = ? WHERE session_id = ?",
                (status, session_id),
            )
            if cursor.rowcount == 0:
                raise StorageError(f"unknown session {session_id!r}")

    def has_session(self, session_id: str) -> bool:
        with self._backend.lock:
            row = self._conn.execute(
                "SELECT 1 FROM sessions WHERE session_id = ?", (session_id,)
            ).fetchone()
        return row is not None

    # -- writes ----------------------------------------------------------------

    @contextmanager
    def _write_scope(self) -> Iterator[None]:
        """One write's transaction scope: inside an open checkpoint this is
        a no-op (the outer transaction owns atomicity); standalone writes
        get their own immediate transaction. Always entered under the
        backend lock — an open checkpoint in another thread blocks here
        until it commits."""
        backend = self._backend
        with backend.lock:
            if backend.txn_node is not None:
                yield
                return
            backend.conn.execute("BEGIN IMMEDIATE")
            try:
                yield
            except BaseException:
                backend.conn.execute("ROLLBACK")
                raise
            backend.conn.execute("COMMIT")

    def write_node(self, node: StoredNode) -> None:
        with self._write_scope():
            committed = 0 if self._backend.txn_node is not None else 1
            self._conn.execute(
                "INSERT OR REPLACE INTO nodes VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    self.session_id,
                    node.node_id,
                    node.parent_id,
                    node.timestamp,
                    node.execution_count,
                    node.cell_source,
                    committed,
                ),
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO node_deletes VALUES (?, ?, ?)",
                [
                    (self.session_id, node.node_id, encode_key(key))
                    for key in node.deleted_keys
                ],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO node_deps VALUES (?, ?, ?, ?)",
                [
                    (self.session_id, node.node_id, encode_key(key), ref)
                    for key, ref in node.dependencies
                ],
            )

    def write_payload(self, payload: StoredPayload) -> None:
        with self._write_scope():
            self._conn.execute(
                "INSERT OR REPLACE INTO payloads VALUES (?, ?, ?, ?, ?)",
                (
                    self.session_id,
                    payload.node_id,
                    encode_key(payload.key),
                    payload.data,
                    payload.serializer,
                ),
            )

    # -- atomic checkpoint protocol --------------------------------------------

    def begin_checkpoint(self, node_id: str) -> None:
        backend = self._backend
        # Hold the backend lock until commit/rollback: a checkpoint in
        # one thread is never interleaved with another thread's writes.
        backend.lock.acquire()
        try:
            if backend.txn_node is not None:
                raise StorageError(
                    f"checkpoint {backend.txn_node!r} already in progress"
                )
            backend.conn.execute("BEGIN IMMEDIATE")
            backend.txn_node = node_id
            backend.txn_session = self.session_id
            backend.txn_hold = True
        except BaseException:
            backend.lock.release()
            raise

    def commit_checkpoint(self, node_id: str) -> None:
        backend = self._backend
        with backend.lock:
            if backend.txn_node != node_id or backend.txn_session != self.session_id:
                raise StorageError(
                    f"commit_checkpoint({node_id!r}) without matching begin"
                )
            backend.conn.execute(
                "UPDATE nodes SET committed = 1 WHERE session_id = ? AND node_id = ?",
                (self.session_id, node_id),
            )
            backend.conn.execute("COMMIT")
            backend.txn_node = None
            backend.txn_session = None
            self._release_txn_hold()

    def rollback_checkpoint(self, node_id: str) -> None:
        backend = self._backend
        with backend.lock:
            if backend.conn.in_transaction:
                backend.conn.execute("ROLLBACK")
            backend.txn_node = None
            backend.txn_session = None
            # Belt-and-braces: if any rows for this checkpoint reached disk
            # outside the transaction, remove them now.
            self._sweep_nodes(
                [(self.session_id, node_id)], only_uncommitted=True
            )
            self._release_txn_hold()

    def release_crashed_checkpoint(self) -> None:
        backend = self._backend
        if backend.txn_node is None:
            return
        try:
            if backend.conn.in_transaction:
                backend.conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass
        backend.txn_node = None
        backend.txn_session = None
        self._release_txn_hold()

    def _release_txn_hold(self) -> None:
        backend = self._backend
        if backend.txn_hold:
            backend.txn_hold = False
            try:
                backend.lock.release()
            except RuntimeError:
                # The holding thread died without releasing (a simulated
                # crash); nothing to release from this thread.
                pass

    @property
    def in_checkpoint(self) -> bool:
        backend = self._backend
        return (
            backend.txn_node is not None
            and backend.txn_session == self.session_id
        )

    # -- reads (committed state only) ------------------------------------------

    def read_nodes(self) -> List[StoredNode]:
        with self._backend.lock:
            nodes = []
            rows = self._conn.execute(
                "SELECT node_id, parent_id, timestamp, execution_count, cell_source"
                " FROM nodes WHERE session_id = ? AND committed = 1"
                " ORDER BY timestamp, execution_count, rowid",
                (self.session_id,),
            ).fetchall()
            for node_id, parent_id, timestamp, execution_count, cell_source in rows:
                deleted = tuple(
                    decode_key(row[0])
                    for row in self._conn.execute(
                        "SELECT covar_key FROM node_deletes"
                        " WHERE session_id = ? AND node_id = ?",
                        (self.session_id, node_id),
                    )
                )
                deps = tuple(
                    (decode_key(row[0]), row[1])
                    for row in self._conn.execute(
                        "SELECT covar_key, ref_node FROM node_deps"
                        " WHERE session_id = ? AND node_id = ?",
                        (self.session_id, node_id),
                    )
                )
                nodes.append(
                    StoredNode(
                        node_id=node_id,
                        parent_id=parent_id,
                        timestamp=timestamp,
                        execution_count=execution_count,
                        cell_source=cell_source,
                        deleted_keys=deleted,
                        dependencies=deps,
                    )
                )
            return nodes

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        with self._backend.lock:
            row = self._conn.execute(
                "SELECT data, serializer FROM payloads"
                " WHERE session_id = ? AND node_id = ? AND covar_key = ?",
                (self.session_id, node_id, encode_key(key)),
            ).fetchone()
        if row is None:
            raise StorageError(
                f"no payload for co-variable {sorted(key)} at node {node_id}"
            )
        data, serializer = row
        return StoredPayload(node_id=node_id, key=key, data=data, serializer=serializer)

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        with self._backend.lock:
            rows = self._conn.execute(
                "SELECT covar_key, data, serializer FROM payloads"
                " WHERE session_id = ? AND node_id = ?",
                (self.session_id, node_id),
            ).fetchall()
        return [
            StoredPayload(
                node_id=node_id,
                key=decode_key(encoded),
                data=data,
                serializer=serializer,
            )
            for encoded, data, serializer in rows
        ]

    def total_payload_bytes(self) -> int:
        with self._backend.lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM payloads"
                " WHERE session_id = ? AND data IS NOT NULL",
                (self.session_id,),
            ).fetchone()
        return int(row[0])

    # -- durability ------------------------------------------------------------

    def sync(self) -> None:
        """Fsync the database file — the commit queue's batch-level
        durability barrier. SQLite already fsyncs at COMMIT under its
        default ``synchronous`` level; this is the explicit barrier for
        relaxed-durability configurations."""
        if self.path == ":memory:":
            return
        fd = os.open(self.path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- recovery --------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Sweep uncommitted nodes and orphan payloads; runs on every open.

        The sweep is global — torn state from *any* session is crash
        debris. An open checkpoint transaction at recovery time is itself
        crash debris (the writer died holding it): it is rolled back — the
        same outcome a dropped connection produces — before the sweep.
        """
        backend = self._backend
        with backend.lock:
            if backend.conn.in_transaction:
                backend.conn.execute("ROLLBACK")
            backend.txn_node = None
            backend.txn_session = None
            self._release_txn_hold()
            swept = [
                (row[0], row[1])
                for row in self._conn.execute(
                    "SELECT session_id, node_id FROM nodes WHERE committed = 0"
                    " ORDER BY session_id, node_id"
                )
            ]
            orphans = self._conn.execute(
                "SELECT session_id, node_id, covar_key FROM payloads p"
                " WHERE NOT EXISTS (SELECT 1 FROM nodes n"
                "  WHERE n.session_id = p.session_id AND n.node_id = p.node_id"
                "  AND n.committed = 1)"
                " ORDER BY session_id, node_id, covar_key"
            ).fetchall()
            if swept or orphans:
                with self._write_scope():
                    self._sweep_nodes(swept, only_uncommitted=True)
                    self._conn.execute(
                        "DELETE FROM payloads WHERE NOT EXISTS"
                        " (SELECT 1 FROM nodes n WHERE n.session_id = payloads.session_id"
                        "  AND n.node_id = payloads.node_id)"
                    )
        report = RecoveryReport(
            swept_nodes=tuple(_public_id(sid, nid) for sid, nid in swept),
            orphan_payloads=tuple(
                (_public_id(sid, nid), key) for sid, nid, key in orphans
            ),
        )
        return self._record_recovery(report)

    def _sweep_nodes(
        self, keys: List[Tuple[str, str]], *, only_uncommitted: bool
    ) -> None:
        for session_id, node_id in keys:
            if only_uncommitted:
                self._conn.execute(
                    "DELETE FROM nodes WHERE session_id = ? AND node_id = ?"
                    " AND committed = 0",
                    (session_id, node_id),
                )
            else:
                self._conn.execute(
                    "DELETE FROM nodes WHERE session_id = ? AND node_id = ?",
                    (session_id, node_id),
                )
            still_there = self._conn.execute(
                "SELECT 1 FROM nodes WHERE session_id = ? AND node_id = ?",
                (session_id, node_id),
            ).fetchone()
            if still_there is None:
                for table in ("node_deletes", "node_deps", "payloads"):
                    self._conn.execute(
                        f"DELETE FROM {table} WHERE session_id = ? AND node_id = ?",
                        (session_id, node_id),
                    )

    def close(self) -> None:
        backend = self._backend
        if backend.closed:
            return
        with backend.lock:
            open_node = backend.txn_node
            if open_node is not None and (
                self._owns_backend or backend.txn_session == self.session_id
            ):
                # Roll the open checkpoint back explicitly (the same
                # outcome closing the connection mid-transaction produces)
                # and say so, instead of silently abandoning the staged
                # begin-marker.
                rolled_session = backend.txn_session or self.session_id
                if backend.conn.in_transaction:
                    backend.conn.execute("ROLLBACK")
                backend.txn_node = None
                backend.txn_session = None
                self._release_txn_hold()
                self._emit_rollback_on_close(open_node, rolled_session)
            if self._owns_backend:
                backend.closed = True
                backend.conn.close()
                _release_store_lock(self._lock_token)
                self._lock_token = None
