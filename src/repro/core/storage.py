"""Checkpoint stores: where versioned co-variable payloads live (§6.1).

The paper's implementation stores versioned co-variables in SQLite but
notes "any storage mechanism can be used in its place — even in-memory
ones". Both backends are provided here behind one interface:

* :class:`SQLiteCheckpointStore` — the paper's default; durable, queried
  with normalized tables.
* :class:`InMemoryCheckpointStore` — maximally fast, used by benchmarks
  that want to isolate algorithmic costs from disk I/O.

A store holds (a) node metadata rows — enough to rebuild the checkpoint
graph after a restart — and (b) payload rows: one pickled blob per
versioned co-variable, or a tombstone for payloads that failed to
serialize.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.covariable import CoVarKey, covar_key
from repro.errors import StorageError

#: Separator for canonical co-variable key encoding. Unit-separator is not
#: a valid Python identifier character, so it cannot collide with names.
_KEY_SEP = "\x1f"


def encode_key(key: CoVarKey) -> str:
    return _KEY_SEP.join(sorted(key))


def decode_key(encoded: str) -> CoVarKey:
    return covar_key(encoded.split(_KEY_SEP)) if encoded else frozenset()


@dataclass(frozen=True)
class StoredPayload:
    """One versioned co-variable's stored form."""

    node_id: str
    key: CoVarKey
    data: Optional[bytes]  # None when serialization was skipped
    serializer: Optional[str]

    @property
    def stored(self) -> bool:
        return self.data is not None

    @property
    def size_bytes(self) -> int:
        return len(self.data) if self.data is not None else 0


@dataclass(frozen=True)
class StoredNode:
    """Node metadata as persisted; mirrors CheckpointNode minus payloads."""

    node_id: str
    parent_id: Optional[str]
    timestamp: int
    execution_count: int
    cell_source: str
    deleted_keys: Tuple[CoVarKey, ...]
    dependencies: Tuple[Tuple[CoVarKey, str], ...]


class CheckpointStore:
    """Interface both backends implement."""

    def write_node(self, node: StoredNode) -> None:
        raise NotImplementedError

    def read_nodes(self) -> List[StoredNode]:
        raise NotImplementedError

    def write_payload(self, payload: StoredPayload) -> None:
        raise NotImplementedError

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        raise NotImplementedError

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        raise NotImplementedError

    def total_payload_bytes(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; in-memory stores are a no-op."""

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InMemoryCheckpointStore(CheckpointStore):
    """Dict-backed store, for tests and I/O-free benchmarking."""

    def __init__(self) -> None:
        self._nodes: Dict[str, StoredNode] = {}
        self._payloads: Dict[Tuple[str, str], StoredPayload] = {}

    def write_node(self, node: StoredNode) -> None:
        self._nodes[node.node_id] = node

    def read_nodes(self) -> List[StoredNode]:
        return sorted(self._nodes.values(), key=lambda node: node.timestamp)

    def write_payload(self, payload: StoredPayload) -> None:
        self._payloads[(payload.node_id, encode_key(payload.key))] = payload

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        try:
            return self._payloads[(node_id, encode_key(key))]
        except KeyError:
            raise StorageError(
                f"no payload for co-variable {sorted(key)} at node {node_id}"
            ) from None

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        return [p for (nid, _), p in self._payloads.items() if nid == node_id]

    def total_payload_bytes(self) -> int:
        return sum(payload.size_bytes for payload in self._payloads.values())


class SQLiteCheckpointStore(CheckpointStore):
    """SQLite-backed store — the paper's default storage mechanism.

    Pass ``":memory:"`` for an ephemeral database or a path for a durable
    one. The schema is normalized: ``nodes``, ``node_deletes``,
    ``node_deps``, and ``payloads``.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS nodes (
        node_id         TEXT PRIMARY KEY,
        parent_id       TEXT,
        timestamp       INTEGER NOT NULL,
        execution_count INTEGER NOT NULL,
        cell_source     TEXT NOT NULL
    );
    CREATE TABLE IF NOT EXISTS node_deletes (
        node_id   TEXT NOT NULL,
        covar_key TEXT NOT NULL,
        PRIMARY KEY (node_id, covar_key)
    );
    CREATE TABLE IF NOT EXISTS node_deps (
        node_id   TEXT NOT NULL,
        covar_key TEXT NOT NULL,
        ref_node  TEXT NOT NULL,
        PRIMARY KEY (node_id, covar_key)
    );
    CREATE TABLE IF NOT EXISTS payloads (
        node_id    TEXT NOT NULL,
        covar_key  TEXT NOT NULL,
        data       BLOB,
        serializer TEXT,
        PRIMARY KEY (node_id, covar_key)
    );
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()

    def write_node(self, node: StoredNode) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO nodes VALUES (?, ?, ?, ?, ?)",
                (
                    node.node_id,
                    node.parent_id,
                    node.timestamp,
                    node.execution_count,
                    node.cell_source,
                ),
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO node_deletes VALUES (?, ?)",
                [(node.node_id, encode_key(key)) for key in node.deleted_keys],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO node_deps VALUES (?, ?, ?)",
                [
                    (node.node_id, encode_key(key), ref)
                    for key, ref in node.dependencies
                ],
            )

    def read_nodes(self) -> List[StoredNode]:
        nodes = []
        rows = self._conn.execute(
            "SELECT node_id, parent_id, timestamp, execution_count, cell_source"
            " FROM nodes ORDER BY timestamp"
        ).fetchall()
        for node_id, parent_id, timestamp, execution_count, cell_source in rows:
            deleted = tuple(
                decode_key(row[0])
                for row in self._conn.execute(
                    "SELECT covar_key FROM node_deletes WHERE node_id = ?", (node_id,)
                )
            )
            deps = tuple(
                (decode_key(row[0]), row[1])
                for row in self._conn.execute(
                    "SELECT covar_key, ref_node FROM node_deps WHERE node_id = ?",
                    (node_id,),
                )
            )
            nodes.append(
                StoredNode(
                    node_id=node_id,
                    parent_id=parent_id,
                    timestamp=timestamp,
                    execution_count=execution_count,
                    cell_source=cell_source,
                    deleted_keys=deleted,
                    dependencies=deps,
                )
            )
        return nodes

    def write_payload(self, payload: StoredPayload) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO payloads VALUES (?, ?, ?, ?)",
                (
                    payload.node_id,
                    encode_key(payload.key),
                    payload.data,
                    payload.serializer,
                ),
            )

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        row = self._conn.execute(
            "SELECT data, serializer FROM payloads WHERE node_id = ? AND covar_key = ?",
            (node_id, encode_key(key)),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"no payload for co-variable {sorted(key)} at node {node_id}"
            )
        data, serializer = row
        return StoredPayload(node_id=node_id, key=key, data=data, serializer=serializer)

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        rows = self._conn.execute(
            "SELECT covar_key, data, serializer FROM payloads WHERE node_id = ?",
            (node_id,),
        ).fetchall()
        return [
            StoredPayload(
                node_id=node_id,
                key=decode_key(encoded),
                data=data,
                serializer=serializer,
            )
            for encoded, data, serializer in rows
        ]

    def total_payload_bytes(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM payloads WHERE data IS NOT NULL"
        ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()
