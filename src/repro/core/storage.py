"""Checkpoint stores: where versioned co-variable payloads live (§6.1).

The paper's implementation stores versioned co-variables in SQLite but
notes "any storage mechanism can be used in its place — even in-memory
ones". Both backends are provided here behind one interface:

* :class:`SQLiteCheckpointStore` — the paper's default; durable, queried
  with normalized tables.
* :class:`InMemoryCheckpointStore` — maximally fast, used by benchmarks
  that want to isolate algorithmic costs from disk I/O.

A store holds (a) node metadata rows — enough to rebuild the checkpoint
graph after a restart — and (b) payload rows: one pickled blob per
versioned co-variable, or a tombstone for payloads that failed to
serialize.

Crash consistency
-----------------
A checkpoint spans many store writes (one payload per updated
co-variable, plus the node row). A crash between any two of them must
not leave a *torn* node — metadata without payloads, or vice versa —
observable after restart. Stores therefore expose a commit protocol:

    store.begin_checkpoint(node_id)
    store.write_payload(...); ...; store.write_node(...)
    store.commit_checkpoint(node_id)     # or rollback_checkpoint(...)

Between ``begin`` and ``commit`` nothing is visible to readers: the
SQLite backend holds one transaction and stamps the node row with a
``committed`` marker only at commit; the in-memory backend buffers
writes in a staging area merged atomically at commit. ``read_nodes()``
returns committed nodes only, and opening a durable store sweeps any
uncommitted leftovers (see :meth:`CheckpointStore.recover`).
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.covariable import CoVarKey, covar_key
from repro.errors import StorageError
from repro.obs import EventType, NO_OBSERVER, Observer

#: Separator for canonical co-variable key encoding. Unit-separator is not
#: a valid Python identifier character, so it cannot collide with names.
_KEY_SEP = "\x1f"


def encode_key(key: CoVarKey) -> str:
    return _KEY_SEP.join(sorted(key))


def decode_key(encoded: str) -> CoVarKey:
    return covar_key(encoded.split(_KEY_SEP)) if encoded else frozenset()


@dataclass(frozen=True)
class StoredPayload:
    """One versioned co-variable's stored form."""

    node_id: str
    key: CoVarKey
    data: Optional[bytes]  # None when serialization was skipped
    serializer: Optional[str]

    @property
    def stored(self) -> bool:
        return self.data is not None

    @property
    def size_bytes(self) -> int:
        return len(self.data) if self.data is not None else 0


@dataclass(frozen=True)
class StoredNode:
    """Node metadata as persisted; mirrors CheckpointNode minus payloads."""

    node_id: str
    parent_id: Optional[str]
    timestamp: int
    execution_count: int
    cell_source: str
    deleted_keys: Tuple[CoVarKey, ...]
    dependencies: Tuple[Tuple[CoVarKey, str], ...]


@dataclass(frozen=True)
class RecoveryReport:
    """What a recovery scan found (and removed) in a checkpoint store.

    ``swept_nodes`` are node ids whose checkpoint never committed — the
    session crashed mid-checkpoint — and were pruned so readers only ever
    see whole checkpoints. ``orphan_payloads`` are (node_id, covar names)
    pairs for payload rows with no surviving node row.
    """

    swept_nodes: Tuple[str, ...] = ()
    orphan_payloads: Tuple[Tuple[str, str], ...] = ()

    @property
    def clean(self) -> bool:
        return not self.swept_nodes and not self.orphan_payloads

    def summary(self) -> str:
        if self.clean:
            return "store is clean: no torn checkpoints found"
        parts = []
        if self.swept_nodes:
            parts.append(
                f"swept {len(self.swept_nodes)} uncommitted checkpoint(s): "
                + ", ".join(self.swept_nodes)
            )
        if self.orphan_payloads:
            parts.append(f"pruned {len(self.orphan_payloads)} orphan payload(s)")
        return "; ".join(parts)


class CheckpointStore:
    """Interface both backends implement."""

    #: Recovery scan result from the most recent open/recover, if any.
    last_recovery: Optional[RecoveryReport] = None
    #: Observability sink (DESIGN.md §11); the disabled default makes
    #: every emission a single attribute check. Sessions rebind this to
    #: their live observer; recovery scans report through it.
    observer: Observer = NO_OBSERVER

    def write_node(self, node: StoredNode) -> None:
        raise NotImplementedError

    def read_nodes(self) -> List[StoredNode]:
        raise NotImplementedError

    def write_payload(self, payload: StoredPayload) -> None:
        raise NotImplementedError

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        raise NotImplementedError

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        raise NotImplementedError

    def total_payload_bytes(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; in-memory stores are a no-op."""

    # -- atomic checkpoint protocol --------------------------------------------

    def begin_checkpoint(self, node_id: str) -> None:
        """Start buffering writes for one checkpoint; nothing is visible
        to readers until :meth:`commit_checkpoint`."""
        raise NotImplementedError

    def commit_checkpoint(self, node_id: str) -> None:
        """Atomically publish every write since :meth:`begin_checkpoint`."""
        raise NotImplementedError

    def rollback_checkpoint(self, node_id: str) -> None:
        """Discard every write since :meth:`begin_checkpoint`."""
        raise NotImplementedError

    @property
    def in_checkpoint(self) -> bool:
        """Whether a begin_checkpoint is currently open."""
        return False

    @contextmanager
    def checkpoint(self, node_id: str) -> Iterator["CheckpointStore"]:
        """Commit-protocol scope: commits on success, rolls back on error.

        A :class:`~repro.errors.SimulatedCrash` (a BaseException) escapes
        *without* rolling back — a crashed process gets no chance to clean
        up; that is exactly the state recovery-on-open must handle.
        """
        self.begin_checkpoint(node_id)
        try:
            yield self
        except Exception:
            self.rollback_checkpoint(node_id)
            raise
        else:
            self.commit_checkpoint(node_id)

    def recover(self) -> RecoveryReport:
        """Sweep torn state (uncommitted nodes, orphan payloads).

        Durable stores run this automatically on open; it is also safe to
        invoke at any quiescent point. Returns what was pruned.
        """
        return self._record_recovery(RecoveryReport())

    def _record_recovery(self, report: RecoveryReport) -> RecoveryReport:
        """Publish a recovery scan: remember it and, when it actually
        swept something, emit a ``recovery`` event (satellite of
        DESIGN.md §11 — recovery actions must be visible outside the
        report object)."""
        self.last_recovery = report
        if not report.clean:
            self.observer.event(
                EventType.RECOVERY,
                swept_nodes=list(report.swept_nodes),
                orphan_payloads=[list(pair) for pair in report.orphan_payloads],
            )
            self.observer.count("store.recoveries")
        return report

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _node_sort_key(order: int, node: StoredNode) -> Tuple[int, int, int]:
    """Deterministic node ordering: timestamp, then execution count, then
    insertion order. Timestamps alone are not unique (two checkpoints in
    the same clock second), and graph reconstruction requires parents to
    sort before children."""
    return (node.timestamp, node.execution_count, order)


class InMemoryCheckpointStore(CheckpointStore):
    """Dict-backed store, for tests and I/O-free benchmarking.

    Checkpoint atomicity is provided by staged-dict buffering: between
    ``begin_checkpoint`` and ``commit_checkpoint`` all writes land in a
    staging area invisible to readers; commit merges it in one step.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, StoredNode] = {}
        self._node_order: Dict[str, int] = {}
        self._insertions = 0
        # Payloads indexed by node_id, then encoded co-variable key, so
        # payloads_of() is O(payloads of that node), not O(all payloads).
        self._payloads: Dict[str, Dict[str, StoredPayload]] = {}
        self._txn_node: Optional[str] = None
        self._staged_nodes: Dict[str, StoredNode] = {}
        self._staged_payloads: Dict[str, Dict[str, StoredPayload]] = {}
        self.last_recovery = None

    # -- writes ----------------------------------------------------------------

    def write_node(self, node: StoredNode) -> None:
        if self._txn_node is not None:
            self._staged_nodes[node.node_id] = node
            return
        self._store_node(node)

    def write_payload(self, payload: StoredPayload) -> None:
        target = (
            self._staged_payloads if self._txn_node is not None else self._payloads
        )
        target.setdefault(payload.node_id, {})[encode_key(payload.key)] = payload

    def _store_node(self, node: StoredNode) -> None:
        if node.node_id not in self._node_order:
            self._node_order[node.node_id] = self._insertions
            self._insertions += 1
        self._nodes[node.node_id] = node

    # -- atomic checkpoint protocol --------------------------------------------

    def begin_checkpoint(self, node_id: str) -> None:
        if self._txn_node is not None:
            raise StorageError(
                f"checkpoint {self._txn_node!r} already in progress"
            )
        self._txn_node = node_id

    def commit_checkpoint(self, node_id: str) -> None:
        if self._txn_node != node_id:
            raise StorageError(
                f"commit_checkpoint({node_id!r}) without matching begin"
            )
        for node in self._staged_nodes.values():
            self._store_node(node)
        for owner, payloads in self._staged_payloads.items():
            self._payloads.setdefault(owner, {}).update(payloads)
        self._clear_stage()

    def rollback_checkpoint(self, node_id: str) -> None:
        self._clear_stage()

    def _clear_stage(self) -> None:
        self._txn_node = None
        self._staged_nodes = {}
        self._staged_payloads = {}

    @property
    def in_checkpoint(self) -> bool:
        return self._txn_node is not None

    # -- reads (committed state only) ------------------------------------------

    def read_nodes(self) -> List[StoredNode]:
        return sorted(
            self._nodes.values(),
            key=lambda node: _node_sort_key(self._node_order[node.node_id], node),
        )

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        try:
            return self._payloads[node_id][encode_key(key)]
        except KeyError:
            raise StorageError(
                f"no payload for co-variable {sorted(key)} at node {node_id}"
            ) from None

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        return list(self._payloads.get(node_id, {}).values())

    def total_payload_bytes(self) -> int:
        return sum(
            payload.size_bytes
            for payloads in self._payloads.values()
            for payload in payloads.values()
        )

    # -- recovery --------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Sweep staged leftovers (an abandoned checkpoint — the in-memory
        analogue of a crash) and payloads whose node never committed."""
        swept = tuple(sorted(self._staged_nodes))
        self._clear_stage()
        orphans: List[Tuple[str, str]] = []
        for node_id in sorted(set(self._payloads) - set(self._nodes)):
            for encoded in sorted(self._payloads[node_id]):
                orphans.append((node_id, encoded))
            del self._payloads[node_id]
        report = RecoveryReport(swept_nodes=swept, orphan_payloads=tuple(orphans))
        return self._record_recovery(report)


class SQLiteCheckpointStore(CheckpointStore):
    """SQLite-backed store — the paper's default storage mechanism.

    Pass ``":memory:"`` for an ephemeral database or a path for a durable
    one. The schema is normalized: ``nodes``, ``node_deletes``,
    ``node_deps``, and ``payloads``.

    Checkpoint atomicity: ``begin_checkpoint`` opens one SQLite
    transaction; node rows written inside it carry ``committed = 0``
    until ``commit_checkpoint`` flips the marker and commits. A process
    crash mid-checkpoint (connection dropped without COMMIT) therefore
    loses the whole transaction; if torn rows do reach disk through a
    non-transactional path, the ``committed`` marker keeps them invisible
    to :meth:`read_nodes` and the recovery scan on open sweeps them.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS nodes (
        node_id         TEXT PRIMARY KEY,
        parent_id       TEXT,
        timestamp       INTEGER NOT NULL,
        execution_count INTEGER NOT NULL,
        cell_source     TEXT NOT NULL,
        committed       INTEGER NOT NULL DEFAULT 1
    );
    CREATE TABLE IF NOT EXISTS node_deletes (
        node_id   TEXT NOT NULL,
        covar_key TEXT NOT NULL,
        PRIMARY KEY (node_id, covar_key)
    );
    CREATE TABLE IF NOT EXISTS node_deps (
        node_id   TEXT NOT NULL,
        covar_key TEXT NOT NULL,
        ref_node  TEXT NOT NULL,
        PRIMARY KEY (node_id, covar_key)
    );
    CREATE TABLE IF NOT EXISTS payloads (
        node_id    TEXT NOT NULL,
        covar_key  TEXT NOT NULL,
        data       BLOB,
        serializer TEXT,
        PRIMARY KEY (node_id, covar_key)
    );
    CREATE INDEX IF NOT EXISTS idx_payloads_node ON payloads (node_id);
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        # Autocommit mode: transactions are managed explicitly so the
        # checkpoint protocol can hold one open across many writes.
        self._conn = sqlite3.connect(path, isolation_level=None)
        self._txn_node: Optional[str] = None
        self._conn.executescript(self._SCHEMA)
        self._migrate()
        self.last_recovery = self.recover()

    def _migrate(self) -> None:
        """Bring pre-durability databases (no ``committed`` column) up to
        the current schema; existing rows are presumed committed."""
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(nodes)")
        }
        if "committed" not in columns:
            self._conn.execute(
                "ALTER TABLE nodes ADD COLUMN committed INTEGER NOT NULL DEFAULT 1"
            )

    # -- writes ----------------------------------------------------------------

    @contextmanager
    def _write_scope(self) -> Iterator[None]:
        """One write's transaction scope: inside an open checkpoint this is
        a no-op (the outer transaction owns atomicity); standalone writes
        get their own immediate transaction."""
        if self._txn_node is not None:
            yield
            return
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def write_node(self, node: StoredNode) -> None:
        committed = 0 if self._txn_node is not None else 1
        with self._write_scope():
            self._conn.execute(
                "INSERT OR REPLACE INTO nodes VALUES (?, ?, ?, ?, ?, ?)",
                (
                    node.node_id,
                    node.parent_id,
                    node.timestamp,
                    node.execution_count,
                    node.cell_source,
                    committed,
                ),
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO node_deletes VALUES (?, ?)",
                [(node.node_id, encode_key(key)) for key in node.deleted_keys],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO node_deps VALUES (?, ?, ?)",
                [
                    (node.node_id, encode_key(key), ref)
                    for key, ref in node.dependencies
                ],
            )

    def write_payload(self, payload: StoredPayload) -> None:
        with self._write_scope():
            self._conn.execute(
                "INSERT OR REPLACE INTO payloads VALUES (?, ?, ?, ?)",
                (
                    payload.node_id,
                    encode_key(payload.key),
                    payload.data,
                    payload.serializer,
                ),
            )

    # -- atomic checkpoint protocol --------------------------------------------

    def begin_checkpoint(self, node_id: str) -> None:
        if self._txn_node is not None:
            raise StorageError(
                f"checkpoint {self._txn_node!r} already in progress"
            )
        self._conn.execute("BEGIN IMMEDIATE")
        self._txn_node = node_id

    def commit_checkpoint(self, node_id: str) -> None:
        if self._txn_node != node_id:
            raise StorageError(
                f"commit_checkpoint({node_id!r}) without matching begin"
            )
        self._conn.execute(
            "UPDATE nodes SET committed = 1 WHERE node_id = ?", (node_id,)
        )
        self._conn.execute("COMMIT")
        self._txn_node = None

    def rollback_checkpoint(self, node_id: str) -> None:
        if self._conn.in_transaction:
            self._conn.execute("ROLLBACK")
        self._txn_node = None
        # Belt-and-braces: if any rows for this checkpoint reached disk
        # outside the transaction, remove them now.
        self._sweep_nodes([node_id], only_uncommitted=True)

    @property
    def in_checkpoint(self) -> bool:
        return self._txn_node is not None

    # -- reads (committed state only) ------------------------------------------

    def read_nodes(self) -> List[StoredNode]:
        nodes = []
        rows = self._conn.execute(
            "SELECT node_id, parent_id, timestamp, execution_count, cell_source"
            " FROM nodes WHERE committed = 1"
            " ORDER BY timestamp, execution_count, rowid"
        ).fetchall()
        for node_id, parent_id, timestamp, execution_count, cell_source in rows:
            deleted = tuple(
                decode_key(row[0])
                for row in self._conn.execute(
                    "SELECT covar_key FROM node_deletes WHERE node_id = ?", (node_id,)
                )
            )
            deps = tuple(
                (decode_key(row[0]), row[1])
                for row in self._conn.execute(
                    "SELECT covar_key, ref_node FROM node_deps WHERE node_id = ?",
                    (node_id,),
                )
            )
            nodes.append(
                StoredNode(
                    node_id=node_id,
                    parent_id=parent_id,
                    timestamp=timestamp,
                    execution_count=execution_count,
                    cell_source=cell_source,
                    deleted_keys=deleted,
                    dependencies=deps,
                )
            )
        return nodes

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        row = self._conn.execute(
            "SELECT data, serializer FROM payloads WHERE node_id = ? AND covar_key = ?",
            (node_id, encode_key(key)),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"no payload for co-variable {sorted(key)} at node {node_id}"
            )
        data, serializer = row
        return StoredPayload(node_id=node_id, key=key, data=data, serializer=serializer)

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        rows = self._conn.execute(
            "SELECT covar_key, data, serializer FROM payloads WHERE node_id = ?",
            (node_id,),
        ).fetchall()
        return [
            StoredPayload(
                node_id=node_id,
                key=decode_key(encoded),
                data=data,
                serializer=serializer,
            )
            for encoded, data, serializer in rows
        ]

    def total_payload_bytes(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM payloads WHERE data IS NOT NULL"
        ).fetchone()
        return int(row[0])

    # -- recovery --------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Sweep uncommitted nodes and orphan payloads; runs on every open.

        An open checkpoint transaction at recovery time is itself crash
        debris (the writer died holding it): it is rolled back — the same
        outcome a dropped connection produces — before the sweep.
        """
        if self._conn.in_transaction:
            self._conn.execute("ROLLBACK")
        self._txn_node = None
        swept = [
            row[0]
            for row in self._conn.execute(
                "SELECT node_id FROM nodes WHERE committed = 0 ORDER BY node_id"
            )
        ]
        orphans = self._conn.execute(
            "SELECT node_id, covar_key FROM payloads"
            " WHERE node_id NOT IN (SELECT node_id FROM nodes WHERE committed = 1)"
            " ORDER BY node_id, covar_key"
        ).fetchall()
        if swept or orphans:
            with self._write_scope():
                self._sweep_nodes(swept, only_uncommitted=True)
                self._conn.execute(
                    "DELETE FROM payloads WHERE node_id NOT IN"
                    " (SELECT node_id FROM nodes)"
                )
        report = RecoveryReport(
            swept_nodes=tuple(swept),
            orphan_payloads=tuple((nid, key) for nid, key in orphans),
        )
        return self._record_recovery(report)

    def _sweep_nodes(self, node_ids: List[str], *, only_uncommitted: bool) -> None:
        for node_id in node_ids:
            if only_uncommitted:
                self._conn.execute(
                    "DELETE FROM nodes WHERE node_id = ? AND committed = 0",
                    (node_id,),
                )
            else:
                self._conn.execute(
                    "DELETE FROM nodes WHERE node_id = ?", (node_id,)
                )
            still_there = self._conn.execute(
                "SELECT 1 FROM nodes WHERE node_id = ?", (node_id,)
            ).fetchone()
            if still_there is None:
                for table in ("node_deletes", "node_deps", "payloads"):
                    self._conn.execute(
                        f"DELETE FROM {table} WHERE node_id = ?", (node_id,)
                    )

    def close(self) -> None:
        # Closing with an open transaction rolls it back — the same
        # outcome as a process crash, which is what makes close() a
        # faithful crash simulation for durable stores.
        self._txn_node = None
        self._conn.close()
