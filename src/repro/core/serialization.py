"""Co-variable serialization (§6.1 of the paper).

Kishu serializes each co-variable independently — its payload is the dict
of member-name → object, pickled as one unit so intra-co-variable shared
references are preserved by the pickler's memo table. Because co-variables
have *no* inter-co-variable references (Definition 1), per-co-variable
pickling is exactly as correct as pickling the whole state.

The paper's implementation tries CloudPickle first and falls back to Dill
for objects CloudPickle fails on. Neither is available offline, so this
module reproduces the same *chain* design with:

* :class:`PrimaryPickler` — stdlib pickle (protocol 5). Fails on the same
  things stdlib pickle fails on: local/lambda functions, generators, objects
  whose reductions raise.
* :class:`FallbackPickler` — stdlib pickle extended with by-value function
  serialization (marshal'd code objects, reconstructed closures), the core
  capability Dill/CloudPickle add over pickle. It also honours the
  ``_requires_fallback_pickler`` marker that libsim classes use to model
  "CloudPickle fails, Dill succeeds" behaviour.

Objects that no pickler in the chain can handle (generators, hash objects,
classes marked ``_unserializable``) raise :class:`SerializationError`; the
checkpointing layer then skips the payload and relies on fallback
recomputation (§5.3).
"""

from __future__ import annotations

import io
import marshal
import pickle
import types
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DeserializationError, SerializationError

PICKLE_PROTOCOL = 5

#: While a fallback payload is being deserialized, functions rebuilt by
#: value need a globals mapping to execute against. The session installs the
#: live kernel namespace here around each load (see ``active_globals``).
_ACTIVE_GLOBALS: List[Dict[str, Any]] = []


class active_globals:
    """Context manager installing the globals dict used when reconstructing
    by-value functions during deserialization."""

    def __init__(self, globals_dict: Dict[str, Any]) -> None:
        self._globals = globals_dict

    def __enter__(self) -> None:
        _ACTIVE_GLOBALS.append(self._globals)

    def __exit__(self, *exc_info) -> None:
        _ACTIVE_GLOBALS.pop()


def _current_globals() -> Dict[str, Any]:
    if _ACTIVE_GLOBALS:
        return _ACTIVE_GLOBALS[-1]
    return {"__builtins__": __builtins__}


def _rebuild_function(
    code_bytes: bytes,
    name: str,
    defaults: Optional[tuple],
    closure_values: Optional[tuple],
    qualname: str,
) -> types.FunctionType:
    """Reconstruct a by-value-serialized function (fallback pickler)."""
    code = marshal.loads(code_bytes)
    closure = None
    if closure_values is not None:
        closure = tuple(types.CellType(value) for value in closure_values)
    function = types.FunctionType(code, _current_globals(), name, defaults, closure)
    function.__qualname__ = qualname
    return function


class PrimaryPickler:
    """First pickler in the chain: strict stdlib pickle.

    Mirrors CloudPickle's position in the paper's chain: fast, covers the
    de-facto pickle protocol, declines anything exotic.
    """

    name = "primary"

    def dumps(self, obj: Any) -> bytes:
        buffer = io.BytesIO()
        _StrictPickler(buffer, PICKLE_PROTOCOL).dump(obj)
        return buffer.getvalue()

    def loads(self, data: bytes) -> Any:
        return pickle.loads(data)


def _import_module(name: str) -> types.ModuleType:
    import importlib

    return importlib.import_module(name)


def _module_reducer(module: types.ModuleType):
    """Modules pickle by reference (re-import on load), as CloudPickle and
    Dill do — stdlib pickle alone refuses them, but notebook namespaces
    are full of ``import numpy as np`` bindings."""
    return (_import_module, (module.__name__,))


class _StrictPickler(pickle.Pickler):
    """Stdlib pickling plus module-by-reference, except it refuses objects
    flagged as needing the fallback pickler (the libsim model of
    "CloudPickle fails on this")."""

    def reducer_override(self, obj: Any):
        if getattr(obj, "_requires_fallback_pickler", False):
            raise pickle.PicklingError(
                f"{type(obj).__qualname__} requires the fallback pickler"
            )
        if isinstance(obj, types.ModuleType):
            return _module_reducer(obj)
        return NotImplemented


class FallbackPickler:
    """Second pickler in the chain: adds by-value function support.

    Local functions, lambdas, and functions defined in notebook cells are
    not importable by name, so stdlib pickle rejects them. Like Dill, this
    pickler serializes their code objects (via ``marshal``) together with
    defaults and closure values, and rebinds their globals to the live
    kernel namespace at load time.
    """

    name = "fallback"

    def dumps(self, obj: Any) -> bytes:
        buffer = io.BytesIO()
        _ByValuePickler(buffer, PICKLE_PROTOCOL).dump(obj)
        return buffer.getvalue()

    def loads(self, data: bytes) -> Any:
        return pickle.loads(data)


class _ByValuePickler(pickle.Pickler):
    def reducer_override(self, obj: Any):
        if isinstance(obj, types.ModuleType):
            return _module_reducer(obj)
        if isinstance(obj, types.FunctionType) and not _importable(obj):
            return self._reduce_function_by_value(obj)
        return NotImplemented

    @staticmethod
    def _reduce_function_by_value(func: types.FunctionType):
        closure_values = None
        if func.__closure__ is not None:
            closure_values = tuple(cell.cell_contents for cell in func.__closure__)
        return (
            _rebuild_function,
            (
                marshal.dumps(func.__code__),
                func.__name__,
                func.__defaults__,
                closure_values,
                func.__qualname__,
            ),
        )


def _importable(func: types.FunctionType) -> bool:
    """True if stdlib pickle could serialize ``func`` by reference."""
    module_name = getattr(func, "__module__", None)
    if module_name is None:
        return False
    import sys

    module = sys.modules.get(module_name)
    if module is None:
        return False
    target: Any = module
    for part in func.__qualname__.split("."):
        if part == "<locals>":
            return False
        target = getattr(target, part, None)
        if target is None:
            return False
    return target is func


class SerializerChain:
    """Ordered chain of picklers with per-payload selection (§6.1).

    ``serialize`` records which pickler succeeded so ``deserialize`` can use
    the matching loader — the paper's "mixing and matching serialization
    libraries for coverage".
    """

    def __init__(self, picklers: Optional[Sequence[Any]] = None) -> None:
        self.picklers = list(picklers) if picklers is not None else [
            PrimaryPickler(),
            FallbackPickler(),
        ]
        self._by_name = {pickler.name: pickler for pickler in self.picklers}

    def serialize(self, names: Set[str], payload: Dict[str, Any]) -> Tuple[bytes, str]:
        """Pickle a co-variable payload; returns (bytes, pickler name).

        Raises:
            SerializationError: if every pickler in the chain fails.
        """
        last_error: Optional[BaseException] = None
        for pickler in self.picklers:
            try:
                return pickler.dumps(payload), pickler.name
            except Exception as exc:  # picklers raise many exception types
                last_error = exc
        raise SerializationError(names, cause=last_error)

    def deserialize(self, data: bytes, pickler_name: str) -> Dict[str, Any]:
        pickler = self._by_name.get(pickler_name)
        if pickler is None:
            raise DeserializationError(f"unknown pickler {pickler_name!r}")
        try:
            return pickler.loads(data)
        except Exception as exc:
            raise DeserializationError(
                f"payload failed to load with pickler {pickler_name!r}: {exc!r}"
            ) from exc


class Blocklist:
    """Class names whose co-variables must be recomputed, never loaded.

    The paper's escape hatch (§6.2) for classes with *silent* serialization
    errors: their payloads round-trip without raising but are wrong, so the
    user lists them here to force fallback recomputation.
    """

    def __init__(self, class_names: Optional[Set[str]] = None) -> None:
        self._class_names: Set[str] = set(class_names or ())

    def add(self, class_name: str) -> None:
        self._class_names.add(class_name)

    def discard(self, class_name: str) -> None:
        self._class_names.discard(class_name)

    def blocks_any(self, type_names) -> bool:
        """True if any of the given type names is blocklisted."""
        return any(name in self._class_names for name in type_names)

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._class_names

    def __len__(self) -> int:
        return len(self._class_names)

    @classmethod
    def from_file(cls, path) -> "Blocklist":
        """Load one class name per line; blank lines and ``#`` comments
        are ignored (the paper ships the blocklist as a user-editable file)."""
        names: Set[str] = set()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    names.add(stripped)
        return cls(names)
