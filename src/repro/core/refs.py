"""Named references into the checkpoint graph: branches and tags.

The Kishu system exposes Git-like refs on top of its commit graph
(`kishu branch`, `kishu tag`): a **tag** is an immutable name for one
checkpoint; a **branch** is a movable name that follows the head while
checked out. Both give users stable handles for time-travel targets
("before-cleanup", "experiment-2") instead of raw checkpoint ids.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.errors import KishuError

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._/-]*$")


class RefError(KishuError):
    """Invalid branch/tag operation."""


def _validate_name(name: str) -> str:
    if not _NAME_PATTERN.match(name or ""):
        raise RefError(
            f"invalid ref name {name!r}: use letters, digits, '.', '_', '/', '-'"
        )
    return name


class RefManager:
    """Branch and tag bookkeeping for one session."""

    def __init__(self) -> None:
        self._tags: Dict[str, str] = {}
        self._branches: Dict[str, str] = {}
        self._active_branch: Optional[str] = None

    # -- tags -------------------------------------------------------------------

    def create_tag(self, name: str, node_id: str) -> None:
        _validate_name(name)
        if name in self._tags:
            raise RefError(f"tag {name!r} already exists (tags are immutable)")
        self._tags[name] = node_id

    def delete_tag(self, name: str) -> None:
        if name not in self._tags:
            raise RefError(f"no tag named {name!r}")
        del self._tags[name]

    def tags(self) -> Dict[str, str]:
        return dict(self._tags)

    # -- branches ------------------------------------------------------------------

    def create_branch(self, name: str, node_id: str) -> None:
        _validate_name(name)
        if name in self._branches:
            raise RefError(f"branch {name!r} already exists")
        self._branches[name] = node_id

    def delete_branch(self, name: str) -> None:
        if name not in self._branches:
            raise RefError(f"no branch named {name!r}")
        if name == self._active_branch:
            raise RefError(f"cannot delete the active branch {name!r}")
        del self._branches[name]

    def branches(self) -> Dict[str, str]:
        return dict(self._branches)

    @property
    def active_branch(self) -> Optional[str]:
        return self._active_branch

    def activate_branch(self, name: Optional[str]) -> None:
        if name is not None and name not in self._branches:
            raise RefError(f"no branch named {name!r}")
        self._active_branch = name

    def advance_active_branch(self, node_id: str) -> None:
        """Move the active branch (if any) to follow a new head."""
        if self._active_branch is not None:
            self._branches[self._active_branch] = node_id

    # -- resolution --------------------------------------------------------------------

    def resolve(self, ref: str) -> Optional[str]:
        """Node id for a branch or tag name; None if unknown.

        Branches take precedence over tags with the same name (matching
        Git's checkout semantics of preferring refs/heads).
        """
        if ref in self._branches:
            return self._branches[ref]
        if ref in self._tags:
            return self._tags[ref]
        return None

    def names_of(self, node_id: str) -> List[str]:
        """All ref names pointing at a node (for log decoration)."""
        names = [
            name for name, target in self._branches.items() if target == node_id
        ]
        names.extend(
            f"tag:{name}" for name, target in self._tags.items() if target == node_id
        )
        return sorted(names)
