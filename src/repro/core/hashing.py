"""Fast digests for array-like data (§6.2 of the paper).

Kishu uses XXH64 to detect updates to large array-likes (e.g. tensors)
without traversing their elements. XXH64 is not available offline, so the
default backend here is FNV-1a 64-bit — also a fast non-cryptographic hash
with the same role — with ``hashlib.blake2b`` available when collision
resistance matters more than speed.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

from repro.telemetry import count_bytes_hashed

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a64(data: Union[bytes, bytearray, memoryview]) -> int:
    """FNV-1a 64-bit hash of a buffer.

    Python-level FNV is slow per byte, so large buffers are first folded
    through ``hashlib`` (C speed) and only the 16-byte digest is FNV-mixed.
    Small buffers are hashed directly, keeping the function allocation-free
    for the common case of small primitive payloads.
    """
    buffer = bytes(data)
    count_bytes_hashed(len(buffer))
    if len(buffer) > 64:
        buffer = hashlib.blake2b(buffer, digest_size=16).digest()
    value = _FNV_OFFSET
    for byte in buffer:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def digest_bytes(data: Union[bytes, bytearray, memoryview], *, backend: str = "fnv") -> int:
    """Digest a raw buffer with the selected backend ("fnv" or "blake2b")."""
    if backend == "fnv":
        return fnv1a64(data)
    if backend == "blake2b":
        buffer = bytes(data)
        count_bytes_hashed(len(buffer))
        digest = hashlib.blake2b(buffer, digest_size=8).digest()
        return int.from_bytes(digest, "big")
    raise ValueError(f"unknown hash backend {backend!r}")


def digest_array(array: np.ndarray, *, backend: str = "fnv") -> int:
    """Content digest of a numpy array, covering dtype and shape.

    This is the paper's hash-based fast path: an O(bytes) digest replaces an
    O(elements) graph traversal when deciding whether an array-like changed.
    """
    contiguous = np.ascontiguousarray(array)
    header = f"{contiguous.dtype.str}:{contiguous.shape}".encode()
    return digest_bytes(header + contiguous.tobytes(), backend=backend)


def combine(*digests: int) -> int:
    """Order-sensitive combination of child digests into one value."""
    value = _FNV_OFFSET
    for digest in digests:
        for shift in (0, 16, 32, 48):
            value ^= (digest >> shift) & 0xFFFF
            value = (value * _FNV_PRIME) & _MASK64
    return value
