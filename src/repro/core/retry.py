"""Retry with exponential backoff for transient storage faults.

Durable backends can fail transiently (SQLite lock contention, NFS
hiccups). Checkpointing must not lose a cell's delta to a fault that
would have succeeded milliseconds later, so storage operations run under
a :class:`RetryPolicy`: :class:`~repro.errors.TransientStorageError`
triggers capped exponential backoff; any other error propagates
immediately (permanent faults are not worth waiting on, and a
:class:`~repro.errors.SimulatedCrash` must never be absorbed).

The sleep function is injectable so tests drive retries through a
virtual clock (``repro.faults.clock``) without real waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

from repro.errors import TransientStorageError

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Capped exponential backoff: delays base, base*mult, base*mult², …"""

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    #: Observability sink for ``retry`` / ``retry_exhausted`` events
    #: (DESIGN.md §11); sessions bind their observer here. ``None`` (and
    #: the disabled observer) keep :meth:`run` allocation-free.
    observer: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def run(self, operation: Callable[[], T]) -> T:
        """Run ``operation``, retrying transient storage errors.

        Raises the last :class:`TransientStorageError` once attempts are
        exhausted — callers decide whether to then degrade (tombstone) or
        abort the checkpoint.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return operation()
            except TransientStorageError as exc:
                observer = self.observer
                if attempt >= self.max_attempts:
                    if observer is not None:
                        observer.event(
                            "retry_exhausted",
                            attempts=attempt,
                            error=str(exc),
                        )
                    raise
                delay = self.delay_for(attempt)
                if observer is not None:
                    observer.event(
                        "retry",
                        attempt=attempt,
                        delay=delay,
                        error=str(exc),
                    )
                self.sleep(delay)


#: Policy for contexts that must not retry (e.g. benchmarks isolating
#: single-attempt write cost).
NO_RETRY = RetryPolicy(max_attempts=1)
