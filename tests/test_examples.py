"""Smoke tests: every example script runs cleanly end to end."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    env = dict(os.environ, REPRO_SCALE="0.05")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_exist():
    # The deliverable: at least a quickstart plus domain scenarios.
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
