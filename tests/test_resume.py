"""Tests for session durability: resume from a store after kernel restart."""

from __future__ import annotations

import pytest

from repro.core.graph import CheckpointGraph, ROOT_ID
from repro.core.session import KishuSession
from repro.core.storage import InMemoryCheckpointStore, SQLiteCheckpointStore
from repro.kernel.kernel import NotebookKernel


def build_session(store):
    kernel = NotebookKernel()
    session = KishuSession.init(kernel, store=store)
    kernel.run_cell("base = [1, 2, 3]")
    kernel.run_cell("derived = {'sum': sum(base), 'ref': base}")
    kernel.run_cell("note = 'hello'")
    return kernel, session


class TestGraphReconstruction:
    def test_from_store_rebuilds_topology(self):
        store = InMemoryCheckpointStore()
        _, session = build_session(store)
        rebuilt = CheckpointGraph.from_store(store)
        assert len(rebuilt) == len(session.graph)
        assert rebuilt.head_id == session.graph.head_id
        for node in session.graph.all_nodes():
            if node.node_id == ROOT_ID:
                continue
            clone = rebuilt.get(node.node_id)
            assert clone.parent_id == node.parent_id
            assert clone.cell_source == node.cell_source
            assert clone.state == node.state
            assert set(clone.updated) == set(node.updated)

    def test_from_store_preserves_payload_availability(self):
        store = InMemoryCheckpointStore()
        kernel = NotebookKernel()
        KishuSession.init(kernel, store=store)
        kernel.run_cell("gen = (i for i in range(2))")  # unserializable
        rebuilt = CheckpointGraph.from_store(store)
        (info,) = rebuilt.get("t1").updated.values()
        assert not info.stored

    def test_from_empty_store(self):
        rebuilt = CheckpointGraph.from_store(InMemoryCheckpointStore())
        assert rebuilt.head_id == ROOT_ID
        assert len(rebuilt) == 1


class TestSessionResume:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_resume_restores_head_state(self, backend, tmp_path):
        if backend == "memory":
            store = InMemoryCheckpointStore()
        else:
            store = SQLiteCheckpointStore(str(tmp_path / "kishu.db"))
        old_kernel, _ = build_session(store)

        # Simulate a kernel crash: brand-new kernel, same store.
        fresh_kernel = NotebookKernel()
        resumed = KishuSession.resume(fresh_kernel, store)
        assert fresh_kernel.get("base") == [1, 2, 3]
        assert fresh_kernel.get("derived")["sum"] == 6
        assert fresh_kernel.get("note") == "hello"
        # Shared references survive the restart.
        assert fresh_kernel.get("derived")["ref"] is fresh_kernel.get("base")
        store.close()

    def test_resume_continues_checkpointing(self):
        store = InMemoryCheckpointStore()
        _, original = build_session(store)
        last = original.head_id

        fresh_kernel = NotebookKernel()
        resumed = KishuSession.resume(fresh_kernel, store)
        fresh_kernel.run_cell("extra = len(base)")
        assert resumed.graph.head.parent_id == last
        assert fresh_kernel.get("extra") == 3

    def test_resume_can_time_travel_into_pre_restart_history(self):
        store = InMemoryCheckpointStore()
        build_session(store)

        fresh_kernel = NotebookKernel()
        resumed = KishuSession.resume(fresh_kernel, store)
        resumed.checkout("t1")
        assert fresh_kernel.get("base") == [1, 2, 3]
        assert fresh_kernel.get("derived", "<absent>") == "<absent>"

    def test_resume_recomputes_unserializable_state(self):
        store = InMemoryCheckpointStore()
        kernel = NotebookKernel()
        KishuSession.init(kernel, store=store)
        kernel.run_cell("import hashlib")
        kernel.run_cell("digest = hashlib.sha256(b'payload')")
        expected = kernel.get("digest").hexdigest()

        fresh_kernel = NotebookKernel()
        KishuSession.resume(fresh_kernel, store)
        assert fresh_kernel.get("digest").hexdigest() == expected

    def test_resume_from_empty_store_is_clean_session(self):
        fresh_kernel = NotebookKernel()
        resumed = KishuSession.resume(fresh_kernel, InMemoryCheckpointStore())
        assert resumed.head_id == ROOT_ID
        fresh_kernel.run_cell("x = 1")
        assert resumed.head_id == "t1"
