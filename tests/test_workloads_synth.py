"""Direct unit tests for the synthetic workload generators and specs.

The Fig 18/19 generators were previously exercised only through the
benchmark harness; these tests pin their contracts directly — validation,
cell structure, aliasing shape, re-execution pools — plus the
``PYTHONHASHSEED`` independence audit: generated cell text must be a pure
function of the arguments in any interpreter.
"""

import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.kernel.kernel import NotebookKernel
from repro.workloads.spec import NotebookSpec, make_cells
from repro.workloads.synth import long_session_cells, shared_referencing_workload


class TestSharedReferencingWorkload:
    def test_rejects_out_of_range_bundle_size(self):
        with pytest.raises(ValueError, match="arrays_in_covariable"):
            shared_referencing_workload(0)
        with pytest.raises(ValueError, match="arrays_in_covariable"):
            shared_referencing_workload(11, n_arrays=10)

    def test_rejects_unknown_probe(self):
        with pytest.raises(ValueError, match="probe"):
            shared_referencing_workload(3, probe="sideways")

    def test_cell_structure(self):
        spec = shared_referencing_workload(3, n_arrays=10)
        # import + N_ELEMENTS + ten arrays + bundle + probe.
        assert spec.cell_count == 14
        assert spec.name == "SharedRef-3of10"
        assert spec.cells[-2].source == "bundle = [arr_0, arr_1, arr_2]"
        assert spec.cells[-1].has_tag("probe")
        assert "bundle[0]" in spec.cells[-1].source

    def test_member_probe_targets_the_array_name(self):
        spec = shared_referencing_workload(2, probe="member")
        assert spec.cells[-1].source.startswith("arr_0[:]")

    def test_workload_executes_with_real_aliasing(self):
        spec = shared_referencing_workload(2, array_kb=1)
        kernel = NotebookKernel()
        for cell in spec.cells:
            kernel.run_cell(cell)
        variables = kernel.user_variables()
        assert variables["bundle"][0] is variables["arr_0"]
        assert variables["bundle"][1] is variables["arr_1"]
        assert len(variables["bundle"]) == 2

    def test_deterministic_across_calls(self):
        first = shared_referencing_workload(4)
        second = shared_referencing_workload(4)
        assert [c.source for c in first.cells] == [c.source for c in second.cells]


class TestLongSessionCells:
    def _spec(self):
        return NotebookSpec(
            name="Tiny",
            topic="test",
            library="none",
            final=True,
            hidden_states=0,
            out_of_order_cells=0,
            cells=make_cells(
                [
                    ("a = [1]", ()),
                    ("a.append(2)", ()),
                    ("b = len(a)", ()),
                ]
            ),
        )

    def test_short_request_is_a_prefix(self):
        spec = self._spec()
        cells = long_session_cells(spec, 2)
        assert cells == list(spec.cells)[:2]

    def test_long_request_reexecutes_from_the_pool(self):
        spec = self._spec()
        cells = long_session_cells(spec, 10, seed=3)
        assert len(cells) == 10
        assert cells[:3] == list(spec.cells)
        pool_ids = {cell.cell_id for cell in spec.cells}
        assert all(cell.cell_id in pool_ids for cell in cells[3:])

    def test_deterministic_for_a_seed(self):
        spec = self._spec()
        first = [c.cell_id for c in long_session_cells(spec, 12, seed=5)]
        second = [c.cell_id for c in long_session_cells(spec, 12, seed=5)]
        assert first == second

    def test_sequence_executes_cleanly(self):
        spec = self._spec()
        kernel = NotebookKernel()
        for cell in long_session_cells(spec, 8, seed=1):
            kernel.run_cell(cell)


class TestNotebookSpec:
    def test_make_cells_assigns_ids_and_tags(self):
        cells = make_cells([("a = 1", ("undo-target",)), ("b = 2", ())])
        assert cells[0].cell_id == "cell-0"
        assert cells[0].has_tag("undo-target")
        assert not cells[1].tags

    def test_undo_and_branch_properties(self):
        spec = NotebookSpec(
            name="S",
            topic="t",
            library="l",
            final=False,
            hidden_states=1,
            out_of_order_cells=0,
            cells=make_cells(
                [
                    ("a = 1", ("undo-target",)),
                    ("b = 2", ("undo-target",)),
                    ("m = 3", ("model-train",)),
                ]
            ),
        )
        assert spec.undo_target_indices == [0, 1]
        assert spec.primary_undo_index == 1  # falls back to the last target
        assert spec.branch_point_index == 1
        assert spec.category == "in-progress"


class TestHashSeedIndependence:
    """Workload cell text must not depend on interpreter hash salting."""

    SCRIPT = textwrap.dedent(
        """
        import hashlib
        from repro.workloads.synth import (
            long_session_cells,
            shared_referencing_workload,
        )
        digest = hashlib.sha256()
        for k in (1, 3, 7):
            spec = shared_referencing_workload(k, array_kb=1)
            for cell in spec.cells:
                digest.update(cell.source.encode())
        spec = shared_referencing_workload(2, array_kb=1)
        for cell in long_session_cells(spec, 30, seed=4):
            digest.update(cell.cell_id.encode())
        print(digest.hexdigest())
        """
    )

    def _digest(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(pathlib.Path(__file__).parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return result.stdout.strip()

    def test_identical_across_hash_seeds(self):
        assert self._digest("0") == self._digest("31337")
