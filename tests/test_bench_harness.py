"""Tests for the benchmark harness, report rendering, and simulated disk."""

from __future__ import annotations

import time

import pytest

from repro.baselines import DumpSessionMethod, KishuMethod
from repro.bench import (
    branch_experiment,
    format_series,
    format_table,
    human_bytes,
    human_seconds,
    run_notebook_with_method,
    run_notebook_with_tracker,
    speedup,
    time_call,
    undo_experiment,
)
from repro.bench.disk import SimulatedDisk, paper_nfs_disk
from repro.tracking import KishuTracker
from repro.workloads.spec import NotebookSpec, make_cells


def tiny_spec() -> NotebookSpec:
    entries = [
        ("x = [1]", ()),
        ("y = x + [2]", ()),
        ("model = sorted(y)", ("model-train",)),
        ("x.append(3)", ("undo-target",)),
    ]
    return NotebookSpec(
        name="Tiny", topic="t", library="l", final=True,
        hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
    )


class TestHarness:
    def test_run_notebook_with_method_counts(self):
        run = run_notebook_with_method(tiny_spec(), KishuMethod)
        assert len(run.method.checkpoint_costs) == 4
        assert run.notebook_runtime > 0
        assert run.checkpoint_overhead_fraction >= 0

    def test_run_notebook_with_tracker(self):
        tracker, runtime = run_notebook_with_tracker(tiny_spec(), KishuTracker)
        assert len(tracker.costs) == 4
        assert runtime > 0

    def test_undo_experiment_continues_after_undo(self):
        run, undos = undo_experiment(tiny_spec(), KishuMethod)
        assert len(undos) == 1
        # Incremental method: kernel was rolled back then redone.
        assert run.kernel.get("x") == [1, 3]

    def test_undo_experiment_fresh_kernel_method(self):
        run, undos = undo_experiment(tiny_spec(), DumpSessionMethod)
        assert undos[0].cost.restored["x"] == [1]
        assert run.kernel.get("x") == [1, 3]  # original untouched

    def test_branch_experiment(self):
        run, measurement = branch_experiment(tiny_spec(), KishuMethod)
        assert measurement is not None
        assert measurement.branch_point == 1
        assert not measurement.switch_cost.failed

    def test_branch_experiment_no_branch_point(self):
        entries = [("a = 1", ()), ("b = 2", ())]
        spec = NotebookSpec(
            name="NoModels", topic="t", library="l", final=True,
            hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
        )
        _, measurement = branch_experiment(spec, KishuMethod)
        assert measurement is None

    def test_time_call(self):
        value, seconds = time_call(lambda: 42)
        assert value == 42
        assert seconds >= 0


class TestSimulatedDisk:
    def test_charges_time_proportional_to_bytes(self):
        disk = SimulatedDisk(read_bandwidth=10e6, write_bandwidth=10e6)
        started = time.perf_counter()
        disk.charge_write(1_000_000)  # 0.1 s at 10 MB/s
        elapsed = time.perf_counter() - started
        assert 0.05 < elapsed < 0.5
        assert disk.bytes_written == 1_000_000
        assert disk.seconds_charged > 0

    def test_zero_bytes_free(self):
        disk = SimulatedDisk()
        disk.charge_read(0)
        assert disk.seconds_charged == 0

    def test_paper_disk_bandwidths(self):
        disk = paper_nfs_disk()
        assert disk.read_bandwidth > disk.write_bandwidth  # 519.8 vs 358.9 MB/s

    def test_methods_accept_disk(self):
        disk = SimulatedDisk(read_bandwidth=1e12, write_bandwidth=1e12)
        run = run_notebook_with_method(tiny_spec(), KishuMethod, disk=disk)
        assert disk.bytes_written > 0
        cost = run.method.checkout(0)
        assert not cost.failed
        assert disk.bytes_read >= 0


class TestReportRendering:
    def test_human_bytes(self):
        assert human_bytes(512) == "512B"
        assert human_bytes(1536) == "1.5KB"
        assert human_bytes(3 * 1024 * 1024) == "3.0MB"

    def test_human_seconds(self):
        assert human_seconds(0.0000005).endswith("us")
        assert human_seconds(0.25) == "250.0ms"
        assert human_seconds(3.5) == "3.50s"

    def test_format_table_alignment(self):
        table = format_table(["A", "Blong"], [["x", 1], ["yy", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series("s", [1, 2], [10, 20])
        assert out == "s: 1=10, 2=20"

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")
