"""Tests for the state trackers compared in §7.6."""

from __future__ import annotations

import pytest

from repro.bench import run_notebook_with_tracker
from repro.tracking import AblatedKishuTracker, IPyFlowTracker, KishuTracker
from repro.workloads.spec import NotebookSpec, make_cells


def wide_state_notebook(n_variables: int = 40) -> NotebookSpec:
    """Many independent variables, then cells touching only one."""
    entries = [(f"v{i} = list(range(200))", ()) for i in range(n_variables)]
    entries.extend((f"v0.append({i})", ()) for i in range(10))
    return NotebookSpec(
        name="Wide", topic="t", library="l", final=True,
        hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
    )


def loop_notebook(iterations: int) -> NotebookSpec:
    entries = [
        ("data = list(range(100))", ()),
        (
            "acc = 0\n"
            "i = 0\n"
            f"while i < {iterations}:\n"
            "    if i % 2 == 0:\n"
            "        acc += data[i % len(data)]\n"
            "    else:\n"
            "        acc -= 1\n"
            "    i += 1",
            (),
        ),
    ]
    return NotebookSpec(
        name="Loop", topic="t", library="l", final=True,
        hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
    )


class TestKishuTracker:
    def test_records_one_cost_per_cell(self):
        tracker, _ = run_notebook_with_tracker(wide_state_notebook(5), KishuTracker)
        assert len(tracker.costs) == 15

    def test_overhead_positive(self):
        tracker, runtime = run_notebook_with_tracker(
            wide_state_notebook(5), KishuTracker
        )
        assert tracker.total_tracking_seconds() > 0
        assert tracker.overhead_fraction_of(runtime) > 0

    def test_pruning_beats_check_all_on_wide_state(self):
        # The §4.3 claim: pruned detection cost is bounded by the accessed
        # portion, not the whole (wide) state.
        spec = wide_state_notebook(40)
        pruned, _ = run_notebook_with_tracker(spec, KishuTracker)
        ablated, _ = run_notebook_with_tracker(spec, AblatedKishuTracker)
        # Compare only the narrow-access cells at the end.
        pruned_tail = sum(cost.seconds for cost in pruned.costs[-10:])
        ablated_tail = sum(cost.seconds for cost in ablated.costs[-10:])
        assert pruned_tail * 2 < ablated_tail

    def test_detects_same_updates_as_ablated(self):
        spec = wide_state_notebook(8)
        pruned, _ = run_notebook_with_tracker(spec, KishuTracker)
        ablated, _ = run_notebook_with_tracker(spec, AblatedKishuTracker)
        assert pruned.pool.keys() == ablated.pool.keys()


class TestIPyFlowTracker:
    def test_overhead_scales_with_loop_iterations(self):
        short, _ = run_notebook_with_tracker(loop_notebook(200), IPyFlowTracker)
        long, _ = run_notebook_with_tracker(loop_notebook(4000), IPyFlowTracker)
        assert long.costs[1].seconds > short.costs[1].seconds * 3

    def test_kishu_unaffected_by_loop_iterations(self):
        # Kishu's live analysis runs *between* cells, so looping control
        # flow inside the cell costs it nothing extra (§2.4).
        short, _ = run_notebook_with_tracker(loop_notebook(200), KishuTracker)
        long, _ = run_notebook_with_tracker(loop_notebook(4000), KishuTracker)
        assert long.costs[1].seconds < short.costs[1].seconds * 5

    def test_fails_on_event_bound(self):
        tracker = None

        def factory(kernel):
            nonlocal tracker
            tracker = IPyFlowTracker(kernel, max_events_per_cell=500)
            return tracker

        run_notebook_with_tracker(loop_notebook(2000), factory)
        assert tracker.failed
        assert "complex control flow" in tracker.failure_reason

    def test_resolves_symbols_live(self):
        spec = loop_notebook(50)
        tracker, _ = run_notebook_with_tracker(spec, IPyFlowTracker)
        assert "data" in tracker._resolved_symbols or "acc" in tracker._resolved_symbols

    def test_tracer_uninstalled_after_cell(self):
        import sys

        run_notebook_with_tracker(loop_notebook(10), IPyFlowTracker)
        assert sys.gettrace() is None

    def test_overhead_ratio(self):
        tracker, _ = run_notebook_with_tracker(loop_notebook(500), IPyFlowTracker)
        cost = tracker.costs[1]
        assert cost.overhead_ratio > 0
