"""Tests for object traversal rules (reachability, §4.1)."""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro.core.objectwalk import DEFAULT_POLICY, TraversalPolicy, Visit


@pytest.fixture
def policy():
    return TraversalPolicy()


class TestLeafKinds:
    @pytest.mark.parametrize(
        "value", [None, True, 3, 2.5, 1 + 2j, "text", b"bytes"]
    )
    def test_primitives(self, policy, value):
        visit = policy.visit(value)
        assert visit.kind == "primitive"
        assert visit.value == value

    def test_ndarray_digested(self, policy):
        visit = policy.visit(np.arange(5))
        assert visit.kind == "array"
        assert isinstance(visit.value, int)

    def test_bytearray_digested(self, policy):
        assert policy.visit(bytearray(b"xy")).kind == "array"

    def test_memoryview_digested(self, policy):
        assert policy.visit(memoryview(b"xy")).kind == "array"

    def test_range_is_primitive(self, policy):
        visit = policy.visit(range(2, 20, 3))
        assert visit.kind == "primitive"
        assert visit.value == (2, 20, 3)

    def test_module_is_primitive(self, policy):
        visit = policy.visit(np)
        assert visit.kind == "primitive"
        assert "numpy" in str(visit.value)

    def test_class_is_primitive(self, policy):
        visit = policy.visit(dict)
        assert visit.kind == "primitive"


class TestCompositeKinds:
    def test_dict_children_include_keys_and_values(self, policy):
        visit = policy.visit({"k": 1})
        assert visit.kind == "composite"
        assert visit.children == ("k", 1)

    def test_list_and_tuple(self, policy):
        assert policy.visit([1, 2]).children == (1, 2)
        assert policy.visit((1, 2)).children == (1, 2)

    def test_set_children_sorted_for_stability(self, policy):
        first = policy.visit({"b", "a", "c"}).children
        second = policy.visit({"c", "a", "b"}).children
        assert first == second

    def test_instance_dict(self, policy):
        class Box:
            def __init__(self):
                self.content = [1]

        visit = policy.visit(Box())
        assert visit.kind == "composite"
        assert "content" in visit.children

    def test_reduce_fallback_for_dictless_instances(self, policy):
        class Reduced:
            __slots__ = ()

            def __reduce__(self):
                return (Reduced, ("arg",))

        visit = policy.visit(Reduced())
        assert visit.kind == "composite"
        assert "arg" in visit.children


class TestOpaqueKinds:
    def test_generator(self, policy):
        assert policy.visit((i for i in range(2))).kind == "opaque"

    def test_object_without_state_or_reduction(self, policy):
        class Stateless:
            __slots__ = ()

            def __reduce_ex__(self, protocol):
                raise TypeError("nope")

            def __reduce__(self):
                raise TypeError("nope")

        assert policy.visit(Stateless()).kind == "opaque"


class TestFunctions:
    def test_plain_function_is_leaf(self, policy):
        def f():
            return 1

        visit = policy.visit(f)
        assert visit.kind == "primitive"

    def test_closure_contents_are_children(self, policy):
        state = [1, 2]

        def make():
            def f():
                return state

            return f

        visit = policy.visit(make())
        assert visit.kind == "composite"
        assert state in visit.children

    def test_defaults_are_children(self, policy):
        default = [3]
        namespace = {"default": default}
        exec("def f(x=default):\n    return x", namespace)
        visit = policy.visit(namespace["f"])
        assert default in visit.children

    def test_bound_method_self_is_child(self, policy):
        class Owner:
            def method(self):
                return 1

        owner = Owner()
        visit = policy.visit(owner.method)
        assert owner in visit.children


class TestRegistration:
    def test_later_registration_wins(self, policy):
        policy.register(list, lambda obj: Visit(kind="primitive", value="first"))
        policy.register(list, lambda obj: Visit(kind="primitive", value="second"))
        assert policy.visit([1]).value == "second"

    def test_default_policy_is_shared_instance(self):
        assert DEFAULT_POLICY is DEFAULT_POLICY
        assert DEFAULT_POLICY.visit(1).kind == "primitive"
