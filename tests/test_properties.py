"""Property-based tests on core invariants (hypothesis)."""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covariable import covar_key, group_into_components
from repro.core.graph import CheckpointGraph, PayloadInfo
from repro.core.hashing import combine, digest_bytes, fnv1a64
from repro.core.serialization import SerializerChain
from repro.core.vargraph import VarGraphBuilder
from repro.core.versioning import SessionState
import pytest

pytestmark = pytest.mark.slow

# -- strategies ----------------------------------------------------------------

primitives = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.binary(max_size=12),
)

nested_data = st.recursive(
    primitives,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=20,
)

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=122),
    min_size=1,
    max_size=8,
)


# -- hashing -------------------------------------------------------------------


class TestHashingProperties:
    @given(st.binary(max_size=256))
    def test_fnv_deterministic(self, data):
        assert fnv1a64(data) == fnv1a64(data)

    @given(st.binary(max_size=256))
    def test_digest_in_64_bit_range(self, data):
        assert 0 <= digest_bytes(data) < 2**64

    @given(st.lists(st.integers(min_value=0, max_value=2**63), max_size=8))
    def test_combine_deterministic(self, digests):
        assert combine(*digests) == combine(*digests)


# -- vargraph ---------------------------------------------------------------------


class TestVarGraphProperties:
    @settings(max_examples=60)
    @given(nested_data)
    def test_rebuild_of_same_object_is_equal(self, data):
        builder = VarGraphBuilder()
        first = builder.build("x", data)
        second = builder.build("x", data)
        assert not first.differs_from(second)

    @settings(max_examples=60)
    @given(nested_data)
    def test_graph_is_closed_under_children(self, data):
        graph = VarGraphBuilder().build("x", data)
        for node in graph.nodes:
            for child_index in node.children:
                assert 0 <= child_index < len(graph.nodes)

    @settings(max_examples=40)
    @given(st.lists(st.integers(), min_size=1, max_size=10))
    def test_mutation_always_detected(self, values):
        builder = VarGraphBuilder()
        data = list(values)
        before = builder.build("ls", data)
        data.append(999_999_999)
        after = builder.build("ls", data)
        assert before.differs_from(after)


# -- co-variable grouping ------------------------------------------------------------


class TestGroupingProperties:
    @settings(max_examples=40)
    @given(st.dictionaries(names, nested_data, min_size=1, max_size=6))
    def test_components_partition_the_names(self, namespace):
        graphs = VarGraphBuilder().build_many(namespace)
        components = group_into_components(graphs)
        flattened = [name for component in components for name in component]
        assert sorted(flattened) == sorted(namespace)

    @settings(max_examples=40)
    @given(st.dictionaries(names, nested_data, min_size=2, max_size=6))
    def test_components_agree_with_pairwise_sharing(self, namespace):
        graphs = VarGraphBuilder().build_many(namespace)
        components = group_into_components(graphs)
        membership = {}
        for index, component in enumerate(components):
            for name in component:
                membership[name] = index
        for a in namespace:
            for b in namespace:
                if a < b and graphs[a].shares_objects_with(graphs[b]):
                    assert membership[a] == membership[b]


# -- serialization ----------------------------------------------------------------------


class TestSerializationProperties:
    @settings(max_examples=50)
    @given(nested_data)
    def test_payload_roundtrip_preserves_value(self, data):
        chain = SerializerChain()
        blob, pickler = chain.serialize({"x"}, {"x": data})
        assert chain.deserialize(blob, pickler)["x"] == pickle.loads(
            pickle.dumps(data, protocol=5)
        )

    @settings(max_examples=30)
    @given(st.lists(st.integers(), min_size=1, max_size=5))
    def test_shared_references_survive_roundtrip(self, values):
        chain = SerializerChain()
        shared = list(values)
        blob, pickler = chain.serialize(
            {"a", "b"}, {"a": shared, "b": [shared, shared]}
        )
        out = chain.deserialize(blob, pickler)
        assert out["b"][0] is out["a"]
        assert out["b"][1] is out["a"]


# -- session state / checkpoint graph -------------------------------------------------------


class TestSessionStateProperties:
    @settings(max_examples=50)
    @given(st.lists(st.sets(names, min_size=1, max_size=3), max_size=8))
    def test_state_keys_never_share_names(self, update_sequence):
        """Applying any sequence of updates keeps the state a partition:
        no variable name may belong to two live co-variables."""
        state = SessionState()
        for step, key_names in enumerate(update_sequence):
            state = state.child(f"t{step + 1}", [covar_key(key_names)], [])
            seen = set()
            for key in state.keys():
                assert not (key & seen)
                seen |= key

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20))
    def test_lca_is_common_ancestor(self, parent_choices):
        """On a randomly grown tree, the LCA is an ancestor of both nodes
        and is the deepest such node on the root path."""
        graph = CheckpointGraph()
        node_ids = ["t0"]
        for choice in parent_choices:
            parent = node_ids[choice % len(node_ids)]
            key = covar_key({"x"})
            node = graph.add_node(
                cell_source="c",
                execution_count=len(node_ids),
                updated={
                    key: PayloadInfo(key=key, stored=True, serializer="p", size_bytes=1)
                },
                deleted=set(),
                dependencies={},
                parent_id=parent,
            )
            node_ids.append(node.node_id)
        a, b = node_ids[len(node_ids) // 2], node_ids[-1]
        lca = graph.lowest_common_ancestor(a, b)
        assert graph.is_ancestor(lca, a)
        assert graph.is_ancestor(lca, b)
        path_a = set(graph.path_to_root(a))
        path_b = set(graph.path_to_root(b))
        common = path_a & path_b
        assert max(common, key=graph.depth_of) == lca

    @settings(max_examples=30)
    @given(st.lists(st.sets(names, min_size=1, max_size=2), min_size=1, max_size=10))
    def test_state_difference_identical_plus_loads_cover_target(self, updates):
        graph = CheckpointGraph()
        for step, key_names in enumerate(updates):
            key = covar_key(key_names)
            graph.add_node(
                cell_source="c",
                execution_count=step,
                updated={
                    key: PayloadInfo(key=key, stored=True, serializer="p", size_bytes=1)
                },
                deleted=set(),
                dependencies={},
            )
        nodes = [n.node_id for n in graph.all_nodes()]
        target = nodes[len(nodes) // 2]
        diff = graph.state_difference(graph.head_id, target)
        target_keys = graph.get(target).state.keys()
        covered = set(diff.identical) | {key for key, _ in diff.to_load}
        assert covered == target_keys
