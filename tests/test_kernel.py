"""Tests for the notebook kernel substrate."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.kernel import (
    Cell,
    ExecutionInfo,
    NotebookKernel,
    POST_RUN_CELL,
    PRE_RUN_CELL,
)


class TestRunCell:
    def test_assignment_updates_namespace(self, kernel):
        kernel.run_cell("x = 41 + 1")
        assert kernel.get("x") == 42

    def test_trailing_expression_is_out_value(self, kernel):
        kernel.run_cell("x = 10")
        result = kernel.run_cell("x * 2")
        assert result.value == 20

    def test_no_trailing_expression_gives_none_value(self, kernel):
        result = kernel.run_cell("y = 5")
        assert result.value is None

    def test_stdout_is_captured(self, kernel):
        result = kernel.run_cell("print('hello')")
        assert result.stdout == "hello\n"

    def test_execution_count_increments(self, kernel):
        first = kernel.run_cell("a = 1")
        second = kernel.run_cell("b = 2")
        assert (first.execution_count, second.execution_count) == (1, 2)

    def test_duration_positive(self, kernel):
        result = kernel.run_cell("sum(range(1000))")
        assert result.duration > 0

    def test_error_raises_kernel_error(self, kernel):
        with pytest.raises(KernelError) as excinfo:
            kernel.run_cell("1 / 0")
        assert isinstance(excinfo.value.cause, ZeroDivisionError)

    def test_error_suppressed_when_requested(self, kernel):
        result = kernel.run_cell("undefined_name", raise_on_error=False)
        assert not result.ok
        assert isinstance(result.error, NameError)

    def test_syntax_error_is_reported_not_raised_internally(self, kernel):
        result = kernel.run_cell("def broken(:", raise_on_error=False)
        assert isinstance(result.error, SyntaxError)

    def test_state_persists_across_cells(self, kernel):
        kernel.run_cell("items = []")
        kernel.run_cell("items.append(1)")
        kernel.run_cell("items.append(2)")
        assert kernel.get("items") == [1, 2]

    def test_functions_defined_in_cells_see_globals(self, kernel):
        kernel.run_cell("base = 10")
        kernel.run_cell("def add(x):\n    return base + x")
        result = kernel.run_cell("add(5)")
        assert result.value == 15

    def test_run_cells_executes_in_order(self, kernel):
        results = kernel.run_cells(["a = 1", "b = a + 1", "b"])
        assert results[-1].value == 2

    def test_imports_work_in_cells(self, kernel):
        result = kernel.run_cell("import math\nmath.floor(2.7)")
        assert result.value == 2


class TestHooks:
    def test_pre_run_receives_execution_info(self, kernel):
        seen = []
        kernel.events.register(PRE_RUN_CELL, seen.append)
        kernel.run_cell(Cell(source="x = 1", cell_id="c0"))
        assert len(seen) == 1
        assert isinstance(seen[0], ExecutionInfo)
        assert seen[0].cell.cell_id == "c0"

    def test_post_run_receives_result(self, kernel):
        seen = []
        kernel.events.register(POST_RUN_CELL, seen.append)
        kernel.run_cell("x = 7")
        assert seen[0].ok
        assert seen[0].execution_count == 1

    def test_hooks_fire_in_registration_order(self, kernel):
        order = []
        kernel.events.register(POST_RUN_CELL, lambda r: order.append("first"))
        kernel.events.register(POST_RUN_CELL, lambda r: order.append("second"))
        kernel.run_cell("pass")
        assert order == ["first", "second"]

    def test_unregister_stops_callbacks(self, kernel):
        seen = []
        kernel.events.register(POST_RUN_CELL, seen.append)
        kernel.events.unregister(POST_RUN_CELL, seen.append)
        kernel.run_cell("pass")
        assert seen == []

    def test_unknown_event_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.events.register("on_sneeze", lambda _: None)

    def test_post_run_fires_even_when_cell_fails(self, kernel):
        seen = []
        kernel.events.register(POST_RUN_CELL, seen.append)
        kernel.run_cell("boom()", raise_on_error=False)
        assert len(seen) == 1
        assert not seen[0].ok


class TestCellModel:
    def test_cell_tags(self):
        cell = Cell.make("x = 1", "c1", "deterministic", "model-train")
        assert cell.has_tag("deterministic")
        assert not cell.has_tag("undo-target")

    def test_total_runtime_accumulates(self, kernel):
        kernel.run_cell("a = 1")
        kernel.run_cell("b = 2")
        assert kernel.total_runtime == sum(r.duration for r in kernel.history)

    def test_seed_namespace(self):
        kernel = NotebookKernel(seed_namespace={"preset": 99})
        assert kernel.get("preset") == 99
        result = kernel.run_cell("preset + 1")
        assert result.value == 100
