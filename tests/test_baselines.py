"""Tests for the baseline checkpoint/checkout methods (§7.1)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CRIUIncrementalMethod,
    CRIUMethod,
    DetReplayMethod,
    DumpSessionMethod,
    ElasticNotebookMethod,
    KishuMethod,
    KVStoreMethod,
)
from repro.bench import run_notebook_with_method, undo_experiment
from repro.workloads.spec import NotebookSpec, make_cells


def small_notebook() -> NotebookSpec:
    entries = [
        ("xs = [1, 2, 3]", ()),
        ("ys = {'ref': xs}", ()),
        ("total = sum(xs)", ()),
        ("xs.append(4)", ("undo-target",)),
        ("final = sum(xs)", ()),
    ]
    return NotebookSpec(
        name="Tiny",
        topic="test",
        library="none",
        final=True,
        hidden_states=0,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


ALL_FACTORIES = [
    KishuMethod,
    DetReplayMethod,
    CRIUMethod,
    CRIUIncrementalMethod,
    DumpSessionMethod,
    ElasticNotebookMethod,
    KVStoreMethod,
]


class TestAllMethodsBasic:
    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
    def test_checkpoint_and_checkout_roundtrip(self, factory):
        run = run_notebook_with_method(small_notebook(), factory)
        assert run.checkpoint_failures == 0
        cost = run.method.checkout(2)  # state after "total = sum(xs)"
        assert not cost.failed
        assert cost.restored["xs"] == [1, 2, 3]
        assert cost.restored["total"] == 6

    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
    def test_storage_accounted(self, factory):
        run = run_notebook_with_method(small_notebook(), factory)
        assert run.total_storage_bytes > 0
        assert run.total_checkpoint_seconds > 0


class TestSharedReferenceCorrectness:
    def test_kishu_preserves_shared_references(self):
        run = run_notebook_with_method(small_notebook(), KishuMethod)
        cost = run.method.checkout(2)
        assert cost.restored["ys"]["ref"] is cost.restored["xs"]

    def test_dumpsession_preserves_shared_references(self):
        run = run_notebook_with_method(small_notebook(), DumpSessionMethod)
        cost = run.method.checkout(2)
        assert cost.restored["ys"]["ref"] is cost.restored["xs"]

    def test_kvstore_breaks_shared_references(self):
        # The §2.4 motivation: per-variable stores sever aliasing.
        run = run_notebook_with_method(small_notebook(), KVStoreMethod)
        cost = run.method.checkout(2)
        assert cost.restored["ys"]["ref"] == cost.restored["xs"]
        assert cost.restored["ys"]["ref"] is not cost.restored["xs"]


class TestFailureModes:
    def offprocess_notebook(self) -> NotebookSpec:
        entries = [
            ("from repro.libsim.deep_learning import SimTorchTensorGPU", ()),
            ("tensor = SimTorchTensorGPU(shape=(4, 4), seed=0)", ()),
            ("tensor.scale_(2.0)", ()),
        ]
        return NotebookSpec(
            name="GPU", topic="t", library="l", final=True,
            hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
        )

    def unserializable_notebook(self) -> NotebookSpec:
        entries = [
            ("import hashlib", ()),
            ("digest = hashlib.sha256(b'x')", ()),
            ("count = 1", ()),
        ]
        return NotebookSpec(
            name="Hash", topic="t", library="l", final=True,
            hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
        )

    def test_criu_fails_on_offprocess_state(self):
        run = run_notebook_with_method(self.offprocess_notebook(), CRIUMethod)
        assert run.checkpoint_failures >= 2  # every cell after the tensor

    def test_kishu_handles_offprocess_state(self):
        spec = self.offprocess_notebook()
        run = run_notebook_with_method(spec, KishuMethod)
        assert run.checkpoint_failures == 0
        cost = run.method.checkout(1)
        assert not cost.failed
        assert cost.restored["tensor"].cpu().data.shape == (4, 4)

    def test_dumpsession_fails_on_unserializable_state(self):
        run = run_notebook_with_method(self.unserializable_notebook(), DumpSessionMethod)
        assert run.checkpoint_failures >= 2  # every dump after the hash

    def test_kishu_handles_unserializable_state(self):
        run = run_notebook_with_method(self.unserializable_notebook(), KishuMethod)
        assert run.checkpoint_failures == 0
        cost = run.method.checkout(2)
        assert not cost.failed
        assert cost.restored["count"] == 1
        assert cost.restored["digest"].name == "sha256"


class TestCheckoutSemantics:
    def test_kishu_checkout_is_in_place(self):
        spec = small_notebook()
        run = run_notebook_with_method(spec, KishuMethod)
        cost = run.method.checkout(2)
        assert not cost.kernel_killed
        # The live kernel itself was rewound.
        assert run.kernel.get("xs") == [1, 2, 3]

    def test_criu_checkout_kills_kernel(self):
        spec = small_notebook()
        run = run_notebook_with_method(spec, CRIUMethod)
        cost = run.method.checkout(2)
        assert cost.kernel_killed
        # The original kernel is untouched (a new process replaced it).
        assert run.kernel.get("xs") == [1, 2, 3, 4]

    def test_criu_incremental_checkout_needs_full_chain(self):
        spec = small_notebook()
        run = run_notebook_with_method(spec, CRIUIncrementalMethod)
        cost = run.method.checkout(4)
        assert not cost.failed
        assert cost.restored["final"] == 10

    def test_elastic_replays_recompute_set(self):
        spec = small_notebook()
        run = run_notebook_with_method(spec, ElasticNotebookMethod)
        cost = run.method.checkout(4)
        assert not cost.failed
        assert cost.restored["final"] == 10


class TestDetReplay:
    def test_deterministic_cells_save_storage(self):
        entries = [
            ("data = list(range(5000))", ()),
            ("model = sorted(data)", ("deterministic",)),
            ("tail = model[-1]", ()),
        ]
        spec = NotebookSpec(
            name="Det", topic="t", library="l", final=True,
            hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
        )
        kishu_run = run_notebook_with_method(spec, KishuMethod)
        det_run = run_notebook_with_method(spec, DetReplayMethod)
        assert det_run.total_storage_bytes < kishu_run.total_storage_bytes

    def test_replay_restores_correctly(self):
        entries = [
            ("data = [3, 1, 2]", ()),
            ("model = sorted(data)", ("deterministic",)),
            ("model = None", ()),
        ]
        spec = NotebookSpec(
            name="Det", topic="t", library="l", final=True,
            hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
        )
        run = run_notebook_with_method(spec, DetReplayMethod)
        cost = run.method.checkout(1)
        assert cost.restored["model"] == [1, 2, 3]


class TestUndoHarness:
    def test_undo_experiment_reports_measurements(self):
        run, undos = undo_experiment(small_notebook(), KishuMethod)
        assert len(undos) == 1
        assert undos[0].cell_index == 3
        assert not undos[0].cost.failed
        # After undo+redo, the session continued to the end.
        assert run.kernel.get("final") == 10

    def test_undo_restores_pre_cell_state(self):
        run, undos = undo_experiment(small_notebook(), DumpSessionMethod)
        restored = undos[0].cost.restored
        assert restored["xs"] == [1, 2, 3]  # before the append
