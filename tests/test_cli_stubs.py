"""``repro stubs`` CLI and the shared skip-unparseable semantics.

Covers ``repro stubs list|check`` (DESIGN.md §15) and satellite 2 of
PR 9: both ``repro summaries DIR`` and ``repro stubs check DIR`` skip
unparseable or unreadable files with a note on stderr, exiting 2 only
when nothing at all was analyzable.
"""

from __future__ import annotations

import io
import json

from repro import cli
from repro.analysis.stubs import STUB_FORMAT_VERSION

GOOD_SCRIPT = """\
from repro.libsim.data_analysis import SimDataFrame
# %%
df = SimDataFrame(n_rows=4, n_cols=2, seed=1)
# %%
m = df.mean_of('c0')
# %%
df.frobnicate()
"""

USER_STUB = {
    "stub_format": STUB_FORMAT_VERSION,
    "module": "mylib",
    "types": {
        "Thing": {
            "constructor": {"effect": "pure"},
            "methods": {"poke": {"effect": "mutates"}},
        }
    },
}


def run_stubs(argv):
    out, err = io.StringIO(), io.StringIO()
    code = cli.stubs_main(argv, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


def run_summaries(argv):
    out, err = io.StringIO(), io.StringIO()
    code = cli.summaries_main(argv, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestStubsList:
    def test_lists_shipped_modules_and_fingerprint(self):
        code, out, err = run_stubs(["list"])
        assert code == 0
        assert "repro.libsim.data_analysis" in out
        assert "random" in out
        assert "fingerprint" in out
        assert not err

    def test_list_json_is_byte_stable(self):
        first = run_stubs(["--format", "json", "list"])
        second = run_stubs(["--format", "json", "list"])
        assert first == second
        payload = json.loads(first[1])
        modules = {entry["module"] for entry in payload}
        assert "repro.libsim.data_analysis" in modules

    def test_list_includes_user_stub(self, tmp_path):
        path = tmp_path / "mylib.json"
        path.write_text(json.dumps(USER_STUB), encoding="utf-8")
        code, out, _ = run_stubs(["--stub", str(path), "list"])
        assert code == 0
        assert "mylib" in out

    def test_broken_stub_file_exits_2(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        code, _, err = run_stubs(["--stub", str(path), "list"])
        assert code == 2
        assert "broken.json" in err


class TestStubsCheck:
    def test_reports_stubbed_and_unstubbed_calls(self, tmp_path):
        script = tmp_path / "nb.py"
        script.write_text(GOOD_SCRIPT, encoding="utf-8")
        code, out, err = run_stubs(["check", str(script)])
        assert code == 0
        assert "mean_of" in out
        assert "frobnicate" in out
        assert not err

    def test_check_json_shape(self, tmp_path):
        script = tmp_path / "nb.py"
        script.write_text(GOOD_SCRIPT, encoding="utf-8")
        code, out, _ = run_stubs(["--format", "json", "check", str(script)])
        assert code == 0
        report = json.loads(out)
        stubbed = {call["qualname"] for call in report["stub_calls"]}
        unknown = {call["qualname"] for call in report["unknown_calls"]}
        assert any(name.endswith("mean_of") for name in stubbed)
        assert any(name.endswith("frobnicate") for name in unknown)
        (unstubbed,) = report["unknown_calls"]
        assert "libsim_data_analysis" in unstubbed["stub_file"]

    def test_check_directory_skips_unparseable(self, tmp_path):
        (tmp_path / "good.py").write_text(GOOD_SCRIPT, encoding="utf-8")
        (tmp_path / "bad.py").write_text("def broken(:", encoding="utf-8")
        code, out, err = run_stubs(["check", str(tmp_path)])
        assert code == 0
        assert "mean_of" in out
        assert "skipping" in err and "bad.py" in err

    def test_check_nothing_analyzable_exits_2(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:", encoding="utf-8")
        code, _, err = run_stubs(["check", str(tmp_path)])
        assert code == 2
        assert "nothing analyzable" in err

    def test_check_with_user_stub_covers_call(self, tmp_path):
        stub_path = tmp_path / "mylib.json"
        stub_path.write_text(json.dumps(USER_STUB), encoding="utf-8")
        script = tmp_path / "nb.py"
        script.write_text(
            "import mylib\n"
            "# %%\n"
            "t = mylib.Thing()\n"
            "# %%\n"
            "t.poke()\n",
            encoding="utf-8",
        )
        code, out, _ = run_stubs(
            ["--stub", str(stub_path), "--format", "json", "check", str(script)]
        )
        assert code == 0
        report = json.loads(out)
        stubbed = {call["qualname"] for call in report["stub_calls"]}
        assert "mylib.Thing.poke" in stubbed


class TestSummariesSkipSemantics:
    """Satellite 2 regression: dirty directories stay analyzable."""

    def test_directory_skips_unparseable_with_note(self, tmp_path):
        (tmp_path / "good.py").write_text(
            "def f(x):\n    return x + 1\n# %%\ny = f(1)\n",
            encoding="utf-8",
        )
        (tmp_path / "bad.py").write_text("def broken(:", encoding="utf-8")
        code, out, err = run_summaries([str(tmp_path)])
        assert code == 0
        assert "f" in out
        assert "skipping" in err and "bad.py" in err

    def test_all_unparseable_exits_2(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:", encoding="utf-8")
        code, _, err = run_summaries([str(tmp_path)])
        assert code == 2
        assert "nothing analyzable" in err


class TestMainDispatch:
    def test_main_routes_stubs_subcommand(self, capsys, monkeypatch):
        code = cli.main(["stubs", "list"])
        assert code == 0
        assert "fingerprint" in capsys.readouterr().out
