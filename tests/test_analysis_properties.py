"""Property-based soundness of the static write set (DESIGN.md §8).

The cross-validator's escalation logic leans on one invariant: for any
cell without escape hatches, the statically predicted write/delete set
*over-approximates* the names the execution actually rebinds or unbinds.
These tests generate random cells — assignments, augmented assignments,
deletes, comprehensions, nested functions (with and without ``global``),
try/except, walrus operators — run them in a real
:class:`~repro.kernel.kernel.NotebookKernel`, and assert the superset
relation against the observed namespace diff.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.analysis import analyze_cell  # noqa: E402
from repro.kernel.kernel import NotebookKernel  # noqa: E402

pytestmark = pytest.mark.slow

SEED_NAMES = ("a", "b", "c", "d")
FRESH_NAMES = ("p", "q", "r", "s")

names = st.sampled_from(SEED_NAMES + FRESH_NAMES)
seeded = st.sampled_from(SEED_NAMES)
literals = st.integers(min_value=0, max_value=9).map(str)
atoms = st.one_of(seeded, literals)


def expressions():
    binary = st.tuples(atoms, st.sampled_from(("+", "*")), atoms).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    return st.one_of(atoms, binary)


assignments = st.tuples(names, expressions()).map(lambda t: f"{t[0]} = {t[1]}")
aug_assignments = st.tuples(seeded, expressions()).map(lambda t: f"{t[0]} += {t[1]}")
deletes = seeded.map(lambda n: f"del {n}")
comprehensions = st.tuples(names, expressions()).map(
    lambda t: f"{t[0]} = [{t[1]} for _i in range(3)]"
)
walrus_comprehensions = st.tuples(names, seeded).map(
    lambda t: f"xs = [({t[0]} := {t[1]} + _i) for _i in range(2)]"
)
global_functions = st.tuples(names, expressions()).map(
    lambda t: f"def _fn():\n    global {t[0]}\n    {t[0]} = {t[1]}\n_fn()"
)
local_functions = st.tuples(names, expressions()).map(
    lambda t: f"def _fn({t[0]}=0):\n    {t[0]} = {t[1]}\n    return {t[0]}\n_fn()"
)
try_excepts = st.tuples(names, seeded, expressions()).map(
    lambda t: (
        f"try:\n    {t[0]} = {t[1]}[0]\n"
        f"except TypeError:\n    {t[0]} = {t[2]}"
    )
)

statements = st.one_of(
    assignments,
    aug_assignments,
    deletes,
    comprehensions,
    walrus_comprehensions,
    global_functions,
    local_functions,
    try_excepts,
)

cells = st.lists(statements, min_size=1, max_size=6).map("\n".join)


def run_and_diff(source: str):
    """Execute ``source`` in a seeded kernel; return (effects, rebound, unbound)."""
    kernel = NotebookKernel()
    kernel.run_cell("a, b, c, d = 0, 1, 2, 3")
    before = dict(kernel.user_variables())
    kernel.run_cell(source, raise_on_error=False)
    after = dict(kernel.user_variables())
    rebound = {
        name
        for name in after
        if name not in before or after[name] is not before[name]
    }
    unbound = set(before) - set(after)
    return analyze_cell(source), rebound, unbound


@settings(max_examples=120, deadline=None)
@given(cells)
def test_static_write_set_over_approximates_rebinding(source):
    effects, rebound, unbound = run_and_diff(source)
    assert effects.syntax_error is None, source
    predicted = set(effects.all_writes) | set(effects.all_deletes)
    # Internal helper names are part of the cell's own machinery and are
    # legitimately predicted too; no filtering needed — the invariant is
    # a plain superset.
    assert rebound <= predicted, (source, rebound - predicted)
    assert unbound <= predicted, (source, unbound - predicted)


@settings(max_examples=60, deadline=None)
@given(cells)
def test_definite_accesses_recorded_for_escape_free_cells(source):
    """Runtime record ⊇ definite static accesses — the exact invariant the
    cross-validator enforces (no false escalations on escape-free cells).

    Cells carrying escapes are exempt *by design*: e.g. a walrus target in
    a comprehension (or a ``global`` store in a nested function) compiles
    to STORE_GLOBAL, which bypasses the patched dict — the analyzer flags
    those as HIDDEN_GLOBAL_STORE escapes and the validator escalates them
    instead of trusting the record.
    """
    effects = analyze_cell(source)
    if effects.has_escapes:
        return
    kernel = NotebookKernel()
    kernel.run_cell("a, b, c, d = 0, 1, 2, 3")
    kernel.user_ns.begin_recording()
    result = kernel.run_cell(source, raise_on_error=False)
    record = kernel.user_ns.end_recording()
    if result.error is not None:
        return  # a failed cell may legitimately skip later accesses
    from repro.kernel.namespace import filter_user_names

    predicted = filter_user_names(set(effects.definite_accesses))
    assert predicted <= record.accessed, (source, predicted - record.accessed)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.one_of(assignments, deletes), min_size=1, max_size=4))
def test_straight_line_writes_are_definite(lines):
    """Module-level assignments/deletes land in the *definite* sets."""
    effects = analyze_cell("\n".join(lines))
    for line in lines:
        if line.startswith("del "):
            assert line[4:] in effects.deletes
        else:
            target = line.split(" = ")[0]
            assert target in effects.writes
