"""Tests for incremental checkout and fallback recomputation (§5.2–5.3)."""

from __future__ import annotations

import pytest

from repro.core.covariable import covar_key
from repro.core.session import KishuSession
from repro.errors import RestorationError
from repro.kernel.kernel import NotebookKernel


@pytest.fixture
def session():
    kernel = NotebookKernel()
    return KishuSession.init(kernel)


class TestIncrementalCheckout:
    def test_undo_inplace_mutation(self, session):
        session.run_cell("data = [1, 2, 3]")
        before = session.head_id
        session.run_cell("data.clear()")
        report = session.checkout(before)
        assert session.kernel.get("data") == [1, 2, 3]
        assert covar_key({"data"}) in report.loaded_keys

    def test_identical_covariables_not_loaded(self, session):
        session.run_cell("big = list(range(1000))")
        session.run_cell("small = 1")
        before = session.head_id
        session.run_cell("small = 2")
        report = session.checkout(before)
        assert covar_key({"big"}) in report.identical_keys
        assert covar_key({"big"}) not in report.loaded_keys
        assert session.kernel.get("small") == 1

    def test_untouched_objects_not_replaced(self, session):
        # Incremental checkout must reuse kernel objects, not reload them.
        session.run_cell("keep = [42]")
        keep_before = session.kernel.get("keep")
        before = session.head_id
        session.run_cell("other = 5")
        session.checkout(before)
        assert session.kernel.get("keep") is keep_before

    def test_checkout_deletes_later_variables(self, session):
        session.run_cell("x = 1")
        before = session.head_id
        session.run_cell("y = 2")
        report = session.checkout(before)
        assert session.kernel.get("y", "<absent>") == "<absent>"
        assert "y" in report.deleted_names

    def test_shared_references_restored_exactly(self, session):
        session.run_cell("xs = [1, 2]")
        session.run_cell("alias = {'ref': xs}")
        before = session.head_id
        session.run_cell("xs.append(3)")
        session.checkout(before)
        xs = session.kernel.get("xs")
        alias = session.kernel.get("alias")
        assert xs == [1, 2]
        assert alias["ref"] is xs

    def test_branch_switching(self, session):
        session.run_cell("base = 10")
        fork = session.head_id
        session.run_cell("result = base * 2")
        branch_a = session.head_id
        session.checkout(fork)
        session.run_cell("result = base * 3")
        branch_b = session.head_id
        session.checkout(branch_a)
        assert session.kernel.get("result") == 20
        session.checkout(branch_b)
        assert session.kernel.get("result") == 30

    def test_checkout_to_root_empties_state(self, session):
        from repro.core.graph import ROOT_ID

        session.run_cell("a = 1")
        session.run_cell("b = 2")
        session.checkout(ROOT_ID)
        assert session.kernel.user_variables() == {}

    def test_next_cell_after_checkout_starts_branch(self, session):
        session.run_cell("x = 1")
        first = session.head_id
        session.run_cell("x = 2")
        session.checkout(first)
        session.run_cell("x = 3")
        node = session.graph.head
        assert node.parent_id == first

    def test_report_timing_and_bytes(self, session):
        session.run_cell("payload = list(range(100))")
        before = session.head_id
        session.run_cell("payload = None")
        report = session.checkout(before)
        assert report.seconds > 0
        assert report.bytes_loaded > 0


class TestFallbackRecomputation:
    def test_unserializable_recomputed(self, session):
        session.run_cell("gen = (i for i in range(4))")
        target = session.head_id
        session.run_cell("del gen")
        report = session.checkout(target)
        assert list(session.kernel.get("gen")) == [0, 1, 2, 3]
        assert covar_key({"gen"}) in report.recomputed_keys

    def test_recomputation_uses_dependencies(self, session):
        # An unserializable object built *eagerly* from another variable:
        # the dependency is recorded and reloaded for the rerun.
        session.run_cell("import hashlib")
        session.run_cell("seed = [5]")
        session.run_cell("digest = hashlib.sha256(str(seed).encode())")
        expected = session.kernel.get("digest").hexdigest()
        target = session.head_id
        session.run_cell("del digest")
        report = session.checkout(target)
        assert session.kernel.get("digest").hexdigest() == expected
        assert covar_key({"digest"}) in report.recomputed_keys

    def test_lazy_generator_dependencies_resolved_by_static_replay(self, session):
        # A generator reads its free variables lazily, so the producing
        # cell never *accesses* them (Lemma 1) and the runtime dependency
        # record misses them. The static dataflow plan sees the read in
        # the genexp body, loads `seed` into the scratch namespace, and
        # the restored generator resolves its free variables there —
        # closing the paper's §5.3 lazy-read limitation (DESIGN.md §10).
        session.run_cell("seed = [5]")
        session.run_cell("gen = (i * seed[0] for i in range(3))")
        target = session.head_id
        session.run_cell("del gen")
        session.checkout(target)
        assert list(session.kernel.get("gen")) == [0, 5, 10]
        assert session.plan_stats.plans_executed >= 1
        assert session.plan_stats.validation_mismatches == 0

    def test_lazy_generator_limitation_remains_without_static_replay(self, session):
        # With the static replay engine disabled, the legacy recursion
        # reruns the producing cell on its *runtime-recorded* deps only;
        # the lazily-read `seed` is absent from the scratch namespace and
        # iteration fails — the original §5.3 limitation.
        session.loader.restorer.replay_engine = None
        session.run_cell("seed = [5]")
        session.run_cell("gen = (i * seed[0] for i in range(3))")
        target = session.head_id
        session.run_cell("del gen")
        session.checkout(target)
        with pytest.raises(Exception):
            list(session.kernel.get("gen"))

    def test_recursive_fallback_chain(self, session):
        # The paper's Fig 11: plot@t3 needs gmm@t2, which itself needs
        # gmm@t1. Generators are unserializable, so the whole chain must
        # recompute recursively.
        session.run_cell("gmm = (i for i in range(10))")
        session.run_cell("gmm = (i * 2 for i in gmm)")
        session.run_cell("plot = (i + 1 for i in gmm)")
        target = session.head_id
        session.run_cell("del plot\ndel gmm")
        report = session.checkout(target)
        assert list(session.kernel.get("plot")) == [1, 3, 5, 7, 9, 11, 13, 15, 17, 19]
        assert len(report.recomputed_keys) >= 2

    def test_corrupt_payload_falls_back(self, session):
        from repro.core.storage import StoredPayload

        session.run_cell("value = [1, 2, 3]")
        node_id = session.head_id
        key = covar_key({"value"})
        # Corrupt the stored payload in place (simulated bit rot).
        session.store.write_payload(
            StoredPayload(node_id=node_id, key=key, data=b"garbage", serializer="primary")
        )
        session.run_cell("value = None")
        report = session.checkout(node_id)
        assert session.kernel.get("value") == [1, 2, 3]
        assert key in report.recomputed_keys

    def test_blocklisted_class_recomputed(self):
        from repro.core.serialization import Blocklist

        kernel = NotebookKernel()
        session = KishuSession.init(kernel, blocklist=Blocklist({"list"}))
        session.run_cell("items = [1, 2]")
        target = session.head_id
        session.run_cell("items = None")
        report = session.checkout(target)
        assert kernel.get("items") == [1, 2]
        assert covar_key({"items"}) in report.recomputed_keys

    def test_missing_variable_after_rerun_raises(self, session):
        # Build a node whose recorded code cannot reproduce the variable:
        # conditional creation that depended on since-deleted state.
        session.run_cell("flag = True")
        session.run_cell("gen = (i for i in range(2)) if flag else None")
        target = session.head_id
        # Tamper: rewrite the node's code so the rerun produces nothing.
        session.graph.get(target).__dict__["cell_source"] = "unrelated = 1"
        session.run_cell("del gen")
        with pytest.raises(RestorationError):
            session.checkout(target)

    def test_failed_checkout_does_not_half_update(self, session):
        session.run_cell("stable = [7]")
        session.run_cell("gen = (i for i in range(2))")
        target = session.head_id
        session.graph.get(target).__dict__["cell_source"] = ""
        session.run_cell("del gen\nstable.append(8)")
        with pytest.raises(RestorationError):
            session.checkout(target)
        # The live namespace must be untouched by the failed checkout.
        assert session.kernel.get("stable") == [7, 8]


class TestCheckoutValidation:
    """Materialized payloads are validated before the namespace is touched."""

    def test_incomplete_payload_aborts_before_mutation(self, session):
        session.run_cell("xs = [1, 2]")
        target = session.head_id
        session.run_cell("xs.append(3)")
        session.run_cell("later = 'created after target'")

        def truncated_materialize(key, node_id, **kwargs):
            return {}  # deserialized to a dict missing every member

        session.loader.restorer.materialize = truncated_materialize
        with pytest.raises(RestorationError, match="before touching the namespace"):
            session.checkout(target)
        # Nothing was applied: no deletion, no plant, head unmoved.
        assert session.kernel.get("xs") == [1, 2, 3]
        assert session.kernel.get("later") == "created after target"
        assert session.head_id != target

    def test_partially_missing_member_reported_by_name(self, session):
        session.run_cell("a = [1]")
        session.run_cell("b = a")  # one co-variable {a, b}
        target = session.head_id
        session.run_cell("a.append(2)")

        real_materialize = session.loader.restorer.materialize

        def dropping_materialize(key, node_id, **kwargs):
            values = real_materialize(key, node_id, **kwargs)
            values.pop("b", None)
            return values

        session.loader.restorer.materialize = dropping_materialize
        with pytest.raises(RestorationError, match="missing \\['b'\\]"):
            session.checkout(target)
        assert session.kernel.get("a") == [1, 2]
        assert session.kernel.get("b") == [1, 2]


class TestResyncRegrouping:
    """_resync_pool re-groups rebuilt graphs instead of trusting plan keys.

    Materialized values can alias across plan keys (a shared dependency
    memoized by the restorer, a nondeterministic recompute); Definition 1
    requires the pool partition to reflect the *restored* object graph.
    """

    def test_cross_key_aliasing_merges_covariables(self, session):
        session.run_cell("xs = [1, 2]")
        session.run_cell("ys = [3, 4]")
        target = session.head_id
        session.run_cell("xs.append(9)")
        session.run_cell("ys.append(9)")

        shared = [1, 2]

        def aliasing_materialize(key, node_id, **kwargs):
            return {name: shared for name in key}

        session.loader.restorer.materialize = aliasing_materialize
        session.checkout(target)
        # Both names now point at one object; the pool must have merged
        # them into a single co-variable.
        assert session.kernel.get("xs") is session.kernel.get("ys")
        merged = session.pool.covariable_of("xs")
        assert merged is not None
        assert set(merged.names) == {"xs", "ys"}
        assert session.pool.covariable_of("ys") is merged

    def test_detection_stays_sound_after_aliased_restore(self, session):
        # The merged partition must keep working: a later mutation through
        # one name is a modification of the merged co-variable.
        session.run_cell("xs = [1, 2]")
        session.run_cell("ys = [3, 4]")
        target = session.head_id
        session.run_cell("xs.append(9)")
        session.run_cell("ys.append(9)")

        shared = [1, 2]

        def aliasing_materialize(key, node_id, **kwargs):
            return {name: shared for name in key}

        session.loader.restorer.materialize = aliasing_materialize
        session.checkout(target)
        session.run_cell("xs.append(5)")
        assert session.kernel.get("ys") == [1, 2, 5]
        merged_key = session.pool.key_of("ys")
        assert merged_key == frozenset({"xs", "ys"})
