"""The concurrent soak driver: fleet aggregation and its report shape."""

import os

import pytest

from repro.fuzz.soak import SoakConfig, percentile, run_soak


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0

    def test_single_sample(self):
        assert percentile([7.5], 99) == 7.5

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0


class TestSoakConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sessions": 0},
            {"cells": 0},
            {"checkout_every": 0},
            {"store": "postgres"},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SoakConfig(**kwargs)

    def test_to_dict_is_json_safe(self):
        import json

        payload = SoakConfig(sessions=2).to_dict()
        json.dumps(payload)
        assert payload["sessions"] == 2
        assert isinstance(payload["grammar"], dict)


class TestRunSoak:
    def test_memory_fleet_report_shape(self):
        result = run_soak(
            SoakConfig(sessions=3, cells=6, store="memory", checkout_every=2)
        )
        assert result["sessions"] == 3
        assert result["commits"] > 0
        assert result["worker_errors"] == []
        assert result["oracle"]["checks"] > 0
        assert result["oracle"]["failures"] == 0
        for section in ("commit_latency", "checkout_latency"):
            stats = result[section]
            assert set(stats) == {"count", "p50_ms", "p95_ms", "p99_ms", "max_ms"}
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
        growth = result["store_growth"]
        assert len(growth["per_session_payload_bytes"]) == 3
        assert growth["total_payload_bytes"] == sum(
            growth["per_session_payload_bytes"]
        )

    def test_sqlite_fleet_writes_per_session_stores(self, tmp_path):
        result = run_soak(
            SoakConfig(
                sessions=2,
                cells=5,
                store="sqlite",
                store_dir=str(tmp_path),
                checkout_every=3,
            )
        )
        # Ignore the advisory ``.lock`` sidecars the store leaves behind
        # (unlinking them on close would race concurrent opens).
        files = sorted(
            name for name in os.listdir(tmp_path) if not name.endswith(".lock")
        )
        assert files == ["session-000.db", "session-001.db"]
        assert all(b > 0 for b in result["store_growth"]["per_session_file_bytes"])
        assert result["worker_errors"] == []
        assert result["oracle"]["failures"] == 0

    def test_fault_plans_actually_fire(self):
        # Across a few sessions the seed-deterministic plans must inject
        # at least one fault — otherwise the soak isn't exercising the
        # degradation paths it claims to.
        result = run_soak(
            SoakConfig(sessions=4, cells=8, store="memory", seed=1)
        )
        assert result["faults"]["fired"] > 0
        assert result["oracle"]["failures"] == 0
        assert result["worker_errors"] == []

    def test_faultless_mode(self):
        result = run_soak(
            SoakConfig(sessions=2, cells=4, store="memory", faults=False)
        )
        assert result["faults"]["fired"] == 0
        assert result["faults"]["storage_errors"] == 0


class TestServiceMode:
    def test_shared_store_fleet_report(self, tmp_path):
        result = run_soak(
            SoakConfig(
                sessions=3,
                cells=6,
                store="sqlite",
                store_dir=str(tmp_path),
                checkout_every=2,
                service=True,
            )
        )
        # One shared database, not per-session files (the ``.lock``
        # advisory sidecar rides along with any on-disk database).
        assert sorted(
            name for name in os.listdir(tmp_path) if not name.endswith(".lock")
        ) == ["shared.db"]
        service = result["service"]
        queue = service["queue"]
        assert queue["enqueued"] >= queue["written"] > 0
        assert not queue["crashed"]
        registry = {r["session_id"]: r for r in service["registry"]}
        for i in range(3):
            record = registry[f"s{i + 1:03d}"]
            assert record["status"] == "detached"
            assert record["checkpoints"] > 0
        assert service["shared_file_bytes"] > 0
        assert result["oracle"]["failures"] == 0
        assert result["worker_errors"] == []

    def test_service_memory_fleet(self):
        result = run_soak(
            SoakConfig(sessions=2, cells=5, store="memory", service=True)
        )
        queue = result["service"]["queue"]
        # Clean shutdown drains the queue: every accepted commit either
        # landed or was recorded as a write failure, none lost.
        assert queue["written"] + queue["write_failures"] == queue["enqueued"]
        assert result["oracle"]["failures"] == 0
        assert result["worker_errors"] == []

    def test_service_faults_reported_at_fleet_level(self):
        result = run_soak(
            SoakConfig(sessions=4, cells=8, store="memory", seed=1, service=True)
        )
        # Per-worker fault counters stay zero (the wrapper is shared);
        # the service section owns the fleet-level count.
        assert result["faults"]["fired"] == 0
        assert result["service"]["faults_fired"] >= 0
        assert result["oracle"]["failures"] == 0
