"""Multi-session checkpoint service: commit queue, manager, acceptance.

Covers the write-ahead commit queue's ordering/durability contract
(enqueue is fast, ``flush``/``drain`` are real barriers, failed lanes
poison and report exactly once, writer crashes leave the process
deadlock-free), the :class:`~repro.service.SessionManager` registry
semantics, the two acceptance scenarios from DESIGN.md §13 — the
*rename catastrophe* and the *blind reconnect* — and a writer-side
kill-point enumeration proving every crash lands on a valid resumable
per-session prefix.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

import pytest

from test_oracle import canonical_state

from repro.core.covariable import covar_key
from repro.core.graph import ROOT_ID
from repro.core.session import KishuSession
from repro.core.storage import (
    InMemoryCheckpointStore,
    SQLiteCheckpointStore,
    StoredNode,
    StoredPayload,
)
from repro.errors import PermanentStorageError, StorageError
from repro.faults import FaultInjectingStore, FaultPlan, FaultRule
from repro.faults.injector import SlowStore
from repro.kernel.kernel import NotebookKernel
from repro.obs import EventType, LATENCY_BUCKETS, Observer
from repro.service import CommitQueue, QueuedStore, SessionManager


def _node(node_id: str, parent: str = ROOT_ID) -> StoredNode:
    return StoredNode(
        node_id=node_id,
        parent_id=parent,
        timestamp=int(node_id[1:]),
        execution_count=int(node_id[1:]),
        cell_source=f"x = {node_id!r}",
        deleted_keys=(),
        dependencies=(),
    )


def _payload(node_id: str, name: str = "x", data: bytes = b"blob") -> StoredPayload:
    return StoredPayload(
        node_id=node_id, key=covar_key({name}), data=data, serializer="primary"
    )


def _commit(store, node: StoredNode, payloads=None) -> None:
    store.begin_checkpoint(node.node_id)
    for payload in payloads if payloads is not None else [_payload(node.node_id)]:
        store.write_payload(payload)
    store.write_node(node)
    store.commit_checkpoint(node.node_id)


@pytest.fixture(params=["memory", "sqlite"])
def shared_store(request):
    if request.param == "memory":
        store = InMemoryCheckpointStore()
    else:
        store = SQLiteCheckpointStore(":memory:")
    yield store
    store.close()


# ---------------------------------------------------------------------------
# Commit queue semantics
# ---------------------------------------------------------------------------


class TestCommitQueue:
    def test_enqueue_fast_flush_applies(self, shared_store):
        slow = SlowStore(shared_store, write_delay=0.05)
        queue = CommitQueue(slow)
        try:
            handle = QueuedStore(slow.for_session("a"), queue)
            started = time.perf_counter()
            _commit(handle, _node("t1"))
            enqueue_seconds = time.perf_counter() - started
            # Three delayed ops (payload, node, commit) would cost 150ms
            # synchronously; the enqueue must not pay them.
            assert enqueue_seconds < 0.05
            queue.flush()
            assert [n.node_id for n in shared_store.for_session("a").read_nodes()] == ["t1"]
        finally:
            queue.stop()

    def test_flush_covers_in_flight_batch(self, shared_store):
        """Regression: records the writer had already popped into its
        current batch were once invisible to the flush barrier, so flush
        could return with commits still unwritten."""
        slow = SlowStore(shared_store, write_delay=0.02)
        queue = CommitQueue(slow, max_batch=8)
        try:
            handle = QueuedStore(slow.for_session("a"), queue)
            parent = ROOT_ID
            for i in range(1, 6):
                _commit(handle, _node(f"t{i}", parent))
                parent = f"t{i}"
            queue.flush()
            survived = [n.node_id for n in shared_store.for_session("a").read_nodes()]
            assert survived == [f"t{i}" for i in range(1, 6)]
        finally:
            queue.stop()

    def test_reads_are_read_your_writes(self, shared_store):
        slow = SlowStore(shared_store, write_delay=0.02)
        queue = CommitQueue(slow)
        try:
            handle = QueuedStore(slow.for_session("a"), queue)
            _commit(handle, _node("t1"))
            # No explicit flush: the read itself is the barrier.
            assert [n.node_id for n in handle.read_nodes()] == ["t1"]
            assert handle.read_payload("t1", covar_key({"x"})).data == b"blob"
        finally:
            queue.stop()

    def test_fifo_order_within_session(self, shared_store):
        queue = CommitQueue(shared_store)
        try:
            handle = QueuedStore(shared_store.for_session("a"), queue)
            parent = ROOT_ID
            for i in range(1, 8):
                _commit(handle, _node(f"t{i}", parent))
                parent = f"t{i}"
            queue.drain()
            survived = [n.node_id for n in shared_store.for_session("a").read_nodes()]
            assert survived == [f"t{i}" for i in range(1, 8)]
        finally:
            queue.stop()

    def test_backpressure_bounds_queue_depth(self, shared_store):
        slow = SlowStore(shared_store, write_delay=0.01)
        queue = CommitQueue(slow, max_depth=2, max_batch=1)
        try:
            handle = QueuedStore(slow.for_session("a"), queue)
            parent = ROOT_ID
            for i in range(1, 9):
                _commit(handle, _node(f"t{i}", parent))
                parent = f"t{i}"
            queue.drain()
            assert queue.stats()["max_depth"] <= 2
            assert queue.stats()["written"] == 8
        finally:
            queue.stop()

    def test_permanent_failure_poisons_lane_and_reports_once(self):
        inner = InMemoryCheckpointStore()
        # First write_node the writer attempts fails permanently.
        faulty = FaultInjectingStore(
            inner, FaultPlan(rules=(FaultRule("write_node", 0, "permanent"),))
        )
        queue = CommitQueue(faulty)
        try:
            handle = QueuedStore(faulty.for_session("a"), queue)
            _commit(handle, _node("t1"))
            queue.flush()
            # The lane is poisoned: new commits are refused at capture time
            # (the session's delta-carryover machinery takes over).
            with pytest.raises(PermanentStorageError):
                handle.begin_checkpoint("t2")
            with pytest.raises(StorageError, match="t1"):
                queue.drain()
            queue.drain()  # failures are consumed: reported exactly once
            assert queue.stats()["write_failures"] == 1
            assert queue.stats()["poisoned_sessions"] == ["a"]
            # Nothing torn landed in the store.
            assert inner.for_session("a").read_nodes() == []
        finally:
            queue.stop()

    def test_poisoned_lane_fails_follow_up_records(self):
        """FIFO integrity: once a lane lost a commit, queued successors
        (whose parent never landed) are recorded as failures too."""
        inner = InMemoryCheckpointStore()
        faulty = FaultInjectingStore(
            inner, FaultPlan(rules=(FaultRule("write_node", 0, "permanent"),))
        )
        queue = CommitQueue(faulty, max_batch=4)
        try:
            handle = QueuedStore(faulty.for_session("a"), queue)
            _commit(handle, _node("t1"))
            _commit(handle, _node("t2", "t1"))
            with pytest.raises(StorageError, match="2 queued commit"):
                queue.drain()
            assert inner.for_session("a").read_nodes() == []
        finally:
            queue.stop()

    def test_other_sessions_unaffected_by_poisoned_lane(self):
        inner = InMemoryCheckpointStore()
        faulty = FaultInjectingStore(
            inner, FaultPlan(rules=(FaultRule("write_node", 0, "permanent"),))
        )
        queue = CommitQueue(faulty)
        try:
            poisoned = QueuedStore(faulty.for_session("a"), queue)
            healthy = QueuedStore(faulty.for_session("b"), queue)
            _commit(poisoned, _node("t1"))
            queue.flush()
            _commit(healthy, _node("t1"))
            healthy.drain()  # per-session drain: b's lane is clean
            assert [n.node_id for n in inner.for_session("b").read_nodes()] == ["t1"]
            with pytest.raises(StorageError):
                poisoned.drain()
        finally:
            queue.stop()

    def test_writer_tombstone_degradation(self):
        observer = Observer()
        inner = InMemoryCheckpointStore()
        faulty = FaultInjectingStore(
            inner, FaultPlan(rules=(FaultRule("write_payload", 0, "permanent"),))
        )
        queue = CommitQueue(faulty, observer=observer)
        try:
            handle = QueuedStore(faulty.for_session("a"), queue)
            _commit(handle, _node("t1"), [_payload("t1", data=b"precious")])
            queue.drain()  # no failure: the payload degraded, the commit landed
            view = inner.for_session("a")
            assert [n.node_id for n in view.read_nodes()] == ["t1"]
            assert view.read_payload("t1", covar_key({"x"})).data is None
            assert observer.events.of_type(EventType.TOMBSTONE_DEGRADED)
        finally:
            queue.stop()

    def test_writer_crash_reported_and_lock_released(self, shared_store):
        observer = Observer()
        faulty = FaultInjectingStore(
            shared_store, FaultPlan.crash_at_checkpoint_op(2)
        )
        queue = CommitQueue(faulty, observer=observer)
        try:
            handle = QueuedStore(faulty.for_session("a"), queue)
            _commit(handle, _node("t1"))
            queue.flush()  # returns (does not hang) on a crashed writer
            assert queue.crashed
            with pytest.raises(StorageError, match="crashed"):
                queue.drain()
            with pytest.raises(StorageError):
                handle.begin_checkpoint("t2")  # queue refuses new work
            assert observer.events.of_type(EventType.QUEUE_WRITER_CRASHED)
            # Lock hygiene: the dying writer released the shared store's
            # checkpoint lock, so a direct (non-queued) handle can still
            # commit — no process-wide deadlock.
            direct = shared_store.for_session("b")
            _commit(direct, _node("t1"))
            assert [n.node_id for n in direct.read_nodes()] == ["t1"]
        finally:
            queue.stop()

    def test_queue_metrics_published(self, shared_store):
        observer = Observer()
        queue = CommitQueue(shared_store, observer=observer)
        try:
            handle = QueuedStore(shared_store.for_session("a"), queue)
            _commit(handle, _node("t1"))
            queue.drain()
        finally:
            queue.stop()
        assert observer.events.of_type(EventType.COMMIT_ENQUEUED)
        assert observer.events.of_type(EventType.QUEUE_BATCH_WRITTEN)
        assert observer.metrics.histogram("service.batch_size").count == 1
        latency = observer.metrics.histogram("service.write_latency_seconds")
        assert latency.count == 1
        assert latency.bounds == LATENCY_BUCKETS
        assert observer.metrics.gauge("service.queue_depth").value == 0

    def test_concurrent_producers_all_commits_land(self, shared_store):
        queue = CommitQueue(shared_store, max_batch=4)
        errors: List[str] = []
        try:
            def producer(sid: str) -> None:
                try:
                    handle = QueuedStore(shared_store.for_session(sid), queue)
                    parent = ROOT_ID
                    for i in range(1, 11):
                        _commit(handle, _node(f"t{i}", parent))
                        parent = f"t{i}"
                    handle.drain()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(f"{sid}: {exc}")

            threads = [
                threading.Thread(target=producer, args=(f"s{i}",)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            queue.drain()
            for i in range(4):
                survived = [
                    n.node_id
                    for n in shared_store.for_session(f"s{i}").read_nodes()
                ]
                assert survived == [f"t{j}" for j in range(1, 11)]
        finally:
            queue.stop()


# ---------------------------------------------------------------------------
# Session manager registry semantics
# ---------------------------------------------------------------------------


class TestSessionManager:
    def test_create_list_detach(self):
        with SessionManager() as manager:
            session = manager.create("alice", notebook_path="alice.ipynb")
            session.run_cell("x = 1")
            records = {r.session_id: r for r in manager.list()}
            assert records["alice"].status == "active"
            assert records["alice"].notebook_path == "alice.ipynb"
            manager.detach("alice")
            records = {r.session_id: r for r in manager.list()}
            assert records["alice"].status == "detached"
            assert manager.get("alice") is None

    def test_auto_session_ids(self):
        with SessionManager() as manager:
            first = manager.create()
            second = manager.create()
            assert first.session_id != second.session_id
            assert {first.session_id, second.session_id} <= set(
                r.session_id for r in manager.list()
            )

    def test_create_duplicate_refused(self):
        with SessionManager() as manager:
            manager.create("alice")
            with pytest.raises(StorageError, match="already attached"):
                manager.create("alice")
            manager.detach("alice")
            with pytest.raises(StorageError, match="resume it instead"):
                manager.create("alice")

    def test_resume_unknown_refused(self):
        with SessionManager() as manager:
            with pytest.raises(StorageError, match="unknown session"):
                manager.resume("ghost")

    def test_attach_returns_live_session(self):
        with SessionManager() as manager:
            session = manager.create("alice")
            assert manager.attach("alice") is session

    def test_list_filters_by_status(self):
        with SessionManager() as manager:
            manager.create("alice")
            manager.create("bob")
            manager.detach("bob")
            assert [r.session_id for r in manager.list(status="active")] == ["alice"]
            detached = [r.session_id for r in manager.list(status="detached")]
            assert "bob" in detached

    def test_sessions_are_isolated(self):
        with SessionManager() as manager:
            alice = manager.create("alice")
            bob = manager.create("bob")
            alice.run_cell("secret = 41")
            bob.run_cell("other = 1")
            manager.drain()
            assert [n.node_id for n in alice.store.read_nodes()] == ["t1"]
            assert [n.node_id for n in bob.store.read_nodes()] == ["t1"]
            assert sorted(alice.kernel.user_variables()) == ["secret"]
            assert sorted(bob.kernel.user_variables()) == ["other"]

    def test_closed_manager_refuses_work(self):
        manager = SessionManager()
        manager.close()
        with pytest.raises(StorageError, match="closed"):
            manager.create("alice")


# ---------------------------------------------------------------------------
# Acceptance: the rename catastrophe and the blind reconnect
# ---------------------------------------------------------------------------


class TestRenameCatastrophe:
    def test_live_session_survives_notebook_rename(self, tmp_path):
        """The demo paper's rename catastrophe: renaming the notebook
        mid-session must not orphan its checkpoint history."""
        path = str(tmp_path / "service.db")
        with SessionManager(SQLiteCheckpointStore(path)) as manager:
            session = manager.create("exp", notebook_path="untitled.ipynb")
            session.run_cell("model = 'trained'")
            session.run_cell("score = 0.97")

            manager.rename("exp", "final-results.ipynb")

            # Still live, still committing, history intact across the rename.
            session.run_cell("published = True")
            assert [n.node_id for n in session.log()] == ["t1", "t2", "t3"]
            session.checkout("t1")
            assert session.kernel.user_variables()["model"] == "trained"
            record = {r.session_id: r for r in manager.list()}["exp"]
            assert record.notebook_path == "final-results.ipynb"
            assert record.checkpoints >= 1
            renamed = manager.observer.events.of_type(EventType.SESSION_RENAMED)
            assert renamed and renamed[-1].fields["notebook_path"] == "final-results.ipynb"

        # The new path is durable, and history resumes under it.
        with SessionManager(SQLiteCheckpointStore(path)) as manager:
            record = {r.session_id: r for r in manager.list()}["exp"]
            assert record.notebook_path == "final-results.ipynb"
            resumed = manager.resume("exp")
            assert [n.node_id for n in resumed.log()] == ["t1", "t2", "t3"]


class TestBlindReconnect:
    def test_resume_full_state_in_new_process(self, tmp_path):
        """Friday's session, Monday's process: resume by session id alone
        restores the graph, the head state, and time travel."""
        path = str(tmp_path / "service.db")
        with SessionManager(SQLiteCheckpointStore(path)) as manager:
            friday = manager.create("thesis", notebook_path="thesis.ipynb")
            friday.run_cell("data = list(range(10))")
            friday.run_cell("total = sum(data)")
            friday.run_cell("mean = total / len(data)")
            head = friday.head_id
            manager.detach("thesis")

        # A brand-new manager over a reopened store: nothing in memory.
        with SessionManager(SQLiteCheckpointStore(path)) as manager:
            monday = manager.resume("thesis")
            assert monday.head_id == head
            assert [n.node_id for n in monday.log()] == ["t1", "t2", "t3"]
            assert monday.kernel.user_variables()["mean"] == 4.5
            monday.checkout("t1")
            assert sorted(monday.kernel.user_variables()) == ["data"]
            monday.checkout("t3")
            monday.run_cell("variance = sum((d - mean) ** 2 for d in data)")
            assert [n.node_id for n in monday.log()] == ["t1", "t2", "t3", "t4"]
            attached = manager.observer.events.of_type(EventType.SESSION_ATTACHED)
            assert attached and attached[-1].fields["checkpoints"] == 3

    def test_concurrent_fleet_resumes_independently(self, tmp_path):
        path = str(tmp_path / "fleet.db")
        cells = {
            "a": ["x = 1", "y = x + 1"],
            "b": ["s = 'hi'", "t = s * 2"],
            "c": ["n = [1, 2]", "m = n + [3]"],
        }
        with SessionManager(SQLiteCheckpointStore(path)) as manager:
            for sid, sources in cells.items():
                session = manager.create(sid, notebook_path=f"{sid}.ipynb")
                for source in sources:
                    session.run_cell(source)
        with SessionManager(SQLiteCheckpointStore(path)) as manager:
            for sid in cells:
                session = manager.resume(sid)
                assert [n.node_id for n in session.log()] == ["t1", "t2"]
            assert manager.attached_ids() == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# Writer kill-points: every crash recovers to a valid per-session prefix
# ---------------------------------------------------------------------------


_FLEET_CELLS: Dict[str, List[str]] = {
    "a": ["a1 = 10", "a2 = a1 + 5", "a3 = [a1, a2]"],
    "b": ["b1 = 'kishu'", "b2 = b1.upper()", "b3 = len(b2)"],
}


def _run_service_workload(
    store,
) -> Tuple[SessionManager, Dict[Tuple[str, str], bytes], Dict[str, int]]:
    """Drive the fixed two-session workload through a manager over
    ``store``; returns (manager, oracle keyed by (session, node),
    commits accepted per session). Storage errors after a simulated
    writer crash are tolerated — that is the scenario under test."""
    manager = SessionManager(store)
    sessions = {
        sid: manager.create(sid, notebook_path=f"{sid}.ipynb")
        for sid in _FLEET_CELLS
    }
    oracle: Dict[Tuple[str, str], bytes] = {}
    accepted = {sid: 0 for sid in _FLEET_CELLS}
    for step in range(max(len(c) for c in _FLEET_CELLS.values())):
        for sid, session in sessions.items():
            if step >= len(_FLEET_CELLS[sid]):
                continue
            before = session.head_id
            try:
                session.kernel.run_cell(_FLEET_CELLS[sid][step])
            except StorageError:
                continue
            if session.head_id != before:
                accepted[sid] += 1
                oracle[(sid, session.head_id)] = canonical_state(session.kernel)
    return manager, oracle, accepted


class TestWriterKillPoints:
    def test_every_writer_kill_point_leaves_resumable_prefix(self, tmp_path):
        # Fault-free probe run sizes the kill-point universe and records
        # the full oracle (enqueue order is deterministic, so the writer's
        # checkpoint-op sequence is too).
        probe_path = str(tmp_path / "probe.db")
        probe = FaultInjectingStore(SQLiteCheckpointStore(probe_path))
        manager, oracle, _ = _run_service_workload(probe)
        manager.drain()
        total_ops = probe.checkpoint_op_count()
        manager.close()
        assert total_ops >= 4 * sum(len(c) for c in _FLEET_CELLS.values())

        for kill_point in range(total_ops):
            path = str(tmp_path / f"kp{kill_point}.db")
            store = FaultInjectingStore(
                SQLiteCheckpointStore(path),
                FaultPlan.crash_at_checkpoint_op(kill_point),
            )
            manager, _, _ = _run_service_workload(store)
            manager.close()  # flush returns on a crashed writer; close store
            assert store.crashed, f"kill-point {kill_point} never fired"

            # Reboot: reopen the durable store; recovery sweeps any torn
            # record the dying writer left behind.
            reopened = SQLiteCheckpointStore(path)
            try:
                for sid in _FLEET_CELLS:
                    view = reopened.for_session(sid)
                    kernel = NotebookKernel()
                    session = KishuSession.resume(kernel, view)
                    assert session.graph.orphaned_node_ids == []
                    surviving = sorted(
                        (
                            n.node_id
                            for n in session.graph.all_nodes()
                            if n.node_id != ROOT_ID
                        ),
                        key=lambda nid: int(nid[1:]),
                    )
                    # A valid prefix: consecutive ids from t1, each fully
                    # committed during the run...
                    assert surviving == [
                        f"t{i}" for i in range(1, len(surviving) + 1)
                    ], f"kill-point {kill_point}, session {sid}"
                    # ...and each reproducing the oracle state exactly.
                    for node_id in surviving:
                        session.checkout(node_id)
                        assert canonical_state(kernel) == oracle[(sid, node_id)], (
                            f"kill-point {kill_point}: state mismatch at "
                            f"{sid}/{node_id}"
                        )
            finally:
                reopened.close()
