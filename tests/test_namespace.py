"""Tests for the patched namespace (access tracking, §4.3)."""

from __future__ import annotations

import pytest

from repro.kernel.namespace import (
    AccessRecord,
    PatchedNamespace,
    filter_user_names,
    is_user_variable,
)


class TestRecordingWindows:
    def test_get_set_delete_recorded(self):
        ns = PatchedNamespace({"x": 1, "y": 2})
        ns.begin_recording()
        exec("z = x\ndel y", ns)
        record = ns.end_recording()
        assert "x" in record.gets
        assert "z" in record.sets
        assert "y" in record.deletes
        assert record.accessed >= {"x", "y", "z"}

    def test_access_inside_function_bodies_is_recorded(self):
        ns = PatchedNamespace({"data": [1, 2]})
        exec("def f():\n    return data", ns)
        ns.begin_recording()
        exec("out = f()", ns)
        record = ns.end_recording()
        assert "data" in record.gets  # LOAD_GLOBAL goes through __getitem__

    def test_no_recording_outside_window(self):
        ns = PatchedNamespace({"x": 1})
        exec("y = x", ns)  # no window open: must not raise, not tracked
        ns.begin_recording()
        record = ns.end_recording()
        assert record.accessed == set()

    def test_double_begin_rejected(self):
        ns = PatchedNamespace()
        ns.begin_recording()
        with pytest.raises(RuntimeError):
            ns.begin_recording()

    def test_end_without_begin_rejected(self):
        ns = PatchedNamespace()
        with pytest.raises(RuntimeError):
            ns.end_recording()

    def test_dunder_names_not_recorded(self):
        ns = PatchedNamespace()
        ns.begin_recording()
        exec("x = 1", ns)  # machinery touches __builtins__ etc.
        record = ns.end_recording()
        assert all(not n.startswith("__") for n in record.accessed)

    def test_merge_accumulates(self):
        first = AccessRecord()
        first.gets.add("a")
        second = AccessRecord()
        second.sets.add("b")
        second.deletes.add("c")
        first.merge(second)
        assert first.accessed == {"a", "b", "c"}


class TestUntrackedAccess:
    def test_peek_does_not_record(self):
        ns = PatchedNamespace({"x": 5})
        ns.begin_recording()
        assert ns.peek("x") == 5
        assert ns.peek("missing", "default") == "default"
        record = ns.end_recording()
        assert record.accessed == set()

    def test_plant_and_uproot_do_not_record(self):
        ns = PatchedNamespace()
        ns.begin_recording()
        ns.plant("a", 1)
        ns.uproot("a")
        ns.uproot("never-existed")  # no error
        record = ns.end_recording()
        assert record.accessed == set()

    def test_user_names_excludes_infrastructure(self):
        ns = PatchedNamespace({"x": 1})
        ns.plant("__builtins__", {})
        ns.plant("__name__", "__main__")
        assert ns.user_names() == {"x"}

    def test_user_items_snapshot(self):
        ns = PatchedNamespace({"a": 1, "b": 2})
        items = ns.user_items()
        assert items == {"a": 1, "b": 2}

    def test_replace_user_state(self):
        ns = PatchedNamespace({"old": 1})
        ns.plant("__name__", "__main__")
        ns.replace_user_state({"new": 2})
        assert ns.user_names() == {"new"}
        assert ns.peek("__name__") == "__main__"


class TestNameFilters:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("x", True),
            ("_private", True),
            ("__dunder__", False),
            ("__builtins__", False),
            ("__name__", False),
            ("df_2", True),
        ],
    )
    def test_is_user_variable(self, name, expected):
        assert is_user_variable(name) is expected

    def test_filter_user_names(self):
        names = {"x", "__doc__", "_tmp", "__builtins__"}
        assert filter_user_names(names) == {"x", "_tmp"}
