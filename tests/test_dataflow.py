"""Tests for the inter-cell dataflow graph and replay planner (DESIGN.md §10)."""

from __future__ import annotations

import pytest

from repro.analysis.dataflow import (
    EdgeKind,
    NotebookDataflowGraph,
    ReplayPlanner,
    StoredVersion,
    ast_cost,
    is_builtin_name,
    make_cell_node,
    split_script_cells,
)


def graph_of(*sources: str) -> NotebookDataflowGraph:
    return NotebookDataflowGraph.from_sources(sources)


class TestCellSplitting:
    def test_percent_markers_win(self):
        source = "a = 1\n# %% second\nb = a + 1\n# %%\nc = b\n"
        cells = split_script_cells(source)
        assert len(cells) == 3
        assert "a = 1" in cells[0]
        assert "b = a + 1" in cells[1]
        assert "c = b" in cells[2]

    def test_statement_fallback(self):
        cells = split_script_cells("x = 1\ny = x + 1\n")
        assert cells == ["x = 1", "y = x + 1"]

    def test_decorated_function_stays_one_cell(self):
        source = "import functools\n@functools.cache\ndef f(n):\n    return n\n"
        cells = split_script_cells(source)
        assert len(cells) == 2
        assert cells[1].startswith("@functools.cache")


class TestCellNode:
    def test_external_reads_exclude_cell_locals(self):
        cell = make_cell_node(0, "x = 1\ny = x + z")
        assert "z" in cell.external_reads
        assert "x" not in cell.external_reads

    def test_lazy_function_body_reads_are_not_external(self):
        cell = make_cell_node(0, "def f():\n    return seed + 1")
        assert "seed" not in cell.external_reads

    def test_comprehension_reads_are_external(self):
        # A genexp body runs lazily but the *free variables* it closes
        # over come from the defining frame; the collector must see them.
        cell = make_cell_node(0, "gen = (i * seed for i in range(3))")
        assert "seed" in cell.external_reads
        assert "i" not in cell.external_reads

    def test_mutation_targets(self):
        cell = make_cell_node(0, "xs.append(1)\nd['k'] = 2\narr[0] += 1")
        assert {"xs", "d", "arr"} <= set(cell.mutators)

    def test_pure_methods_are_not_mutators(self):
        cell = make_cell_node(0, "n = xs.count(3)")
        assert "xs" not in cell.mutators

    def test_syntax_error_cell_not_executed(self):
        cell = make_cell_node(0, "def broken(:")
        assert not cell.executed


class TestResolve:
    def test_latest_definite_writer_wins(self):
        graph = graph_of("x = 1", "x = 2", "y = x")
        resolution = graph.resolve("x", 1)
        assert resolution.definite == 1
        assert resolution.producers == (1,)

    def test_definite_delete_kills(self):
        graph = graph_of("x = 1", "del x")
        resolution = graph.resolve("x", 1)
        assert resolution.definite is None
        assert resolution.killed
        assert resolution.unresolved

    def test_write_after_delete_revives(self):
        graph = graph_of("x = 1", "del x", "x = 3")
        resolution = graph.resolve("x", 2)
        assert resolution.definite == 2
        assert not resolution.killed

    def test_conditional_write_widens(self):
        graph = graph_of("x = 1", "if flag:\n    x = 2")
        resolution = graph.resolve("x", 1)
        assert resolution.definite == 0
        assert resolution.conditional == (1,)

    def test_mutation_joins_producers(self):
        graph = graph_of("xs = [1]", "xs.append(2)")
        resolution = graph.resolve("xs", 1)
        assert resolution.definite == 0
        assert resolution.mutators == (1,)

    def test_bare_mutator_is_not_a_producer(self):
        # A method call on a name never bound in the history (e.g. a
        # function-local leaking through in_place_mutation_targets) must
        # not conjure a binding.
        graph = graph_of("def f():\n    acc = []\n    acc.append(1)")
        resolution = graph.resolve("acc", 0)
        assert resolution.unresolved

    def test_escape_cell_widens_every_name(self):
        graph = graph_of("x = 1", "exec('x = 2')", "y = x")
        assert graph.escape_cells == (1,)
        resolution = graph.resolve("x", 1)
        assert resolution.definite == 0
        assert resolution.escapes == (1,)

    def test_pre_notebook_state_resolves_nothing(self):
        graph = graph_of("x = 1")
        assert graph.resolve("x", -1).unresolved

    def test_contiguous_index_validation(self):
        with pytest.raises(ValueError):
            NotebookDataflowGraph([make_cell_node(1, "x = 1")])


class TestEdges:
    def test_definite_edge(self):
        graph = graph_of("x = 1", "y = x + 1")
        assert any(
            e.name == "x" and e.producer == 0 and e.reader == 1
            and e.kind is EdgeKind.DEFINITE
            for e in graph.edges
        )

    def test_conditional_and_mutation_edges(self):
        graph = graph_of(
            "xs = [1]",
            "if flag:\n    xs = [2]",
            "xs.append(3)",
            "n = len(xs)",
        )
        kinds = {
            (e.producer, e.kind) for e in graph.edges
            if e.name == "xs" and e.reader == 3
        }
        assert (0, EdgeKind.DEFINITE) in kinds
        assert (1, EdgeKind.CONDITIONAL) in kinds
        assert (2, EdgeKind.MUTATION) in kinds

    def test_escape_edge(self):
        graph = graph_of("x = 1", "exec('x = 2')", "y = x")
        assert any(
            e.name == "x" and e.kind is EdgeKind.ESCAPE and e.producer == 1
            for e in graph.edges
        )

    def test_live_names(self):
        graph = graph_of("x = 1", "y = 2", "del y")
        assert graph.live_names() == ["x"]
        assert graph.live_names(1) == ["x", "y"]


class TestReplayPlanner:
    def test_minimal_plan_skips_unrelated_cells(self):
        graph = graph_of(
            "a = 1",
            "unrelated = list(range(100))",
            "b = a + 1",
            "also_unrelated = 'x'",
        )
        plan = ReplayPlanner(graph).plan(["b"])
        replayed = {step.index for step in plan.replay_steps}
        assert replayed == {0, 2}
        assert plan.cells_skipped == 2
        assert plan.is_complete and plan.is_safe
        assert not plan.external_inputs

    def test_stored_version_shortcut(self):
        def lookup(name, upto):
            if name == "a":
                return StoredVersion(
                    names=frozenset({"a"}), ref="t1", index=0, size_bytes=8
                )
            return None

        graph = graph_of("a = expensive()", "b = a + 1")
        plan = ReplayPlanner(graph, payload_lookup=lookup).plan(["b"])
        assert [s.kind for s in plan.steps] == ["load", "replay"]
        assert plan.load_steps[0].ref == "t1"
        # The load cut the recursion: cell 0's own external read
        # (`expensive`) never became an input.
        assert "expensive" not in plan.external_inputs

    def test_load_sorts_before_replay_at_same_index(self):
        def lookup(name, upto):
            if name == "a":
                return StoredVersion(frozenset({"a"}), "t1", 0)
            return None

        graph = graph_of("a = 1", "b = a + 1")
        plan = ReplayPlanner(graph, payload_lookup=lookup).plan(["b"])
        sorted_steps = sorted(plan.steps, key=lambda s: s.sort_key)
        assert tuple(sorted_steps) == plan.steps

    def test_unresolved_target_reported_missing(self):
        graph = graph_of("x = 1")
        plan = ReplayPlanner(graph).plan(["nope"])
        assert plan.missing == ("nope",)
        assert not plan.is_complete

    def test_external_inputs_surface_unproducible_reads(self):
        graph = graph_of("y = upstream + 1")
        plan = ReplayPlanner(graph).plan(["y"])
        assert "upstream" in plan.external_inputs

    def test_builtins_are_not_external_inputs(self):
        graph = graph_of("n = len([1, 2])", "m = n + 1")
        plan = ReplayPlanner(graph).plan(["m"])
        assert "len" not in plan.external_inputs
        assert is_builtin_name("len")
        assert not is_builtin_name("definitely_not_a_builtin")

    def test_lazy_read_resolved_at_target_index(self):
        # def-before-data: the function is defined before its data
        # exists; the lazy read must resolve at the *target* index, not
        # at producer-1 (where `data` does not exist yet).
        graph = graph_of(
            "def f():\n    return data[0]",
            "data = [7]",
            "out = f",
        )
        plan = ReplayPlanner(graph).plan(["out"])
        assert {step.index for step in plan.replay_steps} == {0, 1, 2}
        assert plan.is_complete
        assert "data" not in plan.external_inputs

    def test_plan_through_escaped_cell_is_flagged_unsafe(self):
        # Satellite regression: a plan that routes through an opaque
        # (escape) producer must be flagged replay-unsafe, not returned
        # as a silently minimal plan.
        graph = graph_of("exec('seed = [4]')", "gen = (i * seed[0] for i in range(2))")
        plan = ReplayPlanner(graph).plan(["gen"])
        assert not plan.is_safe
        assert plan.unsafe_reasons
        assert any("seed" in reason for reason in plan.unsafe_reasons)
        # The opaque producer is still *in* the plan (executing it is the
        # only chance of success) — the flag is the contract.
        assert 0 in {step.index for step in plan.replay_steps}

    def test_deleted_name_plan_is_incomplete(self):
        graph = graph_of("x = 1", "del x")
        plan = ReplayPlanner(graph).plan(["x"])
        assert "x" in plan.missing

    def test_costs_are_deterministic(self):
        cell = make_cell_node(0, "x = sum(range(10))")
        assert ast_cost(cell) == ast_cost(make_cell_node(0, "x = sum(range(10))"))
        assert ast_cost(cell) > 0

    def test_plan_dict_is_deterministic(self):
        sources = (
            "import math",
            "r = 2",
            "area = math.pi * r ** 2",
            "if area > 1:\n    r = 3",
        )
        dicts = [
            ReplayPlanner(graph_of(*sources)).plan(["area"]).to_dict()
            for _ in range(2)
        ]
        assert dicts[0] == dicts[1]

    def test_format_mentions_unsafe(self):
        graph = graph_of("exec('x = 1')", "y = x")
        text = ReplayPlanner(graph).plan(["y"]).format()
        assert "REPLAY-UNSAFE" in text
