"""``repro sessions`` — the multi-session store's CLI surface.

``list`` renders the session registry (filterable, JSON-able),
``rename`` performs the rename-catastrophe fix from the terminal, and
``resume`` reattaches a REPL to one session's history by id — the
blind-reconnect path, driven end to end through scripted stdin.
"""

from __future__ import annotations

import io
import json
import sys

import pytest

from repro.cli import sessions_main
from repro.core.storage import SQLiteCheckpointStore
from repro.service import SessionManager


def run(argv, stdin=None):
    out, err = io.StringIO(), io.StringIO()
    if stdin is not None:
        original = sys.stdin
        sys.stdin = io.StringIO(stdin)
        try:
            code = sessions_main(argv, stdout=out, stderr=err)
        finally:
            sys.stdin = original
    else:
        code = sessions_main(argv, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


@pytest.fixture()
def fleet_store(tmp_path):
    """A durable store holding two sessions with history."""
    path = str(tmp_path / "fleet.db")
    with SessionManager(SQLiteCheckpointStore(path)) as manager:
        alice = manager.create("alice", notebook_path="alice.ipynb")
        alice.run_cell("x = 1")
        alice.run_cell("y = x + 1")
        bob = manager.create("bob", notebook_path="bob.ipynb")
        bob.run_cell("z = 'hi'")
    return path


class TestSessionsList:
    def test_lists_registry(self, fleet_store):
        code, out, err = run(["list", "--store", fleet_store])
        assert code == 0 and err == ""
        assert "alice" in out and "alice.ipynb" in out
        assert "bob" in out and "2 checkpoint(s)" in out

    def test_json_output(self, fleet_store):
        code, out, err = run(["list", "--store", fleet_store, "--json"])
        assert code == 0
        records = {r["session_id"]: r for r in json.loads(out)}
        assert records["alice"]["checkpoints"] == 2
        assert records["bob"]["notebook_path"] == "bob.ipynb"
        assert records["alice"]["status"] == "detached"

    def test_status_filter(self, fleet_store):
        code, out, _ = run(
            ["list", "--store", fleet_store, "--status", "active"]
        )
        assert code == 0
        assert out == "no sessions\n"

    def test_hides_own_empty_handle_row(self, fleet_store):
        """The read-only open self-registers a 'default' handle; the
        listing must not show that empty artifact."""
        code, out, _ = run(["list", "--store", fleet_store])
        assert code == 0
        assert "default" not in out

    def test_missing_store_fails(self, tmp_path):
        code, out, err = run(["list", "--store", str(tmp_path / "nope.db")])
        assert code == 2
        assert "store not found" in err
        assert out == ""


class TestSessionsRename:
    def test_renames_notebook_path(self, fleet_store):
        code, out, _ = run(
            ["rename", "--store", fleet_store, "alice", "renamed.ipynb"]
        )
        assert code == 0
        assert "renamed alice -> renamed.ipynb" in out
        _, out, _ = run(["list", "--store", fleet_store, "--json"])
        records = {r["session_id"]: r for r in json.loads(out)}
        assert records["alice"]["notebook_path"] == "renamed.ipynb"
        assert records["alice"]["checkpoints"] == 2  # history intact

    def test_unknown_session_fails(self, fleet_store):
        code, _, err = run(
            ["rename", "--store", fleet_store, "ghost", "x.ipynb"]
        )
        assert code == 2
        assert "unknown session" in err


class TestSessionsResume:
    def test_resume_reattaches_history(self, fleet_store):
        code, out, err = run(
            ["resume", "--store", fleet_store, "alice"],
            stdin="%log\n%vars\n%quit\n",
        )
        assert code == 0, err
        assert "resumed durable session at t2 (2 checkpoint(s))" in out
        assert "y = x + 1" in out  # %log shows the history
        assert "x: int" in out and "y: int" in out  # state restored

    def test_resume_marks_status_active_then_detached(self, fleet_store):
        run(["resume", "--store", fleet_store, "alice"], stdin="%quit\n")
        _, out, _ = run(["list", "--store", fleet_store, "--json"])
        records = {r["session_id"]: r for r in json.loads(out)}
        assert records["alice"]["status"] == "detached"

    def test_resume_can_extend_history(self, fleet_store):
        code, out, _ = run(
            ["resume", "--store", fleet_store, "alice"],
            stdin="w = y * 10\n%quit\n",
        )
        assert code == 0
        _, out, _ = run(["list", "--store", fleet_store, "--json"])
        records = {r["session_id"]: r for r in json.loads(out)}
        assert records["alice"]["checkpoints"] == 3
        assert records["bob"]["checkpoints"] == 1  # untouched

    def test_unknown_session_lists_known(self, fleet_store):
        code, out, err = run(["resume", "--store", fleet_store, "ghost"])
        assert code == 2
        assert "unknown session: ghost" in err
        assert "alice" in err and "bob" in err
        assert out == ""
