"""Tests for co-variable granularity delta detection (§4.2–4.3)."""

from __future__ import annotations

import pytest

from repro.core.covariable import CoVariablePool, covar_key
from repro.core.delta import DeltaDetector
from repro.kernel.namespace import PatchedNamespace


def run_tracked(ns: PatchedNamespace, code: str):
    ns.begin_recording()
    exec(code, ns)
    return ns.end_recording()


@pytest.fixture
def env():
    """(namespace, pool, detector) seeded with a small state."""
    ns = PatchedNamespace()
    exec("ser = {'k': ['b']}\nobj_foo = ser['k']\ndf = [1.0] * 8\n", ns)
    pool = CoVariablePool.from_namespace(ns.user_items())
    detector = DeltaDetector(pool)
    return ns, pool, detector


class TestUpdateKinds:
    def test_creation(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "fresh = [1, 2]")
        delta = detector.detect(record, ns.user_items())
        assert covar_key({"fresh"}) in delta.created
        assert not delta.modified
        assert not delta.deleted

    def test_inplace_modification(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "df.append(2.0)")
        delta = detector.detect(record, ns.user_items())
        assert covar_key({"df"}) in delta.modified

    def test_deletion_of_singleton(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "del df")
        delta = detector.detect(record, ns.user_items())
        assert covar_key({"df"}) in delta.deleted

    def test_merge_creates_new_covariable(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "df.append(ser['k'])")
        delta = detector.detect(record, ns.user_items())
        merged = covar_key({"ser", "obj_foo", "df"})
        assert merged in delta.created
        assert covar_key({"df"}) in delta.deleted
        assert covar_key({"ser", "obj_foo"}) in delta.deleted
        assert pool.key_of("df") == merged

    def test_split_on_reassignment(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "obj_foo = [9]")
        delta = detector.detect(record, ns.user_items())
        assert covar_key({"ser", "obj_foo"}) in delta.deleted
        assert covar_key({"ser"}) in delta.created
        assert covar_key({"obj_foo"}) in delta.created

    def test_no_op_read_not_flagged(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "len(df)")
        delta = detector.detect(record, ns.user_items())
        assert delta.is_empty

    def test_modification_through_alias_detected_on_both_members(self, env):
        # Modify the shared component through ser; obj_foo's graph changes
        # too, but the co-variable is reported exactly once.
        ns, pool, detector = env
        record = run_tracked(ns, "ser['k'].append('c')")
        delta = detector.detect(record, ns.user_items())
        assert covar_key({"ser", "obj_foo"}) in delta.modified
        assert len(delta.modified) == 1


class TestAccessPruning:
    def test_unaccessed_covariables_not_checked(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "df.append(3.0)")
        delta = detector.detect(record, ns.user_items())
        assert "ser" not in delta.checked_names
        assert "obj_foo" not in delta.checked_names
        assert "df" in delta.checked_names

    def test_accessing_one_member_checks_whole_covariable(self, env):
        # Lemma 1's converse: an access to ser requires re-checking
        # obj_foo as well, since the shared objects may have changed.
        ns, pool, detector = env
        record = run_tracked(ns, "ser['k'][0] = 'B'")
        delta = detector.detect(record, ns.user_items())
        assert {"ser", "obj_foo"} <= delta.checked_names

    def test_check_all_checks_everything(self, env):
        ns, pool, _ = env
        detector = DeltaDetector(pool, check_all=True)
        record = run_tracked(ns, "noop = 1")
        delta = detector.detect(record, ns.user_items())
        assert {"ser", "obj_foo", "df", "noop"} <= delta.checked_names

    def test_none_record_is_conservative(self, env):
        ns, pool, detector = env
        delta = detector.detect(None, ns.user_items())
        assert {"ser", "obj_foo", "df"} <= delta.checked_names

    def test_accessed_keys_recorded_for_dependencies(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "df.append(sum(len(v) for v in ser.values()))")
        delta = detector.detect(record, ns.user_items())
        assert covar_key({"df"}) in delta.accessed_keys
        assert covar_key({"ser", "obj_foo"}) in delta.accessed_keys


class TestConservativeCases:
    def test_opaque_covariable_flagged_on_access(self):
        ns = PatchedNamespace()
        exec("gen = (i for i in range(5))\n", ns)
        pool = CoVariablePool.from_namespace(ns.user_items())
        detector = DeltaDetector(pool)
        record = run_tracked(ns, "repr(gen)")  # read-only access
        delta = detector.detect(record, ns.user_items())
        assert covar_key({"gen"}) in delta.modified  # conservative

    def test_empty_namespace(self):
        ns = PatchedNamespace()
        pool = CoVariablePool.from_namespace({})
        detector = DeltaDetector(pool)
        record = run_tracked(ns, "pass")
        delta = detector.detect(record, ns.user_items())
        assert delta.is_empty

    def test_detection_seconds_populated(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "df.append(1.0)")
        delta = detector.detect(record, ns.user_items())
        assert delta.detection_seconds > 0

    def test_updated_combines_created_and_modified(self, env):
        ns, pool, detector = env
        record = run_tracked(ns, "fresh = [0]\ndf.append(4.0)")
        delta = detector.detect(record, ns.user_items())
        assert set(delta.updated) == {covar_key({"fresh"}), covar_key({"df"})}
