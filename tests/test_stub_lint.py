"""KSH50x lint rules: library effect stubs (DESIGN.md §15).

KSH501 surfaces stub-declared mutations (receiver, argument, hidden
global), KSH502 flags library-shaped calls with no stub coverage and
names the stub file to extend, KSH503 warns when a stub pins a library
version that disagrees with the imported module.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.dataflow import NotebookDataflowGraph
from repro.analysis.flowrules import (
    NotebookContext,
    StubVersionMismatchRule,
)
from repro.analysis.rules import LintEngine, Severity
from repro.analysis.stubs import STUB_FORMAT_VERSION, StubRegistry
from repro.analysis.typetrack import StubContext

LIBSIM_CELLS = [
    "import random\n"
    "from repro.libsim.data_analysis import SimDataFrame, SimSeries",
    "df = SimDataFrame(n_rows=4, n_cols=2, seed=1)",
    "s = SimSeries(n=8, seed=2)",
    "random.seed(7)",
    "s.standardize()",
    "m = df.mean_of('c0')",
    "df.frobnicate()",
]


def notebook_findings(sources, rule=None):
    cells = [(f"cell[{i}]", source) for i, source in enumerate(sources)]
    findings = LintEngine().lint_notebook(cells)
    if rule is not None:
        findings = [f for f in findings if f.rule_id == rule]
    return findings


class TestStubMutation:
    def test_fires_on_stub_declared_mutators(self):
        findings = notebook_findings(LIBSIM_CELLS, rule="KSH501")
        by_cell = {f.cell_index: f.message for f in findings}
        assert 3 in by_cell  # random.seed writes module RNG state
        assert 4 in by_cell and "'s'" in by_cell[4]
        assert "mutates" in by_cell[4]
        assert all(f.severity is Severity.INFO for f in findings)

    def test_silent_on_pure_reads(self):
        findings = notebook_findings(LIBSIM_CELLS, rule="KSH501")
        assert not any(f.cell_index == 5 for f in findings)  # mean_of

    def test_silent_without_provable_binding(self):
        findings = notebook_findings(
            ["s = mystery()", "s.standardize()"], rule="KSH501"
        )
        assert not findings


class TestUnstubbedLibraryCall:
    def test_fires_with_stub_file_fixit(self):
        findings = notebook_findings(LIBSIM_CELLS, rule="KSH502")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.cell_index == 6
        assert "frobnicate" in finding.message
        assert "libsim_data_analysis" in finding.message
        assert finding.severity is Severity.WARNING

    def test_silent_on_covered_calls(self):
        covered = LIBSIM_CELLS[:-1]
        assert not notebook_findings(covered, rule="KSH502")

    def test_silent_on_plain_user_calls(self):
        findings = notebook_findings(
            ["def helper(v):\n    return v + 1", "y = helper(1)"],
            rule="KSH502",
        )
        assert not findings


class TestStubVersionMismatch:
    def _context(self, sources, mapping):
        registry = StubRegistry()
        registry.add_mapping(mapping)
        graph = NotebookDataflowGraph.from_sources(sources)
        stubs = StubContext(registry=registry)
        for source in sources:
            stubs.observe_cell(source)
        return NotebookContext(graph=graph, stubs=stubs)

    def _pytest_stub(self, version):
        return {
            "stub_format": STUB_FORMAT_VERSION,
            "module": "pytest",
            "module_version": version,
            "functions": {"main": {"effect": "pure"}},
        }

    def test_fires_on_pinned_version_drift(self):
        context = self._context(
            ["import pytest", "import pytest"],  # dedup: one finding
            self._pytest_stub("0.0.1"),
        )
        findings = list(StubVersionMismatchRule().check_notebook(context))
        assert len(findings) == 1
        message = findings[0].message
        assert "0.0.1" in message
        assert pytest.__version__ in message

    def test_silent_when_versions_agree(self):
        context = self._context(
            ["import pytest"], self._pytest_stub(pytest.__version__)
        )
        assert not list(StubVersionMismatchRule().check_notebook(context))

    def test_silent_when_module_never_imported(self):
        context = self._context(["x = 1"], self._pytest_stub("0.0.1"))
        assert not list(StubVersionMismatchRule().check_notebook(context))

    def test_shipped_stubs_carry_no_pins(self):
        # The default registry leaves versions null, so the full lint
        # path never produces KSH503 out of the box.
        assert not notebook_findings(LIBSIM_CELLS, rule="KSH503")


class TestSuppression:
    def test_ksh501_suppressible_inline(self):
        sources = list(LIBSIM_CELLS)
        sources[4] = "s.standardize()  # kishu: disable=KSH501"
        findings = notebook_findings(sources, rule="KSH501")
        assert not any(f.cell_index == 4 for f in findings)


def test_golden_stub_mapping_round_trips(tmp_path):
    """A user stub written to disk loads back into the same registry
    content — the workflow the KSH502 fix-it message points at."""
    mapping = {
        "stub_format": STUB_FORMAT_VERSION,
        "module": "mylib",
        "types": {
            "Thing": {"methods": {"poke": {"effect": "mutates"}}}
        },
    }
    path = tmp_path / "mylib.json"
    path.write_text(json.dumps(mapping), encoding="utf-8")
    registry = StubRegistry()
    registry.add_file(path)
    stub = registry.method("mylib.Thing", "poke")
    assert stub is not None and stub.effect == "mutates"
