"""End-to-end tests of the observability layer (ISSUE 5 acceptance).

The acceptance criteria, verified on real sessions:

* a commit + checkout on a shared-referencing workload exports a Chrome
  trace covering **both** lifecycles end-to-end (cell execution →
  analysis → detection → serialization → store commit; LCA planning →
  materialization → replay-or-legacy → namespace mutation);
* every replay-plan decline and every cross-validation escalation
  appears in the structured event log with a reason;
* fault injections, retries, and recovery sweeps are events too, and the
  crash-consistency harness can read them back from a written JSONL log;
* ``repro stats`` output is deterministic and golden-tested
  (``tests/golden/stats_store.json`` / ``.txt``);
* ``observe=False`` keeps the whole session working with zero recorded
  spans, metrics, and events.
"""

from __future__ import annotations

import io
import json
import pathlib

import pytest

from repro.core.covariable import covar_key
from repro.core.retry import RetryPolicy
from repro.core.session import KishuSession
from repro.core.storage import (
    InMemoryCheckpointStore,
    SQLiteCheckpointStore,
    StoredNode,
    StoredPayload,
)
from repro.errors import SimulatedCrash
from repro.faults import FaultInjectingStore, FaultPlan
from repro.kernel.kernel import NotebookKernel
from repro.obs import NO_OBSERVER, EventLog, EventType, Observer
from repro.obs.report import registry_from_store, render_store_stats, stats_as_dict

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Plain-python shared-referencing cells: ``bundle`` aliases ``base`` so
#: the two fuse into one co-variable, and ``derived`` depends on it.
SHARED_CELLS = (
    "base = [1, 2, 3]",
    "bundle = [base, [0]]",
    "derived = [x * 2 for x in base]",
)


def tombstone_payload(session, key, node_id):
    session.store.write_payload(
        StoredPayload(node_id=node_id, key=key, data=None, serializer=None)
    )


def run_shared_workload_with_checkout(session):
    """Commit the shared-referencing cells, then force a checkout whose
    ``derived`` payload is gone — exercising replay inside checkout."""
    for source in SHARED_CELLS:
        session.run_cell(source)
    target = session.head_id
    key = covar_key({"derived"})
    version = session.graph.get(target).state.version_of(key)
    session.run_cell("derived = None")
    tombstone_payload(session, key, version)
    report = session.checkout(target)
    assert session.kernel.get("derived") == [2, 4, 6]
    assert session.kernel.get("bundle")[0] is session.kernel.get("base")
    return report


class TestAcceptanceTrace:
    """One trace covers commit and checkout lifecycles end-to-end."""

    COMMIT_SPANS = (
        "cell",
        "cell.analyze",
        "cell.exec",
        "commit",
        "commit.crossval",
        "commit.detect",
        "commit.serialize",
        "commit.persist",
    )
    CHECKOUT_SPANS = (
        "checkout",
        "checkout.plan",
        "checkout.materialize",
        "replay.plan",
        "replay.execute",
        "checkout.apply",
        "checkout.resync",
    )

    def test_trace_covers_both_lifecycles(self, tmp_path):
        session = KishuSession.init(NotebookKernel())
        run_shared_workload_with_checkout(session)

        names = {span.name for span in session.observer.tracer.all_spans()}
        for expected in self.COMMIT_SPANS + self.CHECKOUT_SPANS:
            assert expected in names, f"span {expected!r} missing from trace"

        # Nesting: the commit lifecycle hangs off the cell span (the POST
        # trigger fires inside run_cell), and replay hangs off checkout.
        cell_roots = [r for r in session.observer.tracer.roots if r.name == "cell"]
        assert any(root.find("commit.persist") for root in cell_roots)
        checkout_root = next(
            r for r in session.observer.tracer.roots if r.name == "checkout"
        )
        assert checkout_root.find("replay.execute") is not None
        assert checkout_root.find("checkout.resync") is not None
        # Wall/CPU timing is recorded (values themselves are not asserted).
        assert checkout_root.duration > 0.0

        # The Chrome export round-trips through JSON with every span.
        out = tmp_path / "trace.json"
        session.observer.tracer.write_chrome_trace(str(out))
        payload = json.loads(out.read_text())
        exported = {event["name"] for event in payload["traceEvents"]}
        assert set(self.COMMIT_SPANS + self.CHECKOUT_SPANS) <= exported
        assert all("cpu_us" in e["args"] for e in payload["traceEvents"])

    def test_commit_and_checkout_events_emitted(self):
        session = KishuSession.init(NotebookKernel())
        run_shared_workload_with_checkout(session)
        events = session.observer.events
        commits = events.of_type(EventType.COMMIT)
        assert len(commits) == len(SHARED_CELLS) + 1  # + the divergence cell
        assert commits[0].fields["node"] == "t1"
        assert commits[0].fields["updated"] >= 1
        (checkout,) = events.of_type(EventType.CHECKOUT)
        assert checkout.fields["recomputes"] >= 1
        assert session.observer.metrics.counter("commit.count").value == 4
        assert session.observer.metrics.counter("checkout.count").value == 1

    def test_cell_metrics_carry_span_derived_numbers(self):
        # Satellite (b): serialized bytes and store-write duration ride on
        # CellCheckpointMetrics, sourced from the commit.persist span.
        session = KishuSession.init(NotebookKernel())
        session.run_cell("payload = list(range(100))")
        metric = session.metrics[-1]
        assert metric.serialized_bytes > 0
        assert metric.serialized_bytes >= metric.bytes_written
        assert metric.store_write_seconds > 0.0

    def test_store_write_seconds_falls_back_when_disabled(self):
        session = KishuSession.init(NotebookKernel(), observe=False)
        session.run_cell("payload = list(range(100))")
        metric = session.metrics[-1]
        assert metric.serialized_bytes > 0
        assert metric.store_write_seconds > 0.0  # perf_counter fallback


class TestReasonedEvents:
    def test_crossval_escalation_event_carries_reasons(self):
        session = KishuSession.init(NotebookKernel())
        session.run_cell("exec('opaque = 1')")
        escalations = session.observer.events.of_type(EventType.CROSSVAL_ESCALATION)
        assert escalations, "escaped cell must log an escalation event"
        event = escalations[-1]
        assert event.fields["reasons"], "escalation must carry its reasons"
        assert event.fields["execution_count"] == 1
        assert session.analysis_stats.escalations >= 1
        assert (
            session.observer.metrics.counter("events.crossval_escalation").value
            == len(escalations)
        )

    def test_tombstone_degradation_event(self):
        # A permanent storage fault on the payload write degrades it to a
        # tombstone mid-checkpoint; the degradation must carry its
        # co-variable in the event log.
        store = FaultInjectingStore(
            InMemoryCheckpointStore(),
            FaultPlan.fail_nth_write(0, kind="permanent"),
        )
        session = KishuSession.init(NotebookKernel(), store=store)
        session.run_cell("f = [1, 2, 3]")
        assert session.head_id == "t1"
        assert session.metrics[-1].degraded_payloads == 1
        degraded = session.observer.events.of_type(EventType.TOMBSTONE_DEGRADED)
        assert degraded, "degraded payload must log its degradation"
        assert degraded[-1].fields["covariable"] == ["f"]
        assert degraded[-1].fields["node"] == session.head_id
        assert degraded[-1].fields["bytes_dropped"] > 0


class TestFaultRetryRecoveryEvents:
    def test_transient_fault_retry_is_an_event(self):
        store = FaultInjectingStore(
            InMemoryCheckpointStore(),
            FaultPlan.fail_nth_write(0, kind="transient", times=1),
        )
        retry = RetryPolicy(base_delay=0.0, sleep=lambda _s: None)
        session = KishuSession.init(NotebookKernel(), store=store, retry=retry)
        session.run_cell("x = 1")
        assert session.head_id == "t1"  # absorbed, zero data loss

        injected = session.observer.events.of_type(EventType.FAULT_INJECTED)
        assert injected and injected[0].fields["kind"] == "TransientStorageError"
        retries = session.observer.events.of_type(EventType.RETRY)
        assert retries and retries[0].fields["attempt"] == 1
        assert retries[0].fields["error"]

    def test_crash_and_recovery_events_roundtrip_jsonl(self, tmp_path):
        # Satellite (f): the crash-consistency harness's reboot path reads
        # fault/recovery actions back from a written event log.
        # First commit's checkpoint-protocol ops: begin(0), the payload
        # write(1), the node write(2), commit(3) — crash at the commit so
        # the staged node is torn and the reboot sweep has work to report.
        store = FaultInjectingStore(
            InMemoryCheckpointStore(), FaultPlan.crash_at_checkpoint_op(3)
        )
        session = KishuSession.init(NotebookKernel(), store=store)
        with pytest.raises(SimulatedCrash):
            session.run_cell("x = 1")
        assert store.crashed

        # Reboot: sweep the torn checkpoint through the wrapper so the
        # sweep publishes into the session's event log.
        report = store.recover()
        assert not report.clean and report.swept_nodes

        events = session.observer.events
        crash = events.of_type(EventType.FAULT_INJECTED)[-1]
        assert crash.fields["kind"] == "crash"
        assert crash.fields["op"] == "commit_checkpoint"
        recovery = events.of_type(EventType.RECOVERY)[-1]
        assert recovery.fields["swept_nodes"] == list(report.swept_nodes)
        assert (
            session.observer.metrics.counter("store.recoveries").value == 1
        )

        # Write, read back, and find the same reasons — what the harness
        # does after a simulated reboot.
        path = tmp_path / "events.jsonl"
        events.write_jsonl(str(path))
        records = EventLog.read_jsonl(str(path))
        kinds = {record["type"] for record in records}
        assert {"fault_injected", "recovery"} <= kinds
        read_crash = [r for r in records if r["type"] == "fault_injected"][-1]
        assert read_crash["kind"] == "crash"
        read_recovery = [r for r in records if r["type"] == "recovery"][-1]
        assert read_recovery["swept_nodes"] == list(report.swept_nodes)


class TestDisabledObserver:
    def test_session_works_with_zero_recording(self):
        session = KishuSession.init(NotebookKernel(), observe=False)
        run_shared_workload_with_checkout(session)
        assert session.observer is NO_OBSERVER
        assert list(session.observer.tracer.all_spans()) == []
        assert len(session.observer.events) == 0
        assert len(session.observer.metrics) == 0
        # Stats views still work (reads return zeros from NO_OBSERVER's
        # registry only if something wrote there — nothing may).
        assert session.plan_stats.plans_executed >= 0

    def test_shared_observer_across_sessions(self):
        observer = Observer()
        first = KishuSession.init(NotebookKernel(), observe=observer)
        second = KishuSession.init(NotebookKernel(), observe=observer)
        first.run_cell("x = 1")
        second.run_cell("y = 2")
        assert observer.metrics.counter("commit.count").value == 2


# ---------------------------------------------------------------------------
# Golden-tested `repro stats`
# ---------------------------------------------------------------------------


def populate_golden_store(store) -> None:
    """Deterministic store contents for the golden stats files.

    Fixed raw byte payloads (never pickles — pickle framing differs
    across interpreter versions) and fixed timestamps, exercising every
    ``store.*`` metric: stored payloads, a tombstone, and a version
    carried forward across a commit (a dedup hit).
    """
    a, b = covar_key({"a"}), covar_key({"b"})

    store.begin_checkpoint("t1")
    store.write_payload(StoredPayload("t1", a, b"\x00" * 100, "raw"))
    store.write_node(
        StoredNode("t1", None, 1, 1, "a = blob(100)", (), ((a, "t1"),))
    )
    store.commit_checkpoint("t1")

    store.begin_checkpoint("t2")
    store.write_payload(StoredPayload("t2", b, b"\x01" * 5000, "raw"))
    store.write_node(
        StoredNode("t2", "t1", 2, 2, "b = blob(5000)", (), ((b, "t2"),))
    )
    store.commit_checkpoint("t2")

    store.begin_checkpoint("t3")
    store.write_payload(StoredPayload("t3", b, None, None))  # tombstone
    store.write_node(
        StoredNode("t3", "t2", 3, 3, "b.mutate()", (), ((b, "t3"),))
    )
    store.commit_checkpoint("t3")


class TestGoldenStoreStats:
    def render_json(self) -> str:
        store = InMemoryCheckpointStore()
        populate_golden_store(store)
        registry = registry_from_store(store)
        return json.dumps(stats_as_dict(registry), indent=2, sort_keys=True) + "\n"

    def test_json_matches_golden(self):
        first, second = self.render_json(), self.render_json()
        assert first == second, "store stats must be byte-stable"
        golden = (GOLDEN_DIR / "stats_store.json").read_text()
        assert first == golden

    def test_semantics_of_golden_numbers(self):
        store = InMemoryCheckpointStore()
        populate_golden_store(store)
        registry = registry_from_store(store)
        assert registry.counter("store.nodes").value == 3
        assert registry.counter("store.payloads_stored").value == 2
        assert registry.counter("store.tombstones").value == 1
        # t2 and t3 both carry {a}@t1 forward by reference: 2 dedup hits.
        assert registry.counter("store.dedup_hits").value == 2
        # Incremental wrote 5100 B; a monolithic checkpointer would have
        # written {a} at t1, {a}+{b} at t2, and {a} again at t3 (t3's {b}
        # version is a tombstone with no bytes): 100+5100+100.
        assert registry.counter("store.incremental_bytes").value == 5100
        assert registry.counter("store.monolithic_bytes").value == 5300

    def test_cli_stats_text_matches_golden(self, tmp_path, capsys):
        from repro.cli import stats_main

        db = tmp_path / "golden.db"
        store = SQLiteCheckpointStore(str(db))
        populate_golden_store(store)
        store.close()

        outputs = []
        for _ in range(2):
            stats_main(["--store", str(db)])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1], "repro stats must be byte-stable"
        golden = (GOLDEN_DIR / "stats_store.txt").read_text()
        assert outputs[0] == golden

    def test_cli_stats_json_mode(self, tmp_path, capsys):
        from repro.cli import stats_main

        db = tmp_path / "golden.db"
        store = SQLiteCheckpointStore(str(db))
        populate_golden_store(store)
        store.close()
        stats_main(["--store", str(db), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["store.nodes"] == 3
        assert payload["store.size_ratio_incremental_vs_monolithic"] == round(
            5100 / 5300, 4
        )
