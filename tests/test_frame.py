"""Tests for the columnar dataframe substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frame import DataFrame, Series


class TestSeries:
    def test_construction_and_len(self):
        series = Series([1, 2, 3], name="s")
        assert len(series) == 3
        assert series.name == "s"

    def test_arithmetic(self):
        series = Series(np.array([1.0, 2.0]))
        assert list((series + 1).values) == [2.0, 3.0]
        assert list((series * 2).values) == [2.0, 4.0]
        assert list((series - series).values) == [0.0, 0.0]

    def test_comparison_produces_mask(self):
        series = Series(np.array([1, 5, 3]))
        mask = series > 2
        assert list(mask.values) == [False, True, True]

    def test_boolean_indexing(self):
        series = Series(np.array([10, 20, 30]))
        picked = series[series > 15]
        assert list(picked.values) == [20, 30]

    def test_setitem_mutates_in_place(self):
        values = np.array([1, 2, 3])
        series = Series(values)
        series[0] = 9
        assert values[0] == 9  # aliased, as pandas semantics require

    def test_map(self):
        series = Series(np.array([1, 2]))
        assert list(series.map(lambda v: v * 10).values) == [10, 20]

    def test_replace_inplace(self):
        series = Series(np.array([1, 2, 1]))
        series.replace_inplace(1, 7)
        assert list(series.values) == [7, 2, 7]

    def test_reductions(self):
        series = Series(np.array([1.0, 3.0]))
        assert series.sum() == 4.0
        assert series.mean() == 2.0
        assert series.min() == 1.0
        assert series.max() == 3.0

    def test_copy_is_independent(self):
        series = Series(np.array([1, 2]))
        clone = series.copy()
        clone[0] = 99
        assert series.values[0] == 1

    def test_equality(self):
        assert Series([1, 2], name="x") == Series([1, 2], name="x")
        assert not (Series([1, 2], name="x") == Series([1, 3], name="x"))


class TestDataFrame:
    def test_shape_and_columns(self):
        frame = DataFrame({"a": [1, 2], "b": [3.0, 4.0]})
        assert frame.shape == (2, 2)
        assert frame.columns == ["a", "b"]

    def test_column_access_aliases_storage(self):
        frame = DataFrame({"a": np.array([1, 2])})
        series = frame["a"]
        series[0] = 5
        assert frame.column_array("a")[0] == 5

    def test_length_mismatch_rejected(self):
        frame = DataFrame({"a": [1, 2]})
        with pytest.raises(ValueError):
            frame["b"] = [1, 2, 3]

    def test_drop_returns_new_frame_sharing_columns(self):
        frame = DataFrame({"a": np.array([1]), "b": np.array([2])})
        dropped = frame.drop("a")
        assert dropped.columns == ["b"]
        assert "a" in frame  # original untouched
        assert dropped.column_array("b") is frame.column_array("b")

    def test_drop_missing_column(self):
        with pytest.raises(KeyError):
            DataFrame({"a": [1]}).drop("zzz")

    def test_drop_inplace(self):
        frame = DataFrame({"a": [1], "b": [2]})
        frame.drop_inplace("a")
        assert frame.columns == ["b"]

    def test_assign_shares_untouched_columns(self):
        frame = DataFrame({"a": np.array([1, 2])})
        extended = frame.assign(b=np.array([3, 4]))
        assert extended.column_array("a") is frame.column_array("a")

    def test_boolean_row_filter(self):
        frame = DataFrame({"a": np.array([1, 5, 3])})
        mask = frame["a"] > 2
        filtered = frame[mask]
        assert list(filtered.column_array("a")) == [5, 3]

    def test_sort_values(self):
        frame = DataFrame({"k": np.array([3, 1, 2]), "v": np.array([30, 10, 20])})
        ordered = frame.sort_values("k")
        assert list(ordered.column_array("v")) == [10, 20, 30]
        descending = frame.sort_values("k", descending=True)
        assert list(descending.column_array("v")) == [30, 20, 10]

    def test_groupby_agg_mean(self):
        frame = DataFrame(
            {"key": np.array([0, 0, 1]), "value": np.array([2.0, 4.0, 10.0])}
        )
        result = frame.groupby_agg("key", "value", "mean")
        assert list(result.column_array("value")) == [3.0, 10.0]

    def test_groupby_agg_sum_and_count(self):
        frame = DataFrame({"key": np.array([0, 0, 1]), "value": np.array([1.0, 2.0, 3.0])})
        assert list(frame.groupby_agg("key", "value", "sum").column_array("value")) == [3.0, 3.0]
        assert list(frame.groupby_agg("key", "value", "count").column_array("value")) == [2.0, 1.0]

    def test_groupby_unknown_aggregate(self):
        frame = DataFrame({"key": np.array([0]), "value": np.array([1.0])})
        with pytest.raises(ValueError):
            frame.groupby_agg("key", "value", "median")

    def test_describe_numeric_only(self):
        frame = DataFrame({"n": np.array([1.0, 3.0]), "s": np.array(["a", "b"])})
        summary = frame.describe()
        assert summary["n"]["mean"] == 2.0
        assert "s" not in summary

    def test_train_test_split_deterministic_with_seed(self):
        frame = DataFrame.from_random(100, 3, seed=1)
        a_train, a_test = frame.train_test_split(0.25, seed=42)
        b_train, b_test = frame.train_test_split(0.25, seed=42)
        assert a_train == b_train
        assert len(a_test) == 25

    def test_train_test_split_varies_with_seed(self):
        frame = DataFrame.from_random(100, 3, seed=1)
        a_train, _ = frame.train_test_split(0.25, seed=1)
        b_train, _ = frame.train_test_split(0.25, seed=2)
        assert a_train != b_train

    def test_head(self):
        frame = DataFrame.from_random(10, 2, seed=0)
        assert len(frame.head(3)) == 3

    def test_apply_inplace(self):
        frame = DataFrame({"a": np.array([1.0, 2.0])})
        frame.apply_inplace("a", lambda col: col * 10)
        assert list(frame.column_array("a")) == [10.0, 20.0]

    def test_nbytes_positive(self):
        assert DataFrame.from_random(10, 2).nbytes > 0

    def test_equality(self):
        left = DataFrame({"a": np.array([1, 2])})
        right = DataFrame({"a": np.array([1, 2])})
        assert left == right
        assert not (left == DataFrame({"a": np.array([1, 3])}))
