"""Property-based tests for the dataframe substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import DataFrame, Series
import pytest

pytestmark = pytest.mark.slow

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)
columns_strategy = st.dictionaries(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=122),
        min_size=1,
        max_size=5,
    ),
    st.integers(min_value=0, max_value=50),  # per-column fill value
    min_size=1,
    max_size=5,
)


def make_frame(spec: dict, n_rows: int) -> DataFrame:
    return DataFrame(
        {name: np.full(n_rows, float(fill)) for name, fill in spec.items()}
    )


class TestFrameProperties:
    @settings(max_examples=50)
    @given(columns_strategy, st.integers(min_value=1, max_value=40))
    def test_drop_then_assign_is_identity_on_values(self, spec, n_rows):
        frame = make_frame(spec, n_rows)
        column = sorted(spec)[0]
        values = frame.column_array(column)
        rebuilt = frame.drop(column).assign(**{column: values})
        assert sorted(rebuilt.columns) == sorted(frame.columns)
        assert np.array_equal(rebuilt.column_array(column), values)

    @settings(max_examples=50)
    @given(columns_strategy, st.integers(min_value=1, max_value=40))
    def test_copy_never_aliases(self, spec, n_rows):
        frame = make_frame(spec, n_rows)
        clone = frame.copy()
        for column in frame.columns:
            clone.column_array(column)[0] = -999.0
        for column in frame.columns:
            assert frame.column_array(column)[0] != -999.0

    @settings(max_examples=50)
    @given(
        st.lists(finite_floats, min_size=1, max_size=60),
        st.integers(min_value=0, max_value=100),
    )
    def test_sort_values_is_a_permutation(self, values, seed):
        rng = np.random.default_rng(seed)
        other = rng.random(len(values))
        frame = DataFrame({"k": np.asarray(values), "v": other})
        ordered = frame.sort_values("k")
        assert sorted(ordered.column_array("k")) == list(
            np.sort(np.asarray(values))
        )
        assert sorted(ordered.column_array("v")) == sorted(other)

    @settings(max_examples=50)
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_filter_partition(self, values):
        frame = DataFrame({"x": np.asarray(values)})
        threshold = float(np.median(np.asarray(values)))
        above = frame[frame["x"] > threshold]
        below_or_equal = frame[frame["x"] <= threshold]
        assert len(above) + len(below_or_equal) == len(frame)

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60)
    )
    def test_groupby_count_sums_to_rows(self, keys):
        frame = DataFrame(
            {"k": np.asarray(keys), "v": np.ones(len(keys))}
        )
        counts = frame.groupby_agg("k", "v", "count")
        assert counts.column_array("v").sum() == len(keys)

    @settings(max_examples=50)
    @given(
        st.lists(finite_floats, min_size=4, max_size=60),
        st.integers(min_value=0, max_value=10),
    )
    def test_train_test_split_partitions_rows(self, values, seed):
        frame = DataFrame({"x": np.asarray(values)})
        train, test = frame.train_test_split(0.25, seed=seed)
        assert len(train) + len(test) == len(frame)
        combined = sorted(
            list(train.column_array("x")) + list(test.column_array("x"))
        )
        assert combined == sorted(values)


class TestSeriesProperties:
    @settings(max_examples=50)
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_map_identity(self, values):
        series = Series(np.asarray(values))
        assert list(series.map(lambda v: v).values) == list(series.values)

    @settings(max_examples=50)
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_add_then_subtract_roundtrips(self, values):
        series = Series(np.asarray(values))
        roundtrip = (series + 1.5) - 1.5
        assert np.allclose(roundtrip.values, series.values)

    @settings(max_examples=50)
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_mask_selects_exactly_matching(self, values):
        series = Series(np.asarray(values))
        threshold = float(np.asarray(values).mean())
        picked = series[series > threshold]
        assert all(v > threshold for v in picked.values)
        assert len(picked) == sum(1 for v in values if v > threshold)
