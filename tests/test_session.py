"""End-to-end tests for KishuSession (§3 workflow)."""

from __future__ import annotations

import pytest

from repro.core.session import KishuSession
from repro.core.storage import SQLiteCheckpointStore
from repro.errors import KishuError
from repro.kernel.cells import Cell
from repro.kernel.kernel import NotebookKernel


class TestAttachment:
    def test_init_attaches(self, kernel):
        session = KishuSession.init(kernel)
        kernel.run_cell("x = 1")
        assert session.head_id == "t1"

    def test_double_attach_rejected(self, kernel):
        session = KishuSession.init(kernel)
        with pytest.raises(KishuError):
            session.attach()

    def test_detach_stops_checkpointing(self, kernel):
        session = KishuSession.init(kernel)
        kernel.run_cell("x = 1")
        session.detach()
        kernel.run_cell("y = 2")
        assert len(session.log()) == 1

    def test_attach_captures_preexisting_state(self):
        kernel = NotebookKernel()
        kernel.run_cell("existing = [1, 2]")
        session = KishuSession.init(kernel)
        attach_point = session.head_id
        kernel.run_cell("existing.append(3)")
        session.checkout(attach_point)
        assert kernel.get("existing") == [1, 2]

    def test_attach_to_empty_kernel_has_no_initial_commit(self, kernel):
        session = KishuSession.init(kernel)
        assert session.log() == []


class TestCheckpointing:
    def test_one_node_per_cell(self, session):
        session.run_cell("a = 1")
        session.run_cell("b = 2")
        assert [entry.node_id for entry in session.log()] == ["t1", "t2"]

    def test_delta_only_storage(self, session):
        session.run_cell("big = list(range(50_000))")
        size_after_big = session.total_checkpoint_bytes()
        session.run_cell("tiny = 1")
        growth = session.total_checkpoint_bytes() - size_after_big
        # The second checkpoint stores only {tiny}, not the big list again.
        assert growth < size_after_big / 10

    def test_metrics_recorded(self, session):
        session.run_cell("x = [1] * 100")
        metric = session.metrics[-1]
        assert metric.bytes_written > 0
        assert metric.checkpoint_seconds >= metric.tracking_seconds
        assert metric.updated_covariables == 1

    def test_unserializable_skipped_not_fatal(self, session):
        session.run_cell("gen = (i for i in range(3))")
        metric = session.metrics[-1]
        assert metric.skipped_unserializable == 1

    def test_manual_commit_batches_cells(self, kernel):
        session = KishuSession(kernel, auto_checkpoint=False)
        session.attach()
        kernel.run_cell("a = 1")
        kernel.run_cell("b = a + 1")
        node = session.commit()
        assert node is not None
        assert len(session.log()) == 1
        assert "a = 1" in node.cell_source
        assert "b = a + 1" in node.cell_source

    def test_commit_without_pending_is_noop(self, kernel):
        session = KishuSession(kernel, auto_checkpoint=False)
        session.attach()
        assert session.commit() is None

    def test_dependencies_recorded(self, session):
        session.run_cell("base = [1]")
        session.run_cell("derived = [base[0] * 2]")
        node = session.graph.head
        assert any("base" in key for key in node.dependencies)


class TestLog:
    def test_log_previews_code(self, session):
        session.run_cell("value = 42  # the answer")
        (entry,) = session.log()
        assert entry.code_preview.startswith("value = 42")
        assert entry.is_head

    def test_log_marks_head_after_checkout(self, session):
        session.run_cell("a = 1")
        first = session.head_id
        session.run_cell("b = 2")
        session.checkout(first)
        entries = {e.node_id: e for e in session.log()}
        assert entries[first].is_head
        assert not entries["t2"].is_head


class TestSqliteBacked:
    def test_full_workflow_on_sqlite(self, tmp_path):
        kernel = NotebookKernel()
        store = SQLiteCheckpointStore(str(tmp_path / "kishu.db"))
        session = KishuSession.init(kernel, store=store)
        kernel.run_cell("data = {'k': [1, 2]}")
        before = kernel and session.head_id
        kernel.run_cell("data['k'].clear()")
        session.checkout(before)
        assert kernel.get("data") == {"k": [1, 2]}
        store.close()


class TestDetReplayVariant:
    def test_deterministic_cells_skip_storage(self, kernel):
        from repro.baselines import DetReplaySession

        session = DetReplaySession(kernel)
        session.attach()
        kernel.run_cell(Cell.make("model = sorted([3, 1, 2])", "c0", "deterministic"))
        metric = session.metrics[-1]
        assert metric.bytes_written == 0

    def test_deterministic_cells_replayed_on_checkout(self, kernel):
        from repro.baselines import DetReplaySession

        session = DetReplaySession(kernel)
        session.attach()
        kernel.run_cell(Cell.make("model = sorted([3, 1, 2])", "c0", "deterministic"))
        target = session.head_id
        kernel.run_cell("model = None")
        report = session.checkout(target)
        assert kernel.get("model") == [1, 2, 3]
        assert report.recomputed_keys  # replay, not load
