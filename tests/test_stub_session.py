"""Stub layer end-to-end in a live session (DESIGN.md §15.3).

The runtime side of PR 9: the commit-time stub-mismatch oracle (a lying
stub is refuted by the state delta and escalates exactly that
checkpoint), the single-escalation-per-cell accounting with per-kind
counters, and the stub environment surviving checkout via the
replay-chain resync.
"""

from __future__ import annotations

import json

from repro.analysis.crossval import CrossValidator
from repro.analysis.effects import CellEffects
from repro.analysis.stubs import STUB_FORMAT_VERSION, StubRegistry
from repro.core.session import KishuSession
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord
from repro.obs import EventType

#: A stub that lies: ``SimSeries.standardize`` rescales the series in
#: place, but the stub declares it pure. The runtime oracle must catch
#: the refutation at commit time.
LYING_STUB = {
    "stub_format": STUB_FORMAT_VERSION,
    "module": "repro.libsim.data_analysis",
    "functions": {
        "SimSeries": {"effect": "pure", "returns": "SimSeries"},
    },
    "types": {
        "SimSeries": {
            "methods": {"standardize": {"effect": "pure"}},
        }
    },
}

WRONG_STUB_CELLS = [
    "from repro.libsim.data_analysis import SimSeries",
    "s = SimSeries(n=6, seed=3)",
    "s.standardize()",
]


def _lying_registry(tmp_path):
    path = tmp_path / "lying.json"
    path.write_text(json.dumps(LYING_STUB), encoding="utf-8")
    registry = StubRegistry()
    registry.add_file(path)
    return registry


class TestStubMismatchOracle:
    def test_wrong_stub_caught_at_commit(self, tmp_path):
        """ISSUE 9 acceptance pin: a stub that declares a mutator pure
        is refuted by the commit delta — stub_mismatch event, escalation
        with a non-empty reason, and exactly the lying checkpoint pays.
        """
        kernel = NotebookKernel()
        session = KishuSession.init(
            kernel, stub_registry=_lying_registry(tmp_path)
        )
        for cell in WRONG_STUB_CELLS:
            kernel.run_cell(cell)

        stats = session.analysis_stats
        assert stats.stub_mismatches == 1
        assert stats.escalations == 1

        mismatches = session.observer.events.of_type(EventType.STUB_MISMATCH)
        assert len(mismatches) == 1
        assert mismatches[0].fields["names"] == ["s"]
        assert mismatches[0].fields["execution_count"] == 3

        escalations = session.observer.events.of_type(
            EventType.CROSSVAL_ESCALATION
        )
        assert len(escalations) == 1
        assert escalations[0].fields["reasons"] == ["stub-mismatch: s"]
        # The per-kind counter records the trigger class.
        counter = session.observer.metrics.counter(
            "analysis.escalated.stub-mismatch"
        )
        assert counter.value == 1

    def test_mismatch_checkpoint_still_correct(self, tmp_path):
        """The refuted commit must remain checkout-correct: the mutated
        receiver was in the access record, so the delta captured it."""
        kernel = NotebookKernel()
        session = KishuSession.init(
            kernel, stub_registry=_lying_registry(tmp_path)
        )
        for cell in WRONG_STUB_CELLS[:2]:
            kernel.run_cell(cell)
        before = session.head_id
        values_before = list(kernel.get("s").series.values)
        kernel.run_cell("s.standardize()")
        assert list(kernel.get("s").series.values) != values_before
        session.checkout(before)
        assert list(kernel.get("s").series.values) == values_before

    def test_truthful_stubs_never_refuted(self):
        """The shipped stubs are truthful: a mutator-heavy libsim
        workload produces expansions but zero mismatches/escalations."""
        kernel = NotebookKernel()
        session = KishuSession.init(kernel)
        for cell in [
            "from repro.libsim.data_analysis import SimDataFrame, SimSeries",
            "df = SimDataFrame(n_rows=4, n_cols=2, seed=1)",
            "s = SimSeries(n=8, seed=2)",
            "m = df.mean_of('c0')",
            "s.standardize()",
            "df2 = df.drop_column('c1')",
        ]:
            kernel.run_cell(cell)
        stats = session.analysis_stats
        assert stats.stub_expansions > 0
        assert stats.stub_mismatches == 0
        assert stats.escalations == 0
        assert not session.observer.events.of_type(EventType.STUB_MISMATCH)

    def test_stubs_disabled_is_inert(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel, use_stubs=False)
        for cell in [
            "from repro.libsim.data_analysis import SimSeries",
            "s = SimSeries(n=8, seed=2)",
            "s.standardize()",
        ]:
            kernel.run_cell(cell)
        assert session.analysis_stats.stub_expansions == 0
        assert session.analysis_stats.stub_mismatches == 0


class TestSingleEscalationPerCell:
    """Satellite 1: one escalation per cell however many triggers fire,
    with the per-kind split in ``analysis.escalated.*`` counters."""

    def test_multi_trigger_cell_counts_once(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel)
        # A star import is both an escape hatch and an opaque write in
        # one cell — two trigger classes, one escalation.
        kernel.run_cell("from math import *")
        stats = session.analysis_stats
        assert stats.escalations == 1
        metrics = session.observer.metrics
        assert metrics.counter("analysis.escalated.escape").value == 1
        assert metrics.counter("analysis.escalated.opaque-writes").value == 1
        events = session.observer.events.of_type(EventType.CROSSVAL_ESCALATION)
        assert len(events) == 1
        assert events[0].fields["reasons"]

    def test_bare_opaque_writes_has_reason(self):
        """Regression: opaque writes without any escape used to escalate
        with an empty reason tuple, tripping the fuzz telemetry oracle."""
        validator = CrossValidator()
        effects = CellEffects()
        effects.opaque_writes = True
        outcome = validator.validate(effects, AccessRecord())
        assert outcome.escalate
        assert outcome.reasons
        assert outcome.kinds == ("opaque-writes",)

    def test_validate_reports_kind_per_trigger_class(self):
        validator = CrossValidator()
        effects = CellEffects()
        effects.opaque_writes = True
        effects.reads = {"ghost"}
        outcome = validator.validate(effects, AccessRecord())
        assert outcome.escalate
        assert set(outcome.kinds) == {"opaque-writes", "under-report"}
        assert validator.stats.escalations == 1


class TestCheckoutResync:
    def test_stub_env_resyncs_after_checkout(self):
        """After a checkout the stub type environment is rebuilt from
        the restored chain, so later cells still resolve stub calls."""
        kernel = NotebookKernel()
        session = KishuSession.init(kernel)
        kernel.run_cell(
            "from repro.libsim.data_analysis import SimDataFrame"
        )
        kernel.run_cell("df = SimDataFrame(n_rows=4, n_cols=2, seed=1)")
        target = session.head_id
        kernel.run_cell("x = 1")
        session.checkout(target)
        before = session.analysis_stats.stub_expansions
        kernel.run_cell("m = df.mean_of('c0')")
        assert session.analysis_stats.stub_expansions > before
        assert session.analysis_stats.stub_mismatches == 0
