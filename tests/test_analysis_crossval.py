"""Cross-validation of Lemma 1: escalation, the fallback decision, and
the end-to-end escape-hatch workload (DESIGN.md §8)."""

from __future__ import annotations

from repro.analysis import CrossValidator, analyze_cell
from repro.core.covariable import CoVariablePool
from repro.core.delta import DeltaDetector
from repro.core.session import KishuSession
from repro.core.vargraph import VarGraphBuilder
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord
from repro.telemetry import AnalysisStats


def record_of(gets=(), sets=(), deletes=()):
    record = AccessRecord()
    record.gets |= set(gets)
    record.sets |= set(sets)
    record.deletes |= set(deletes)
    return record


class TestCrossValidator:
    def test_clean_cell_confirmed(self):
        validator = CrossValidator()
        effects = analyze_cell("y = x + 1")
        outcome = validator.validate(effects, record_of(gets={"x"}, sets={"y"}))
        assert outcome.confirmed
        assert not outcome.escalate
        assert validator.stats.predictions_confirmed == 1
        assert validator.stats.escalations == 0

    def test_escape_escalates_even_with_complete_record(self):
        validator = CrossValidator()
        effects = analyze_cell("g = globals()")
        outcome = validator.validate(effects, record_of(sets={"g"}))
        assert outcome.escalate
        assert any(reason.startswith("escape:") for reason in outcome.reasons)
        assert validator.stats.escapes_found >= 1
        assert validator.stats.escalations == 1

    def test_under_reported_record_escalates(self):
        validator = CrossValidator()
        effects = analyze_cell("y = x + 1")
        # The runtime record is missing the definite read of ``x``.
        outcome = validator.validate(effects, record_of(sets={"y"}))
        assert outcome.escalate
        assert "x" in outcome.missing
        assert validator.stats.predictions_violated == 1

    def test_conditional_access_not_required(self):
        validator = CrossValidator()
        effects = analyze_cell("if flag:\n    y = x")
        # The branch was not taken: only ``flag`` was read at runtime.
        outcome = validator.validate(effects, record_of(gets={"flag"}))
        assert outcome.confirmed

    def test_syntax_error_cell_never_escalates(self):
        validator = CrossValidator()
        effects = analyze_cell("def broken(:")
        outcome = validator.validate(effects, AccessRecord())
        assert not outcome.escalate
        assert validator.stats.escalations == 0

    def test_star_import_opaque_writes_escalate(self):
        validator = CrossValidator()
        effects = analyze_cell("from math import *")
        outcome = validator.validate(effects, record_of(sets={"pi", "sin"}))
        assert outcome.escalate

    def test_shared_stats_instance(self):
        stats = AnalysisStats()
        validator = CrossValidator(stats)
        validator.validate(analyze_cell("x = 1"), record_of(sets={"x"}))
        assert stats.cells_analyzed == 1
        assert validator.stats is stats


class TestDetectorFallback:
    """Satellite: the three check-all triggers funnel through one method."""

    def make_detector(self, **kwargs):
        return DeltaDetector(CoVariablePool(VarGraphBuilder()), **kwargs)

    def test_needs_full_check_triggers(self):
        detector = self.make_detector()
        assert detector.needs_full_check(None)
        assert detector.needs_full_check(AccessRecord(), escalate=True)
        assert not detector.needs_full_check(AccessRecord())
        ablated = self.make_detector(check_all=True)
        assert ablated.needs_full_check(AccessRecord())

    def test_lost_record_checks_all_pool_members(self):
        """Regression: record=None must re-check every existing co-variable,
        not just names in the (empty) record."""
        detector = self.make_detector()
        namespace = {"a": [1], "b": [2], "c": [3]}
        detector.detect(record_of(sets=set(namespace)), dict(namespace))
        namespace["a"].append(99)  # mutate behind the detector's back
        delta = detector.detect(None, dict(namespace))
        assert delta.checked_names == {"a", "b", "c"}
        assert frozenset({"a"}) in delta.modified

    def test_escalation_checks_all_without_flipping_check_all(self):
        detector = self.make_detector()
        namespace = {"a": [1], "b": [2]}
        detector.detect(record_of(sets=set(namespace)), dict(namespace))
        namespace["b"].append(7)  # unrecorded mutation
        empty = AccessRecord()
        delta = detector.detect(empty, dict(namespace), escalate=True)
        assert delta.checked_names == {"a", "b"}
        assert frozenset({"b"}) in delta.modified
        assert not detector.check_all  # the switch itself is untouched

    def test_unescalated_empty_record_prunes_everything(self):
        detector = self.make_detector()
        namespace = {"a": [1], "b": [2]}
        detector.detect(record_of(sets=set(namespace)), dict(namespace))
        delta = detector.detect(AccessRecord(), dict(namespace))
        assert delta.checked_names == set()
        assert delta.is_empty


class TestSessionEscalation:
    """Acceptance criterion: a namespace-escape mutation cell is escalated
    (checkout after it restores the mutated state), clean cells keep the
    pruned detection path, and the telemetry counts exactly one escalation.
    """

    # ``globals().values()`` iterates the namespace without a single
    # __getitem__ call, so the mutation of ``xs`` leaves no trace in the
    # access record — the canonical Lemma 1 blind spot.
    BLIND_MUTATION = (
        "for v in list(globals().values()):\n"
        "    if isinstance(v, list) and v and v[0] == 1:\n"
        "        v.append(99)\n"
    )

    def run_workload(self, **session_kwargs):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel, **session_kwargs)
        kernel.run_cell("xs = [1, 2, 3]")
        kernel.run_cell("note = 'clean'")
        kernel.run_cell(self.BLIND_MUTATION)
        after_mutation = session.head_id
        kernel.run_cell("final = len(xs)")
        return kernel, session, after_mutation

    def test_escape_cell_escalates_and_checkpoints_the_mutation(self):
        kernel, session, after_mutation = self.run_workload()

        flags = [metric.escalated for metric in session.metrics]
        assert flags == [False, False, True, False]

        stats = session.analysis_stats
        assert stats.escalations == 1
        assert stats.escapes_found >= 1
        assert stats.predictions_violated == 0  # no false escalations
        assert stats.cells_analyzed == 4

        # Move away, then travel back to just after the mutation: the
        # escalated checkpoint must contain the silently mutated list.
        kernel.run_cell("xs = 'overwritten'")
        session.checkout(after_mutation)
        assert kernel.get("xs") == [1, 2, 3, 99]

    def test_without_cross_validation_the_mutation_is_lost(self):
        """Contrast: with the validator off, the blind mutation corrupts
        time travel — the motivation for the whole subsystem."""
        kernel, session, after_mutation = self.run_workload(cross_validate=False)
        assert all(not metric.escalated for metric in session.metrics)
        kernel.run_cell("xs = 'overwritten'")
        session.checkout(after_mutation)
        assert kernel.get("xs") == [1, 2, 3]  # stale: the append is gone

    def test_clean_cells_stay_pruned(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel)
        kernel.run_cell("a = [1]")
        kernel.run_cell("b = [2]")
        kernel.run_cell("c = a[0] + b[0]")
        assert session.analysis_stats.escalations == 0
        assert session.analysis_stats.predictions_confirmed == 3
        # The last cell read a and b and wrote c; the pruned detector
        # never re-checked more than those names.
        assert session.metrics[-1].walk.graphs_built <= 3

    def test_exec_cell_escalates(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel)
        kernel.run_cell("x = 10")
        kernel.run_cell("exec('x = x + 1')")
        assert session.metrics[-1].escalated
        assert kernel.get("x") == 11

    def test_read_only_fast_path_skips_clean_cells_only(self):
        from repro.analysis import ReadOnlyCellAnalyzer

        kernel = NotebookKernel()
        session = KishuSession.init(kernel, rule_analyzer=ReadOnlyCellAnalyzer())
        kernel.run_cell("x = 1")
        kernel.run_cell("print(x)")
        assert session.analysis_stats.read_only_skips == 1
        # An escalated cell must never take the read-only shortcut, even
        # if the analyzer would consider its surface syntax read-only.
        kernel.run_cell("print(len(globals()))")
        assert session.metrics[-1].escalated
        assert session.analysis_stats.read_only_skips == 1

    def test_session_installs_and_removes_kernel_analyzer(self):
        kernel = NotebookKernel()
        assert kernel.cell_analyzer is None
        session = KishuSession.init(kernel)
        assert kernel.cell_analyzer is not None
        session.detach()
        assert kernel.cell_analyzer is None

    def test_write_only_walrus_comprehension_is_rescued(self):
        """A walrus target that is only written compiles to STORE_GLOBAL:
        the patched namespace records nothing for it, so without the
        HIDDEN_GLOBAL_STORE escape the checkpoint would silently miss the
        rebinding."""
        kernel = NotebookKernel()
        session = KishuSession.init(kernel)
        kernel.run_cell("m = 0")
        kernel.run_cell("acc = [(m := i * i) for i in range(3)]")
        after = session.head_id
        assert session.metrics[-1].escalated
        kernel.run_cell("m = -1")
        session.checkout(after)
        assert kernel.get("m") == 4  # the escalated checkpoint caught it

    def test_global_store_in_function_is_rescued(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel)
        kernel.run_cell("counter = 0")
        kernel.run_cell("def bump():\n    global counter\n    counter = 10\nbump()")
        after = session.head_id
        # The summary bounds the hidden store, so the cell is *not*
        # escalated to check-all — the write is instead folded into the
        # runtime record (summary-informed record completion) and the
        # checkpoint still catches the rebinding.
        assert not session.metrics[-1].escalated
        kernel.run_cell("counter = -1")
        session.checkout(after)
        assert kernel.get("counter") == 10

    def test_error_cell_escalates_conservatively(self):
        """A cell that raises mid-way may have skipped definite accesses;
        the validator treats the under-report as an escalation, which is
        safe (just slower), never wrong."""
        kernel = NotebookKernel()
        session = KishuSession.init(kernel)
        kernel.run_cell("ok = 1")
        kernel.run_cell("boom = undefined_name + ok", raise_on_error=False)
        # State is still consistent regardless of the escalation verdict.
        assert kernel.get("ok") == 1
        assert session.analysis_stats.cells_analyzed == 2
