"""Randomized differential oracle for end-to-end checkout correctness.

Generates random notebook programs from a vocabulary of state operations
(creations, in-place mutations, aliasing merges, re-assignment splits,
deletions), records a ground-truth bytestring snapshot of the full state
after every cell, then performs random time-travel (including branching
off mid-history and continuing with more random cells) and asserts the
restored state's canonical pickle equals the recorded ground truth —
value equality *and* shared-reference structure, the paper's §5.3 "same
bytestring representation" guarantee.
"""

from __future__ import annotations

import pickle
import random
from typing import Dict, List

import pytest

from repro.core.session import KishuSession
from repro.kernel.kernel import NotebookKernel

#: Operation templates; {a} and {b} are replaced with variable names.
_CREATORS = [
    "{a} = [{n}, {n} + 1, {n} + 2]",
    "{a} = {{'k{n}': {n}, 'nested': [{n}]}}",
    "{a} = list(range({n} % 7 + 1))",
    "{a} = {n}",
    "{a} = 'text-{n}' * ({n} % 3 + 1)",
]
_MUTATORS = [
    "{a}.append({n})",
    "{a}[0] = {n}",
    "{a}.extend([{n}, {n}])",
    "{a}.reverse()",
    "{a}.sort(key=repr)",  # key=repr: mixed element types stay sortable
]
_DICT_MUTATORS = [
    "{a}['k{n}'] = {n}",
    "{a}['nested'].append({n})",
]


def generate_cell(rng: random.Random, live: List[str], counter: int) -> str:
    """One random cell over the live variable names."""
    roll = rng.random()
    fresh = f"v{counter}"
    if not live or roll < 0.30:
        template = rng.choice(_CREATORS)
        return template.format(a=fresh, n=counter)
    target = rng.choice(live)
    if roll < 0.55:
        # In-place mutation; guard with type dispatch inside the cell so
        # any live variable is a valid target.
        mutation = rng.choice(_MUTATORS).format(a=target, n=counter)
        dict_mutation = rng.choice(_DICT_MUTATORS).format(a=target, n=counter)
        return (
            f"if isinstance({target}, list):\n"
            f"    {mutation}\n"
            f"elif isinstance({target}, dict):\n"
            f"    {dict_mutation}\n"
            f"else:\n"
            f"    {target} = {counter}"
        )
    if roll < 0.70:
        # Alias: merge two co-variables (or wrap a primitive).
        other = rng.choice(live)
        return (
            f"if isinstance({target}, (list, dict)):\n"
            f"    {fresh} = [{target}, {other}]\n"
            f"else:\n"
            f"    {fresh} = [{counter}]"
        )
    if roll < 0.85:
        # Re-assignment: splits the target out of its co-variable.
        return f"{target} = [{counter}]"
    if len(live) > 2:
        return f"del {rng.choice(live)}"
    return f"{fresh} = {counter}"


def canonical_state(kernel: NotebookKernel) -> bytes:
    """Order-normalized encoding of the full user state.

    Captures every value (including dict insertion order and element
    types) and the *sharing structure of mutable objects*, with shared
    mutables labelled by first visit. Incidental identity of immutables
    (CPython string/int interning) is deliberately ignored: restoration
    cannot and need not preserve it.
    """
    items = kernel.user_variables()
    labels: Dict[int, int] = {}

    def walk(obj):
        if isinstance(obj, (list, dict, set)):
            if id(obj) in labels:
                return ("ref", labels[id(obj)])
            labels[id(obj)] = len(labels)
            label = labels[id(obj)]
            if isinstance(obj, list):
                return ("list", label, tuple(walk(v) for v in obj))
            if isinstance(obj, set):
                return ("set", label, tuple(sorted(map(repr, obj))))
            return (
                "dict",
                label,
                # repr() the keys: raw key strings would leak CPython
                # interning identity into the pickle memo and reintroduce
                # the immutable-sharing false positive.
                tuple((repr(k), walk(v)) for k, v in obj.items()),
            )
        return ("val", type(obj).__qualname__, repr(obj))

    canonical = tuple((name, walk(items[name])) for name in sorted(items))
    return pickle.dumps(canonical, protocol=5)


def run_random_session(seed: int, n_cells: int = 25, n_checkouts: int = 8):
    rng = random.Random(seed)
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)

    ground_truth: Dict[str, bytes] = {}
    counter = 0
    for _ in range(n_cells):
        live = sorted(kernel.user_variables())
        cell = generate_cell(rng, live, counter)
        counter += 1
        kernel.run_cell(cell)
        ground_truth[session.head_id] = canonical_state(kernel)

    # Random time travel, with new random work after some checkouts
    # (exercising branch creation mid-history).
    for round_index in range(n_checkouts):
        target = rng.choice(sorted(ground_truth))
        session.checkout(target)
        assert canonical_state(kernel) == ground_truth[target], (
            f"seed={seed}: state mismatch after checkout to {target}"
        )
        if rng.random() < 0.5:
            live = sorted(kernel.user_variables())
            cell = generate_cell(rng, live, counter)
            counter += 1
            kernel.run_cell(cell)
            ground_truth[session.head_id] = canonical_state(kernel)
    return session


@pytest.mark.parametrize("seed", range(12))
def test_random_program_checkout_oracle(seed):
    run_random_session(seed)


def test_long_random_session_with_deep_history():
    session = run_random_session(seed=999, n_cells=60, n_checkouts=20)
    # The graph grew branches from mid-history checkouts.
    branching_nodes = [
        node
        for node in session.graph.all_nodes()
        if len(session.graph.children_of(node.node_id)) > 1
    ]
    assert branching_nodes, "expected at least one branch point"
