"""Tests for the 146 simulated library classes and their personalities."""

from __future__ import annotations

import pickle

import pytest

from repro.core.serialization import FallbackPickler, SerializerChain
from repro.core.vargraph import VarGraphBuilder
from repro.errors import SerializationError
from repro.libsim.registry import (
    CATEGORY_TITLES,
    all_specs,
    expected_counts,
    spec_by_name,
    specs_by_category,
    specs_by_personality,
)


class TestRegistryShape:
    def test_paper_headline_counts(self):
        counts = expected_counts()
        assert counts == {
            "total": 146,
            "detection_success": 120,
            "detection_false_positive": 14,
            "detection_pickle_error": 12,
            "criu_failures": 6,
            "dumpsession_failures": 7,
        }

    def test_all_eight_categories_populated(self):
        grouped = specs_by_category()
        assert set(grouped) == set(CATEGORY_TITLES)
        assert all(len(specs) >= 14 for specs in grouped.values())

    def test_class_names_unique(self):
        names = [spec.name for spec in all_specs()]
        assert len(names) == len(set(names))

    def test_every_class_default_constructible(self):
        for spec in all_specs():
            instance = spec.make()
            assert type(instance) is spec.cls

    def test_spec_by_name(self):
        spec = spec_by_name("SimGaussianMixture")
        assert spec.category == "machine-learning"
        with pytest.raises(KeyError):
            spec_by_name("SimNothing")

    def test_criu_failures_are_the_offprocess_classes(self):
        offenders = {s.name for s in all_specs() if not s.criu_compatible}
        assert offenders == {
            "SimTorchTensorGPU",
            "SimTFTensorDevice",
            "SimSparkSQLFrame",
            "SimRayDataset",
            "SimPipeline",
            "SimBertTokenizer",
        }

    def test_dumpsession_failures_include_paper_examples(self):
        offenders = {s.name for s in all_specs() if not s.dumpsession_compatible}
        # Table 4's named examples: pl.LazyFrame and bokeh.figure analogues.
        assert "SimLazyFrame" in offenders
        assert "SimBokehFigure" in offenders
        assert len(offenders) == 7


class TestPersonalityBehaviour:
    @pytest.mark.parametrize(
        "spec", specs_by_personality("plain"), ids=lambda s: s.name
    )
    def test_plain_classes_roundtrip_equal(self, spec):
        obj = spec.make()
        restored = pickle.loads(pickle.dumps(obj, protocol=5))
        assert restored == obj

    @pytest.mark.parametrize(
        "spec", specs_by_personality("custom-reduce"), ids=lambda s: s.name
    )
    def test_custom_reduce_roundtrips(self, spec):
        obj = spec.make()
        restored = pickle.loads(pickle.dumps(obj, protocol=5))
        assert type(restored) is type(obj)

    @pytest.mark.parametrize(
        "spec", specs_by_personality("unserializable"), ids=lambda s: s.name
    )
    def test_unserializable_raise_on_pickle(self, spec):
        with pytest.raises(Exception):
            pickle.dumps(spec.make(), protocol=5)

    @pytest.mark.parametrize(
        "spec", specs_by_personality("load-fails"), ids=lambda s: s.name
    )
    def test_load_failures_pickle_but_refuse_to_load(self, spec):
        blob = pickle.dumps(spec.make(), protocol=5)
        with pytest.raises(Exception):
            pickle.loads(blob)

    @pytest.mark.parametrize(
        "spec", specs_by_personality("silent-error"), ids=lambda s: s.name
    )
    def test_silent_errors_drop_state_without_raising(self, spec):
        obj = spec.make()
        restored = pickle.loads(pickle.dumps(obj, protocol=5))
        assert restored != obj  # state silently lost

    @pytest.mark.parametrize(
        "spec", specs_by_personality("requires-fallback"), ids=lambda s: s.name
    )
    def test_requires_fallback_chain_behaviour(self, spec):
        obj = spec.make()
        chain = SerializerChain()
        blob, pickler_name = chain.serialize({"x"}, {"x": obj})
        assert pickler_name == "fallback"
        restored = chain.deserialize(blob, pickler_name)
        assert type(restored["x"]) is type(obj)

    @pytest.mark.parametrize(
        "spec", specs_by_personality("offprocess"), ids=lambda s: s.name
    )
    def test_offprocess_roundtrip_through_reduction(self, spec):
        from repro.libsim.devices import contains_offprocess

        obj = spec.make()
        assert contains_offprocess(obj)
        restored = pickle.loads(pickle.dumps(obj, protocol=5))
        assert type(restored) is type(obj)

    @pytest.mark.parametrize(
        "spec", specs_by_personality("dynamic-attrs"), ids=lambda s: s.name
    )
    def test_dynamic_attrs_cause_false_positive_but_pickle_fine(self, spec):
        builder = VarGraphBuilder()
        obj = spec.make()
        first = builder.build("x", obj)
        second = builder.build("x", obj)
        assert first.differs_from(second)  # FP on every traversal
        restored = pickle.loads(pickle.dumps(obj, protocol=5))
        assert type(restored) is type(obj)


class TestDetectionMatchesTable5:
    def test_all_classes_detect_real_updates(self):
        # Zero false negatives: every class's attribute update is seen.
        builder = VarGraphBuilder()
        for spec in all_specs():
            obj = spec.make()
            before = builder.build("x", obj)
            obj.probe_attr = "A"
            after = builder.build("x", obj)
            assert before.differs_from(after), spec.name

    def test_success_classes_have_no_noop_flag(self):
        builder = VarGraphBuilder()
        for spec in all_specs():
            if spec.expected_detection != "success":
                continue
            obj = spec.make()
            first = builder.build("x", obj)
            second = builder.build("x", obj)
            assert not first.differs_from(second), spec.name

    def test_flagged_classes_report_update_on_access(self):
        builder = VarGraphBuilder()
        for spec in all_specs():
            if spec.expected_detection == "success":
                continue
            obj = spec.make()
            first = builder.build("x", obj)
            second = builder.build("x", obj)
            assert first.differs_from(second), spec.name


class TestBehaviouralSamples:
    """Spot-checks that simulated classes do real work, not stubs."""

    def test_gmm_fits(self):
        import numpy as np

        from repro.libsim.machine_learning import SimGaussianMixture

        data = np.concatenate([np.zeros(50), np.ones(50) * 10])
        model = SimGaussianMixture(k=2, seed=0).fit(data)
        means = model.result()["means"]
        assert means[0] < 2 and means[1] > 8

    def test_linear_regression_recovers_coefficients(self):
        import numpy as np

        from repro.libsim.machine_learning import SimLinearRegression

        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = 3 * X[:, 0] + 2
        model = SimLinearRegression().fit(X, y)
        assert abs(model.coef[0] - 3) < 1e-6
        assert abs(model.intercept - 2) < 1e-6

    def test_tfidf_matrix_shape(self):
        from repro.libsim.nlp import SimTfIdfVectorizer

        matrix = SimTfIdfVectorizer().fit_transform(["a b", "b c"])
        assert matrix.shape[0] == 2

    def test_gpu_tensor_data_round_trips_via_device(self):
        import numpy as np

        from repro.libsim.deep_learning import SimTorchTensorGPU

        tensor = SimTorchTensorGPU(shape=(3, 3), seed=1)
        tensor.scale_(2.0)
        cpu = tensor.cpu()
        assert cpu.data.shape == (3, 3)

    def test_ray_dataset_map_blocks(self):
        from repro.libsim.distributed import SimRayDataset

        ds = SimRayDataset(n_blocks=2, block_rows=10, seed=0)
        before = ds.take_all().sum()
        ds.map_blocks(lambda b: b * 2)
        assert abs(ds.take_all().sum() - 2 * before) < 1e-9

    def test_image_pipeline(self):
        import numpy as np

        from repro.libsim.computer_vision import SimAugmentationPipeline

        image = np.arange(16.0).reshape(4, 4)
        out = SimAugmentationPipeline(steps=("hflip",)).apply(image)
        assert out[0, 0] == image[0, 3]

    def test_bert_tokenizer_encodes(self):
        from repro.libsim.pipelining import SimBertTokenizer

        tokenizer = SimBertTokenizer()
        ids = tokenizer.encode("the cat sat")
        assert len(ids) == 3
