"""CLI error paths: wrong inputs must fail fast, loudly, and on stderr.

Every case asserts three things: nonzero (specifically 2, the usage-error
convention) exit status, an actionable message containing the golden
snippet from ``tests/golden/cli_errors.json``, and nothing on stdout —
error text must never pollute machine-readable output.

``SQLiteCheckpointStore`` silently *creates* missing databases, so the
read-only subcommands guard with an existence + schema probe; the
missing/corrupt/wrong-schema cases pin that guard.
"""

import io
import json
import pathlib
import sqlite3

import pytest

from repro.cli import fuzz_main, lint_main, plan_main, stats_main
from repro.core.session import KishuSession
from repro.core.storage import SQLiteCheckpointStore
from repro.kernel.kernel import NotebookKernel

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden" / "cli_errors.json").read_text()
)


def run(main, argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


def assert_usage_error(case, code, stdout, stderr):
    assert code == 2, f"{case}: expected exit 2, got {code}"
    assert GOLDEN[case] in stderr, f"{case}: stderr was {stderr!r}"
    assert stdout == "", f"{case}: stdout must stay clean, got {stdout!r}"


@pytest.fixture()
def session_store(tmp_path):
    """A real store with one committed cell (for bad-ref probing)."""
    path = tmp_path / "session.db"
    store = SQLiteCheckpointStore(str(path))
    kernel = NotebookKernel()
    KishuSession.init(kernel, store=store)
    kernel.run_cell("a = [1, 2]")
    store.close()
    return str(path)


@pytest.fixture()
def corrupt_store(tmp_path):
    path = tmp_path / "corrupt.db"
    path.write_bytes(b"this is not a sqlite database at all")
    return str(path)


@pytest.fixture()
def wrong_schema_store(tmp_path):
    path = tmp_path / "foreign.db"
    conn = sqlite3.connect(str(path))
    conn.execute("CREATE TABLE nodes (foo TEXT)")
    conn.commit()
    conn.close()
    return str(path)


class TestPlanErrors:
    def test_no_input(self):
        assert_usage_error("plan_no_input", *run(plan_main, []))

    def test_conflicting_inputs(self, tmp_path, session_store):
        script = tmp_path / "nb.py"
        script.write_text("a = 1\n")
        code, stdout, stderr = run(
            plan_main, [str(script), "--store", session_store]
        )
        assert_usage_error("plan_both_inputs", code, stdout, stderr)

    def test_missing_store(self, tmp_path):
        code, stdout, stderr = run(
            plan_main, ["--store", str(tmp_path / "nope.db")]
        )
        assert_usage_error("plan_missing_store", code, stdout, stderr)
        # The guard must not create the file it failed to find.
        assert not (tmp_path / "nope.db").exists()

    def test_missing_file(self, tmp_path):
        code, stdout, stderr = run(plan_main, [str(tmp_path / "nope.py")])
        assert_usage_error("plan_missing_file", code, stdout, stderr)

    def test_bad_ref_in_valid_store(self, session_store):
        code, stdout, stderr = run(
            plan_main, ["--store", session_store, "--at", "nosuch-ref"]
        )
        assert_usage_error("plan_bad_ref", code, stdout, stderr)


class TestStatsErrors:
    def test_missing_store(self, tmp_path):
        code, stdout, stderr = run(
            stats_main, ["--store", str(tmp_path / "nope.db")]
        )
        assert_usage_error("stats_missing_store", code, stdout, stderr)
        assert not (tmp_path / "nope.db").exists()

    def test_corrupt_store(self, corrupt_store):
        code, stdout, stderr = run(stats_main, ["--store", corrupt_store])
        assert_usage_error("stats_corrupt_store", code, stdout, stderr)

    def test_wrong_schema_store(self, wrong_schema_store):
        code, stdout, stderr = run(stats_main, ["--store", wrong_schema_store])
        assert_usage_error("stats_wrong_schema", code, stdout, stderr)

    def test_valid_store_still_works(self, session_store):
        code, stdout, stderr = run(stats_main, ["--store", session_store])
        assert code == 0
        assert stdout
        assert stderr == ""


class TestLintErrors:
    def test_missing_file(self, tmp_path):
        code, stdout, stderr = run(lint_main, [str(tmp_path / "nope.py")])
        assert_usage_error("lint_missing_file", code, stdout, stderr)


class TestFuzzErrors:
    def test_soak_conflicts_with_minimize(self):
        code, stdout, stderr = run(fuzz_main, ["--soak", "2", "--minimize"])
        assert_usage_error("fuzz_soak_minimize_conflict", code, stdout, stderr)

    def test_iterations_must_be_positive(self):
        code, stdout, stderr = run(fuzz_main, ["--iterations", "0"])
        assert_usage_error("fuzz_bad_iterations", code, stdout, stderr)

    def test_unknown_profile_is_an_argparse_error(self):
        with pytest.raises(SystemExit) as excinfo:
            fuzz_main(["--profile", "nonesuch"], stderr=io.StringIO())
        assert excinfo.value.code == 2
