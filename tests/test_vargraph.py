"""Tests for VarGraph construction, comparison, and intersection (§4.2)."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.objectwalk import TraversalPolicy, Visit
from repro.core.vargraph import VarGraph, VarGraphBuilder, graphs_equal


@pytest.fixture
def builder():
    return VarGraphBuilder()


class TestConstruction:
    def test_primitive_is_single_node(self, builder):
        graph = builder.build("x", 42)
        assert len(graph) == 1
        assert graph.nodes[0].kind == "primitive"
        assert graph.nodes[0].value == 42
        assert graph.id_set == frozenset()

    def test_list_children(self, builder):
        graph = builder.build("ls", [1, "a", 2.5])
        assert graph.nodes[0].kind == "composite"
        assert len(graph.nodes[0].children) == 3

    def test_shared_object_visited_once(self, builder):
        shared = [1, 2]
        graph = builder.build("x", [shared, shared])
        composite_nodes = [n for n in graph.nodes if n.kind == "composite"]
        # outer list + inner list, not inner twice
        assert len(composite_nodes) == 2
        outer = graph.nodes[0]
        assert outer.children[0] == outer.children[1]

    def test_cycle_terminates(self, builder):
        loop = []
        loop.append(loop)
        graph = builder.build("loop", loop)
        assert len(graph) == 1
        assert graph.nodes[0].children == (0,)

    def test_instance_dict_traversed(self, builder):
        class Thing:
            def __init__(self):
                self.payload = [1, 2]

        graph = builder.build("t", Thing())
        kinds = [node.kind for node in graph.nodes]
        assert "composite" in kinds
        values = [node.value for node in graph.nodes if node.kind == "primitive"]
        assert set(values) >= {1, 2, "payload"}

    def test_slots_traversed(self, builder):
        class Slotted:
            __slots__ = ("a", "b")

            def __init__(self):
                self.a = [1]
                self.b = "text"

        graph = builder.build("s", Slotted())
        primitive_values = {
            node.value for node in graph.nodes if node.kind == "primitive"
        }
        assert "text" in primitive_values

    def test_generator_is_opaque(self, builder):
        graph = builder.build("g", (i for i in range(3)))
        assert graph.opaque

    def test_ndarray_is_digest_leaf(self, builder):
        graph = builder.build("arr", np.arange(10))
        assert len(graph) == 1
        assert graph.nodes[0].kind == "array"
        assert graph.nodes[0].value is not None

    def test_truncation_marks_opaque(self):
        builder = VarGraphBuilder(max_nodes=5)
        graph = builder.build("big", list(range(100)))
        assert graph.truncated
        assert graph.opaque

    def test_module_is_leaf(self, builder):
        graph = builder.build("np", np)
        assert len(graph) == 1
        assert graph.nodes[0].kind == "primitive"

    def test_build_many(self, builder):
        graphs = builder.build_many({"a": 1, "b": [2]})
        assert set(graphs) == {"a", "b"}


class TestComparison:
    def test_identical_objects_equal(self, builder):
        data = {"k": [1, 2, 3]}
        first = builder.build("d", data)
        second = builder.build("d", data)
        assert graphs_equal(first, second)
        assert not first.differs_from(second)

    def test_inplace_mutation_detected(self, builder):
        data = [1, 2, 3]
        before = builder.build("ls", data)
        data.append(4)
        after = builder.build("ls", data)
        assert before.differs_from(after)

    def test_primitive_value_change_detected(self, builder):
        data = {"key": 1}
        before = builder.build("d", data)
        data["key"] = 2
        after = builder.build("d", data)
        assert before.differs_from(after)

    def test_reassignment_to_new_object_detected(self, builder):
        # Keep both lists alive so the second cannot recycle the first's
        # address (in a live namespace the old binding survives the walk).
        old, new = [1, 2], [1, 2]  # equal value, different address
        before = builder.build("x", old)
        after = builder.build("x", new)
        assert before.differs_from(after)

    def test_type_change_same_value_detected(self, builder):
        before = builder.build("x", 1)
        after = builder.build("x", True)  # 1 == True but types differ
        assert before.nodes[0].type_name != after.nodes[0].type_name

    def test_array_content_change_detected(self, builder):
        arr = np.zeros(16)
        before = builder.build("arr", arr)
        arr[3] = 1.0
        after = builder.build("arr", arr)
        assert before.differs_from(after)

    def test_array_slice_update_detected(self, builder):
        # The paper's §4.3 remark: numpy memory-based updates still happen
        # through references, and the content digest catches them.
        arr = np.zeros((4, 4))
        before = builder.build("arr", arr)
        arr[0, 1] += 1
        after = builder.build("arr", arr)
        assert before.differs_from(after)

    def test_edge_rewire_detected(self, builder):
        inner_a, inner_b = [1], [2]
        data = {"slot": inner_a, "other": inner_b}
        before = builder.build("d", data)
        data["slot"] = inner_b  # edge change only: same nodes, new shape
        after = builder.build("d", data)
        assert before.differs_from(after)

    def test_opaque_always_differs(self, builder):
        gen = (i for i in range(3))
        first = builder.build("g", gen)
        second = builder.build("g", gen)
        assert first.differs_from(second)

    def test_set_iteration_order_does_not_false_positive(self, builder):
        data = {"c", "a", "b"}
        first = builder.build("s", data)
        second = builder.build("s", data)
        assert not first.differs_from(second)


class TestIntersection:
    def test_shared_mutable_intersects(self, builder):
        shared = [1, 2]
        left = builder.build("x", {"ref": shared})
        right = builder.build("y", [shared])
        assert left.shares_objects_with(right)

    def test_disjoint_objects_do_not_intersect(self, builder):
        xs, ys = [1, 2], [1, 2]  # both alive: genuinely distinct addresses
        left = builder.build("x", xs)
        right = builder.build("y", ys)
        assert not left.shares_objects_with(right)

    def test_shared_primitives_do_not_join(self, builder):
        # Interned small ints/strings are shared by CPython but immutable:
        # they must not merge co-variables.
        xs, ys = [1, "a"], [1, "a"]
        left = builder.build("x", xs)
        right = builder.build("y", ys)
        assert not left.shares_objects_with(right)


class TestCustomPolicy:
    def test_registered_handler_wins(self):
        class Custom:
            pass

        policy = TraversalPolicy()
        policy.register(Custom, lambda obj: Visit(kind="primitive", value="custom"))
        builder = VarGraphBuilder(policy=policy)
        graph = builder.build("c", Custom())
        assert graph.nodes[0].value == "custom"

    def test_handler_can_decline(self):
        policy = TraversalPolicy()
        policy.register(list, lambda obj: None)  # decline -> default rules
        builder = VarGraphBuilder(policy=policy)
        graph = builder.build("ls", [1])
        assert graph.nodes[0].kind == "composite"


class TestProcessStableFingerprints:
    """Graph fingerprints must agree across interpreter processes.

    Builtin ``hash()`` of strings/bytes is salted by ``PYTHONHASHSEED``,
    and ``repr()`` of default objects embeds memory addresses; either in
    the digest path makes equal states fingerprint differently across
    processes — which breaks cross-process checkpoint comparison.
    """

    SCRIPT = textwrap.dedent(
        """
        import numpy as np
        from repro.core.vargraph import VarGraphBuilder

        def helper(x):
            return x + 1

        class Thing:
            def __init__(self):
                self.tag = "t"
                self.box = frozenset({"a", ("b", 3)})

        state = {
            "text": "altogether elsewhere",
            "blob": b"\\x00\\x01",
            "nested": {"k": [1, 2.5, ("s", None)], "set": {"p", "q"}},
            "arr": np.arange(12, dtype=np.float64),
            "fn": helper,
            "obj": Thing(),
        }
        builder = VarGraphBuilder()
        for name in sorted(state):
            print(name, builder.build(name, state[name]).fingerprint)
        """
    )

    def _fingerprints(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(pathlib.Path(__file__).parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return result.stdout

    def test_fingerprints_identical_across_hash_seeds(self):
        first = self._fingerprints("0")
        second = self._fingerprints("424242")
        assert first == second
        assert len(first.splitlines()) == 6
