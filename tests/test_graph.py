"""Tests for the checkpoint graph: LCA, session states, diffs (§5.1–5.2)."""

from __future__ import annotations

import pytest

from repro.core.covariable import covar_key
from repro.core.graph import CheckpointGraph, PayloadInfo, ROOT_ID
from repro.errors import CheckpointNotFoundError


def info(names, stored=True, size=10):
    key = covar_key(names)
    return key, PayloadInfo(key=key, stored=stored, serializer="primary", size_bytes=size)


def add(graph, names_updated, deleted=(), deps=None, parent=None, source="cell"):
    updated = dict([info(names) for names in names_updated])
    return graph.add_node(
        cell_source=source,
        execution_count=len(graph),
        updated=updated,
        deleted={covar_key(names) for names in deleted},
        dependencies=deps or {},
        parent_id=parent,
    )


@pytest.fixture
def fig10_graph():
    """The paper's Fig 10 topology:

    t1 writes {df},{gmm}; t2 updates {gmm}; t3 creates {plot};
    checkout to t1; t4 updates {gmm}; t5 creates {plot} (second branch).
    """
    graph = CheckpointGraph()
    t1 = add(graph, [{"df"}, {"gmm"}], source="df = load(); gmm = GMM()")
    t2 = add(graph, [{"gmm"}], source="gmm.fit(k=3)")
    t3 = add(graph, [{"plot"}], source="plot = gmm.result()")
    graph.move_head(t1.node_id)
    t4 = add(graph, [{"gmm"}], source="gmm.fit(k=10)")
    t5 = add(graph, [{"plot"}], source="plot = gmm.result()")
    return graph, t1, t2, t3, t4, t5


class TestStructure:
    def test_root_exists(self):
        graph = CheckpointGraph()
        assert ROOT_ID in graph
        assert graph.head_id == ROOT_ID

    def test_add_node_moves_head(self):
        graph = CheckpointGraph()
        node = add(graph, [{"x"}])
        assert graph.head_id == node.node_id
        assert node.parent_id == ROOT_ID

    def test_branching_from_moved_head(self, fig10_graph):
        graph, t1, t2, t3, t4, t5 = fig10_graph
        assert t4.parent_id == t1.node_id
        assert set(graph.children_of(t1.node_id)) == {t2.node_id, t4.node_id}

    def test_unknown_node_raises(self):
        graph = CheckpointGraph()
        with pytest.raises(CheckpointNotFoundError):
            graph.get("t99")

    def test_path_to_root(self, fig10_graph):
        graph, t1, t2, t3, *_ = fig10_graph
        assert graph.path_to_root(t3.node_id) == [
            t3.node_id,
            t2.node_id,
            t1.node_id,
            ROOT_ID,
        ]

    def test_is_ancestor(self, fig10_graph):
        graph, t1, t2, t3, t4, t5 = fig10_graph
        assert graph.is_ancestor(t1.node_id, t5.node_id)
        assert not graph.is_ancestor(t2.node_id, t5.node_id)
        assert graph.is_ancestor(t3.node_id, t3.node_id)


class TestLCA:
    def test_cross_branch(self, fig10_graph):
        graph, t1, t2, t3, t4, t5 = fig10_graph
        assert graph.lowest_common_ancestor(t3.node_id, t5.node_id) == t1.node_id

    def test_ancestor_is_its_own_lca(self, fig10_graph):
        graph, t1, t2, t3, *_ = fig10_graph
        assert graph.lowest_common_ancestor(t1.node_id, t3.node_id) == t1.node_id

    def test_same_node(self, fig10_graph):
        graph, _, t2, *_ = fig10_graph
        assert graph.lowest_common_ancestor(t2.node_id, t2.node_id) == t2.node_id

    def test_symmetry(self, fig10_graph):
        graph, t1, t2, t3, t4, t5 = fig10_graph
        assert graph.lowest_common_ancestor(
            t3.node_id, t4.node_id
        ) == graph.lowest_common_ancestor(t4.node_id, t3.node_id)


class TestSessionStates:
    def test_state_accumulates_versions(self, fig10_graph):
        # The paper's worked example: state t3 = {plot}@t3, {gmm}@t2, {df}@t1.
        graph, t1, t2, t3, *_ = fig10_graph
        state = graph.get(t3.node_id).state
        assert state.version_of(covar_key({"plot"})) == t3.node_id
        assert state.version_of(covar_key({"gmm"})) == t2.node_id
        assert state.version_of(covar_key({"df"})) == t1.node_id

    def test_overwritten_version_absent(self, fig10_graph):
        graph, t1, t2, *_ = fig10_graph
        state = graph.get(t2.node_id).state
        # {gmm}@t1 was overwritten by CE t2 (Definition 5 condition 2).
        assert state.version_of(covar_key({"gmm"})) == t2.node_id

    def test_deletion_removes_from_state(self):
        graph = CheckpointGraph()
        add(graph, [{"x"}, {"y"}])
        add(graph, [], deleted=[{"x"}])
        assert graph.head.state.keys() == {covar_key({"y"})}

    def test_membership_change_supersedes_by_name(self):
        graph = CheckpointGraph()
        add(graph, [{"a"}, {"b"}])
        merged = add(graph, [{"a", "b"}], deleted=[{"a"}, {"b"}])
        state = graph.head.state
        assert state.keys() == {covar_key({"a", "b"})}
        assert state.version_of(covar_key({"a", "b"})) == merged.node_id


class TestStateDifference:
    def test_fig10_checkout_t5_to_t3(self, fig10_graph):
        # The paper's worked diff: {df} identical; {gmm} and {plot} diverged.
        graph, t1, t2, t3, t4, t5 = fig10_graph
        diff = graph.state_difference(t5.node_id, t3.node_id)
        assert covar_key({"df"}) in diff.identical
        loads = dict(diff.to_load)
        assert loads[covar_key({"gmm"})] == t2.node_id
        assert loads[covar_key({"plot"})] == t3.node_id
        assert diff.lca_id == t1.node_id
        assert diff.to_delete_names == frozenset()

    def test_undo_deletes_new_names(self):
        graph = CheckpointGraph()
        t1 = add(graph, [{"x"}])
        add(graph, [{"fresh"}])
        diff = graph.state_difference(graph.head_id, t1.node_id)
        assert diff.to_delete_names == frozenset({"fresh"})
        assert covar_key({"x"}) in diff.identical

    def test_noop_diff(self, fig10_graph):
        graph, *_, t5 = fig10_graph
        diff = graph.state_difference(t5.node_id, t5.node_id)
        assert not diff.to_load
        assert not diff.to_delete_names

    def test_same_version_on_both_branches_is_identical(self, fig10_graph):
        graph, t1, t2, t3, t4, t5 = fig10_graph
        diff = graph.state_difference(t5.node_id, t3.node_id)
        # df was written at t1 (the LCA) and never touched since.
        assert covar_key({"df"}) in diff.identical

    def test_rewritten_same_names_diverges(self):
        # x updated on both branches: same key, different versions.
        graph = CheckpointGraph()
        t1 = add(graph, [{"x"}])
        t2 = add(graph, [{"x"}])
        graph.move_head(t1.node_id)
        t3 = add(graph, [{"x"}])
        diff = graph.state_difference(t3.node_id, t2.node_id)
        assert dict(diff.to_load)[covar_key({"x"})] == t2.node_id


class TestMetadataSize:
    def test_grows_with_nodes(self):
        graph = CheckpointGraph()
        sizes = []
        for i in range(20):
            add(graph, [{f"v{i}"}])
            sizes.append(graph.metadata_size_estimate())
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]
