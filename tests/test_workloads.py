"""Tests for the evaluation workloads (Table 2 / Table 8 fidelity)."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import NotebookKernel
from repro.workloads import (
    NOTEBOOK_BUILDERS,
    build_all,
    build_notebook,
    covariable_census,
    covariable_size_fractions,
    long_session_cells,
    measure_access_patterns,
    shared_referencing_workload,
)

SCALE = 0.05  # keep unit tests fast; benches use larger scales

#: (name, cells, final, hidden states, out-of-order) from Tables 2 and 8.
TABLE_2_AND_8 = [
    ("Cluster", 24, True, 0, 0),
    ("TPS", 49, True, 0, 0),
    ("Sklearn", 44, False, 1, 2),
    ("HW-LM", 81, True, 0, 0),
    ("StoreSales", 41, True, 0, 0),
    ("Qiskit", 85, False, 91, 1),
    ("TorchGPU", 27, True, 0, 0),
    ("Ray", 20, False, 1, 0),
]


class TestSpecsMatchPaperTables:
    @pytest.mark.parametrize(
        "name,cells,final,hidden,out_of_order",
        TABLE_2_AND_8,
        ids=[row[0] for row in TABLE_2_AND_8],
    )
    def test_metadata(self, name, cells, final, hidden, out_of_order):
        spec = build_notebook(name, SCALE)
        assert spec.cell_count == cells
        assert spec.final is final
        assert spec.hidden_states == hidden
        assert spec.out_of_order_cells == out_of_order

    def test_unknown_notebook_rejected(self):
        with pytest.raises(KeyError):
            build_notebook("NotANotebook")

    def test_build_all_returns_eight(self):
        assert len(build_all(SCALE)) == 8


class TestNotebooksExecute:
    @pytest.mark.parametrize("name", list(NOTEBOOK_BUILDERS), ids=str)
    def test_runs_end_to_end(self, name):
        spec = build_notebook(name, SCALE)
        kernel = NotebookKernel()
        for cell in spec.cells:
            kernel.run_cell(cell)
        assert kernel.user_variables()  # ended with live state

    @pytest.mark.parametrize("name", list(NOTEBOOK_BUILDERS), ids=str)
    def test_experiment_targets_defined(self, name):
        spec = build_notebook(name, SCALE)
        assert spec.undo_target_indices, name
        assert spec.primary_undo_index is not None
        assert spec.branch_point_index is not None
        assert 0 <= spec.branch_point_index < spec.cell_count


class TestWorkloadTraits:
    def test_sklearn_cells_access_small_state_fraction(self):
        # Fig 2's headline: the vast majority of cells touch <10% of the
        # state (the paper reports 40/44 for Sklearn).
        stats = measure_access_patterns(build_notebook("Sklearn", SCALE))
        assert stats.cells_under_10_percent >= len(stats.cells) * 0.6

    def test_create_modify_balance(self):
        # Fig 2 bottom: creations and modifications are balanced (the
        # paper reports a 45/55 split).
        stats = measure_access_patterns(build_notebook("Sklearn", SCALE))
        assert 0.25 <= stats.creation_fraction <= 0.80

    def test_covariable_census_close_to_variable_count(self):
        # Table 7: co-variable counts are close to variable counts —
        # states consist of many small co-variables.
        n_vars, n_covars = covariable_census(build_notebook("TPS", SCALE))
        assert n_covars >= n_vars * 0.7
        assert n_covars <= n_vars

    def test_covariable_size_fractions_small(self):
        # Fig 18's marker: each co-variable holds a small share of state.
        fractions = covariable_size_fractions(build_notebook("HW-LM", SCALE))
        assert sum(fractions) == pytest.approx(1.0)
        assert sorted(fractions)[len(fractions) // 2] < 0.10  # median small


class TestSyntheticWorkloads:
    def test_shared_referencing_bundle_sizes(self):
        spec = shared_referencing_workload(3, n_arrays=10, array_kb=8)
        kernel = NotebookKernel()
        for cell in spec.cells:
            kernel.run_cell(cell)
        assert len(kernel.get("bundle")) == 3

    def test_shared_referencing_probe_updates_one_covariable(self):
        from repro.core.covariable import CoVariablePool

        spec = shared_referencing_workload(4, n_arrays=10, array_kb=8)
        kernel = NotebookKernel()
        for cell in spec.cells[:-1]:
            kernel.run_cell(cell)
        pool = CoVariablePool.from_namespace(kernel.user_variables())
        bundle_key = pool.key_of("bundle")
        assert len(bundle_key) == 5  # bundle + its 4 member arrays

    def test_shared_referencing_bounds(self):
        with pytest.raises(ValueError):
            shared_referencing_workload(0)
        with pytest.raises(ValueError):
            shared_referencing_workload(11)

    def test_long_session_prefix_is_full_pass(self):
        spec = build_notebook("HW-LM", SCALE)
        cells = long_session_cells(spec, 100, seed=0)
        assert cells[: spec.cell_count] == list(spec.cells)
        assert len(cells) == 100

    def test_long_session_reexecutions_are_runnable(self):
        spec = build_notebook("HW-LM", SCALE)
        cells = long_session_cells(spec, spec.cell_count + 30, seed=1)
        kernel = NotebookKernel()
        for cell in cells:
            kernel.run_cell(cell)

    def test_long_session_shorter_than_one_pass(self):
        spec = build_notebook("HW-LM", SCALE)
        cells = long_session_cells(spec, 10)
        assert len(cells) == 10
