"""Unit tests for the observability layer (``repro.obs``, DESIGN.md §11).

Covers the determinism contracts the tentpole rests on: fixed-bound
histogram bucketing, byte-stable registry rendering, span nesting and
re-entrancy (with injected clocks — wall-clock numbers are never
golden-tested), Chrome trace-event export structure, the event log's
seq-only (no wall-clock) records, the disabled observer's no-op surface,
and the :class:`~repro.telemetry.RegistryStats` views that keep session
stats and ``repro stats`` reading the same numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    BYTE_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NO_OBSERVER,
    NULL_SPAN,
    Event,
    EventLog,
    EventType,
    Histogram,
    MetricsRegistry,
    NullSpan,
    Observer,
    Tracer,
    maybe_span,
)
from repro.telemetry import AnalysisStats, PlanStats, publish_walk_stats, WalkStats


class FakeClock:
    """Deterministic clock: returns ``start`` and advances ``step`` per call."""

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_tracer(**kwargs) -> Tracer:
    return Tracer(clock=FakeClock(step=1.0), cpu_clock=FakeClock(step=0.25), **kwargs)


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_boundary_values_land_in_inclusive_bucket(self):
        hist = Histogram("h", BYTE_BUCKETS)
        hist.record(64)  # exactly on the first bound -> le_64
        hist.record(65)  # one past -> le_256
        hist.record(4 * 1024 * 1024)  # exactly on the last bound
        hist.record(4 * 1024 * 1024 + 1)  # past every bound -> overflow
        value = hist.as_value()
        assert value["buckets"]["le_64"] == 1
        assert value["buckets"]["le_256"] == 1
        assert value["buckets"]["le_4194304"] == 1
        assert value["buckets"]["le_+Inf"] == 1
        assert value["count"] == 4
        assert value["sum"] == 64 + 65 + 2 * 4 * 1024 * 1024 + 1

    def test_zero_and_negative_land_in_first_bucket(self):
        hist = Histogram("h", COUNT_BUCKETS)
        hist.record(0)
        hist.record(-3)
        assert hist.as_value()["buckets"]["le_1"] == 2

    def test_record_many(self):
        hist = Histogram("h", (10, 100))
        hist.record_many([1, 5, 50, 500])
        value = hist.as_value()
        assert value["buckets"] == {"le_10": 2, "le_100": 1, "le_+Inf": 1}
        assert value["count"] == 4

    def test_bounds_must_be_increasing_and_non_empty(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (10, 10))
        with pytest.raises(ValueError):
            Histogram("h", (100, 10))

    def test_default_bucket_bounds_are_the_fixed_constants(self):
        # Golden files depend on these exact bounds: changing them is a
        # breaking change to every recorded stats file.
        assert BYTE_BUCKETS == (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304)
        assert COUNT_BUCKETS == (1, 2, 4, 8, 16, 32, 64, 128)
        assert Histogram("h").bounds == BYTE_BUCKETS


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc(3)
        assert registry.counter("a.b") is counter
        assert registry.counter("a.b").value == 3
        assert "a.b" in registry
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")
        registry.histogram("h", (1, 2))
        with pytest.raises(TypeError):
            registry.counter("h")

    def test_as_dict_is_name_sorted_and_json_byte_stable(self):
        def build() -> MetricsRegistry:
            registry = MetricsRegistry()
            registry.counter("z.last").inc(2)
            registry.gauge("a.first").set(7)
            hist = registry.histogram("m.sizes", (10, 100))
            hist.record_many([5, 50, 500])
            return registry

        first = json.dumps(build().as_dict(), sort_keys=True)
        second = json.dumps(build().as_dict(), sort_keys=True)
        assert first == second
        assert list(build().as_dict()) == ["a.first", "m.sizes", "z.last"]

    def test_render_text_format(self):
        registry = MetricsRegistry()
        registry.counter("commits").inc(2)
        hist = registry.histogram("sizes", (10, 100))
        hist.record_many([5, 500])
        text = registry.render_text()
        assert "commits  2" in text
        assert "sizes  count=2 sum=505" in text
        assert "  le 10: 1" in text
        assert "  le +Inf: 1" in text
        # Empty buckets are elided.
        assert "le 100" not in text

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert registry.get("a") is registry.counter("a")
        assert registry.get("missing") is None


# ---------------------------------------------------------------------------
# Tracer / spans
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_timing(self):
        tracer = make_tracer()
        with tracer.span("commit", execution_count=1) as commit:
            with tracer.span("commit.detect") as detect:
                detect.set("updated", 2)
        assert tracer.current() is None
        assert len(tracer.roots) == 1
        assert commit.children == [detect]
        assert detect.attrs == {"updated": 2}
        # FakeClock ticks once per start/finish: detect spans 1 tick,
        # commit spans 3 (start, detect start+finish, finish).
        assert detect.duration == 1.0
        assert commit.duration == 3.0
        assert detect.cpu_seconds == 0.25

    def test_reentrancy_commit_inside_checkout_nests(self):
        # The real shape: a checkout's replay runs cells, whose POST
        # trigger opens a commit span — it must nest, not corrupt the
        # stack.
        tracer = make_tracer()
        with tracer.span("checkout"):
            with tracer.span("replay.execute"):
                with tracer.span("commit"):
                    pass
        (root,) = tracer.roots
        assert [span.name for span in root.walk()] == [
            "checkout",
            "replay.execute",
            "commit",
        ]
        assert root.find("commit") is not None
        assert root.find("absent") is None

    def test_out_of_order_finish_closes_leaked_children(self):
        tracer = make_tracer()
        outer = tracer.start("outer")
        leaked = tracer.start("leaked")
        tracer.finish(outer)  # finished before its child
        assert tracer.current() is None
        assert leaked.end_wall == outer.end_wall  # closed alongside
        assert leaked.duration > 0.0

    def test_span_open_has_zero_duration(self):
        tracer = make_tracer()
        span = tracer.start("open")
        assert span.duration == 0.0
        tracer.finish(span)
        assert span.duration > 0.0

    def test_chrome_trace_structure(self):
        tracer = make_tracer()
        with tracer.span("commit", node="n1", keys={"b", "a"}):
            with tracer.span("commit.detect"):
                pass
        events = tracer.to_chrome_trace()
        assert [event["name"] for event in events] == ["commit", "commit.detect"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
            assert "cpu_us" in event["args"]
        commit, detect = events
        # Timestamps are microseconds relative to the first root.
        assert commit["ts"] == 0
        assert detect["ts"] == 1_000_000
        assert commit["dur"] == 3_000_000
        # Attribute values are JSON-safe: sets become sorted lists.
        assert commit["args"]["keys"] == ["a", "b"]
        assert commit["args"]["node"] == "n1"

    def test_chrome_trace_empty_without_spans(self):
        assert make_tracer().to_chrome_trace() == []

    def test_write_chrome_trace_file(self, tmp_path):
        tracer = make_tracer()
        with tracer.span("cell"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["traceEvents"][0]["name"] == "cell"

    def test_format_tree(self):
        tracer = make_tracer()
        with tracer.span("commit", node="abc"):
            with tracer.span("commit.persist"):
                pass
        with tracer.span("checkout"):
            pass
        tree = tracer.format_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("commit  ")
        assert "[node=abc]" in lines[0]
        assert lines[1].startswith("  commit.persist  ")
        assert lines[2].startswith("checkout  ")
        # `last` limits to the newest roots.
        assert tracer.format_tree(last=1).splitlines()[0].startswith("checkout")
        tracer.clear()
        assert tracer.format_tree() == "(no spans recorded)"

    def test_max_roots_bounded_retention(self):
        tracer = make_tracer(max_roots=4)
        for index in range(5):
            with tracer.span(f"root{index}"):
                pass
        assert len(tracer.roots) == 3  # 4 halved to 2, plus the newest
        assert tracer.roots[-1].name == "root4"

    def test_all_spans_walks_every_root(self):
        tracer = make_tracer()
        with tracer.span("a"):
            with tracer.span("a.1"):
                pass
        with tracer.span("b"):
            pass
        assert [span.name for span in tracer.all_spans()] == ["a", "a.1", "b"]


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_seq_monotonic_no_wallclock(self):
        log = EventLog()
        first = log.emit(EventType.COMMIT, node="a")
        second = log.emit(EventType.CHECKOUT, target="b")
        assert (first.seq, second.seq) == (0, 1)
        for event in (first, second):
            record = event.as_dict()
            assert "time" not in record and "timestamp" not in record

    def test_coercion_at_emission(self):
        log = EventLog()
        event = log.emit(
            "t",
            names={"b", "a"},
            nested={"inner": frozenset({"y", "x"})},
            mixed=[1, ("u", "v")],
            obj=object,
        )
        assert event.fields["names"] == ["a", "b"]
        assert event.fields["nested"] == {"inner": ["x", "y"]}
        assert event.fields["mixed"] == [1, ["u", "v"]]
        assert isinstance(event.fields["obj"], str)
        # Everything must survive json.dumps.
        json.dumps(event.as_dict())

    def test_bounded_retention_records_dropped(self):
        log = EventLog(max_events=4)
        for index in range(6):
            log.emit("t", index=index)
        assert log.dropped == 2
        assert len(log) == 4
        # The log is a suffix: newest events survive, seq keeps counting.
        assert [event.fields["index"] for event in log] == [2, 3, 4, 5]
        assert log.events[-1].seq == 5

    def test_of_type_and_counts(self):
        log = EventLog()
        log.emit(EventType.RETRY, attempt=1)
        log.emit(EventType.RETRY, attempt=2)
        log.emit(EventType.RECOVERY)
        assert len(log.of_type(EventType.RETRY)) == 2
        assert len(log.of_type(EventType.RETRY, EventType.RECOVERY)) == 3
        assert log.counts() == {"recovery": 1, "retry": 2}

    def test_jsonl_byte_stable_and_roundtrip(self, tmp_path):
        def build() -> EventLog:
            log = EventLog()
            log.emit(EventType.REPLAY_PLAN_DECLINED, reason="unsafe", detail="x")
            log.emit(EventType.COMMIT, node="n1", covariables={"b", "a"})
            return log

        first, second = build().to_jsonl(), build().to_jsonl()
        assert first == second
        for line in first.splitlines():
            record = json.loads(line)
            assert list(record) == sorted(record)

        path = tmp_path / "events.jsonl"
        build().write_jsonl(str(path))
        records = EventLog.read_jsonl(str(path))
        assert [record["type"] for record in records] == [
            "replay_plan_declined",
            "commit",
        ]
        assert records[1]["covariables"] == ["a", "b"]

    def test_write_empty_log(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        EventLog().write_jsonl(str(path))
        assert EventLog.read_jsonl(str(path)) == []

    def test_taxonomy_values_are_unique_wire_names(self):
        assert len(EventType.ALL) == len(set(EventType.ALL))
        assert all(name == name.lower() for name in EventType.ALL)


# ---------------------------------------------------------------------------
# Observer
# ---------------------------------------------------------------------------


class TestObserver:
    def test_enabled_observer_records_everywhere(self):
        obs = Observer()
        with obs.span("commit") as span:
            obs.annotate(updated=3)
        assert span.attrs == {"updated": 3}
        obs.event(EventType.RETRY, attempt=1)
        obs.count("commit.count")
        obs.observe("bytes", 100, (64, 256))
        obs.gauge("covariables", 5)
        assert len(obs.events) == 1
        # Events double-count into the registry for frequency queries.
        assert obs.metrics.counter("events.retry").value == 1
        assert obs.metrics.counter("commit.count").value == 1
        assert obs.metrics.histogram("bytes").count == 1
        assert obs.metrics.gauge("covariables").value == 5

    def test_disabled_observer_is_inert(self):
        obs = Observer(enabled=False)
        with obs.span("commit") as span:
            obs.annotate(updated=3)
            span.set("k", "v")
            span.update({"a": 1})
        assert span is NULL_SPAN
        assert isinstance(span, NullSpan)
        assert span.duration == 0.0 and span.cpu_seconds == 0.0
        obs.event(EventType.RETRY, attempt=1)
        obs.count("c")
        obs.observe("h", 1, (10,))
        obs.gauge("g", 1)
        assert len(obs.events) == 0
        assert len(obs.metrics) == 0
        assert list(obs.tracer.all_spans()) == []

    def test_disabled_span_context_is_shared(self):
        # The no-op path allocates nothing per call.
        obs = Observer(enabled=False)
        assert obs.span("a") is obs.span("b") is NO_OBSERVER.span("c")

    def test_maybe_span_with_none_observer(self):
        with maybe_span(None, "anything") as span:
            assert span is NULL_SPAN
        obs = Observer()
        with maybe_span(obs, "real") as span:
            assert span.name == "real"
        assert obs.tracer.roots[0] is span


# ---------------------------------------------------------------------------
# Registry-backed stats views
# ---------------------------------------------------------------------------


class TestRegistryStats:
    def test_attribute_mutation_routes_to_registry(self):
        registry = MetricsRegistry()
        stats = AnalysisStats(registry=registry)
        stats.escalations += 1
        stats.cells_analyzed = 4
        assert registry.counter("analysis.escalations").value == 1
        assert registry.counter("analysis.cells_analyzed").value == 4
        # And reads see registry mutations made elsewhere.
        registry.counter("analysis.escalations").inc()
        assert stats.escalations == 2
        assert stats.as_dict()["escalations"] == 2

    def test_standalone_stats_get_private_registry(self):
        first, second = AnalysisStats(), AnalysisStats()
        first.escalations += 1
        assert second.escalations == 0

    def test_initial_kwargs_and_unknown_field(self):
        stats = PlanStats(plans_executed=2)
        assert stats.plans_executed == 2
        with pytest.raises(TypeError):
            AnalysisStats(bogus=1)
        with pytest.raises(AttributeError):
            stats.not_a_counter

    def test_plan_stats_record_decline(self):
        class StubDecline:
            reason_value = "unsafe"

        registry = MetricsRegistry()
        stats = PlanStats(registry=registry)
        decline = StubDecline()
        stats.record_decline(decline)
        stats.record_decline(decline)
        assert stats.plans_declined == 2
        assert stats.last_decline is decline
        assert registry.counter("replay.declined.unsafe").value == 2
        assert stats.declines_by_reason() == {"unsafe": 2}

    def test_publish_walk_stats_batches_counters(self):
        registry = MetricsRegistry()
        delta = WalkStats(objects_visited=7, cache_hits=2, bytes_hashed=128)
        publish_walk_stats(registry, delta)
        publish_walk_stats(registry, delta)
        assert registry.counter("walk.objects_visited").value == 14
        assert registry.counter("walk.bytes_hashed").value == 256
        # Zero fields create no instruments (keeps render output tight).
        assert "walk.graphs_built" not in registry


# ---------------------------------------------------------------------------
# Golden: the registry's canonical JSON form is byte-stable
# ---------------------------------------------------------------------------


GOLDEN = "tests/golden/metrics_registry.json"


def build_golden_registry() -> MetricsRegistry:
    """A synthetic registry exercising every instrument kind with fixed
    inputs — no pickle sizes, no wall-clock, nothing interpreter-version
    dependent."""
    registry = MetricsRegistry()
    registry.counter("commit.count").inc(3)
    registry.counter("store.bytes_written").inc(4096)
    registry.counter("replay.declined.unsafe").inc(1)
    registry.gauge("store.state_covariables").set(5)
    registry.histogram("store.payload_bytes", BYTE_BUCKETS).record_many(
        [32, 64, 65, 300, 5000, 70000, 5 * 1024 * 1024]
    )
    registry.histogram("replay.cells", COUNT_BUCKETS).record_many([1, 3, 9])
    registry.histogram("service.write_latency_seconds", LATENCY_BUCKETS).record_many(
        [0.0004, 0.002, 0.004, 0.03, 0.25, 1.5, 45.0]
    )
    return registry


class TestGoldenRegistry:
    def test_matches_golden_file(self):
        import pathlib

        rendered = (
            json.dumps(build_golden_registry().as_dict(), indent=2, sort_keys=True)
            + "\n"
        )
        again = (
            json.dumps(build_golden_registry().as_dict(), indent=2, sort_keys=True)
            + "\n"
        )
        assert rendered == again, "registry rendering must be deterministic"
        golden = pathlib.Path(__file__).parent / "golden" / "metrics_registry.json"
        assert rendered == golden.read_text(), (
            "canonical registry JSON drifted from tests/golden/"
            "metrics_registry.json — regenerate the golden file only for an "
            "intentional format change"
        )


# ---------------------------------------------------------------------------
# Shared latency vocabulary
# ---------------------------------------------------------------------------


class TestLatencyBuckets:
    def test_exact_bounds(self):
        # The fleet-wide latency vocabulary: 1–2.5–5 ladder in seconds,
        # 1ms..30s. Changing it invalidates every SLO threshold and
        # cross-run latency comparison — so it is pinned exactly.
        assert LATENCY_BUCKETS == (
            0.001,
            0.0025,
            0.005,
            0.01,
            0.025,
            0.05,
            0.1,
            0.25,
            0.5,
            1.0,
            2.5,
            5.0,
            10.0,
            30.0,
        )

    def test_strictly_increasing(self):
        assert list(LATENCY_BUCKETS) == sorted(set(LATENCY_BUCKETS))


# ---------------------------------------------------------------------------
# Thread safety: N writers, no lost updates, no seq gaps
# ---------------------------------------------------------------------------


class TestThreadSafety:
    def test_registry_concurrent_writers_lose_nothing(self):
        import threading

        registry = MetricsRegistry()
        threads_n, per_thread = 8, 500

        def hammer() -> None:
            for i in range(per_thread):
                registry.counter("hammer.count").inc()
                registry.gauge("hammer.gauge").set(i)
                registry.histogram("hammer.latency", LATENCY_BUCKETS).record(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("hammer.count").value == threads_n * per_thread
        hist = registry.histogram("hammer.latency", LATENCY_BUCKETS)
        assert hist.count == threads_n * per_thread

    def test_event_log_concurrent_emitters_keep_seq_dense(self):
        import threading

        log = EventLog()
        threads_n, per_thread = 8, 400

        def hammer(worker: int) -> None:
            for i in range(per_thread):
                log.emit(EventType.COMMIT, worker=worker, i=i)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == threads_n * per_thread
        seqs = sorted(event.seq for event in log)
        assert seqs == list(range(threads_n * per_thread)), (
            "concurrent emits must never skip or duplicate a seq"
        )
