"""The differential oracle: canonical state and the three-way cross-check."""

import pytest

from repro.fuzz.oracle import (
    Divergence,
    canonical_state,
    run_cells_oracle,
    run_fuzz_iteration,
)
from repro.fuzz.grammar import FuzzConfig, profile
from repro.kernel.kernel import NotebookKernel


def _state_after(*cells):
    kernel = NotebookKernel()
    for cell in cells:
        kernel.run_cell(cell, raise_on_error=False)
    return canonical_state(kernel)


class TestCanonicalState:
    def test_equal_states_encode_equal(self):
        cells = ("a = [1, {'k': 2}]", "b = a", "c = (a, 3)")
        assert _state_after(*cells) == _state_after(*cells)

    def test_aliasing_is_part_of_state(self):
        shared = _state_after("a = [1, 2]", "b = a")
        copied = _state_after("a = [1, 2]", "b = [1, 2]")
        assert shared != copied

    def test_dict_insertion_order_is_part_of_state(self):
        assert _state_after("d = {'x': 1, 'y': 2}") != _state_after(
            "d = {'y': 2, 'x': 1}"
        )

    def test_addresses_are_masked(self):
        # Functions and generators repr with a memory address; equal
        # programs in different kernels must still encode identically.
        cells = ("def f():\n    return 1", "g = (i for i in range(3))")
        assert _state_after(*cells) == _state_after(*cells)

    def test_numpy_content_is_hashed(self):
        same = ("import numpy as np", "a = np.arange(8, dtype=np.float64)")
        other = ("import numpy as np", "a = np.arange(8, dtype=np.float64) + 1")
        assert _state_after(*same) == _state_after(*same)
        assert _state_after(*same) != _state_after(*other)

    def test_libsim_handles_encode_their_state(self):
        make = (
            "import repro.libsim.data_analysis as _simda",
            "h = _simda.SimSeries(n=6, seed=3)",
        )
        differ = (
            "import repro.libsim.data_analysis as _simda",
            "h = _simda.SimSeries(n=6, seed=4)",
        )
        assert _state_after(*make) == _state_after(*make)
        assert _state_after(*make) != _state_after(*differ)


class TestOracleRun:
    def test_clean_program_passes(self):
        cells = ["a = [1, 2]", "b = a", "b.append(3)", "c = {'k': a}"]
        report = run_cells_oracle(cells, seed=5)
        assert report.ok, report.describe()
        assert report.checkouts == len(cells)
        assert report.commits_checked == len(cells)

    def test_branch_rounds_run(self):
        report = run_cells_oracle(
            ["a = [1]", "a.append(2)", "b = a"],
            seed=2,
            branch_cells=("a.append(99)", "c = [len(a)]"),
        )
        assert report.ok, report.describe()
        assert report.branch_rounds == 2

    def test_error_cells_are_deterministic_state(self):
        # Both runs see the identical NameError; no divergence.
        report = run_cells_oracle(["a = [1]", "b = missing_name", "c = a"], seed=0)
        assert report.ok, report.describe()

    def test_nondeterminism_is_caught(self):
        # A cell observing cross-kernel process state executes differently
        # in the tracked and cold runs — the oracle must flag it.
        cells = [
            "import repro as _r\n"
            "_r._fuzz_probe = getattr(_r, '_fuzz_probe', 0) + 1\n"
            "v = [_r._fuzz_probe]",
        ]
        try:
            report = run_cells_oracle(cells, seed=0)
        finally:
            import repro as _r

            if hasattr(_r, "_fuzz_probe"):
                del _r._fuzz_probe
        assert not report.ok
        assert any(d.kind == "nondeterminism" for d in report.divergences)

    def test_escape_program_passes_and_counts_escalations(self):
        cells = [
            "a = [1]",
            "globals()['e1'] = [2, 3]",
            "exec(\"e2 = [4]\")",
            "if isinstance(globals()['a'], list):\n    globals()['a'].append(5)",
        ]
        report = run_cells_oracle(cells, seed=1)
        assert report.ok, report.describe()

    def test_run_fuzz_iteration_roundtrip(self):
        program, report = run_fuzz_iteration(
            3, FuzzConfig(cells=8, branch_cells=1)
        )
        assert program.seed == 3
        assert len(program.cells) == 8
        assert report.ok, report.describe()

    @pytest.mark.parametrize("name", ["default", "escape-heavy", "libsim-heavy"])
    def test_profiles_pass_oracle(self, name):
        _, report = run_fuzz_iteration(11, profile(name, cells=10, branch_cells=2))
        assert report.ok, report.describe()


class TestDivergenceRendering:
    def test_describe_carries_seed_and_location(self):
        d = Divergence(
            kind="checkout", node_id="t4", cell_index=3, detail="boom", seed=9
        )
        text = d.describe()
        assert "[checkout]" in text
        assert "seed=9" in text
        assert "t4" in text and "cell 3" in text

    def test_report_describe_lists_divergences(self):
        report = run_cells_oracle(["a = [1]"], seed=0)
        assert report.describe().startswith("ok:")
