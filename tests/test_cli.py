"""Tests for the interactive command-palette REPL (the demo surface)."""

from __future__ import annotations

import io

import pytest

from repro.cli import KishuRepl


def run_script(*lines: str) -> str:
    """Drive a REPL with scripted input; returns everything it printed."""
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    repl = KishuRepl(stdin=stdin, stdout=stdout)
    repl.run()
    return stdout.getvalue()


class TestCellExecution:
    def test_expression_prints_out_value(self):
        output = run_script("1 + 1", "%quit")
        assert "Out[1]: 2" in output

    def test_state_persists(self):
        output = run_script("x = 10", "x * 2", "%quit")
        assert "Out[2]: 20" in output

    def test_stdout_forwarded(self):
        output = run_script("print('hello there')", "%quit")
        assert "hello there" in output

    def test_errors_reported_not_fatal(self):
        output = run_script("1 / 0", "2 + 2", "%quit")
        assert "ZeroDivisionError" in output
        assert "Out[2]: 4" in output

    def test_blank_lines_ignored(self):
        output = run_script("", "   ", "%quit")
        assert "bye" in output


class TestCommands:
    def test_log_lists_checkpoints(self):
        output = run_script("a = 1", "b = 2", "%log", "%quit")
        assert "t1" in output
        assert "t2" in output
        assert "* t2" in output  # head marker

    def test_undo_restores_previous_state(self):
        output = run_script(
            "data = [1, 2, 3]",
            "data.clear()",
            "%undo",
            "len(data)",
            "%quit",
        )
        assert "Out[3]: 3" in output

    def test_checkout_by_id(self):
        output = run_script(
            "x = 'first'",
            "x = 'second'",
            "%checkout t1",
            "x",
            "%quit",
        )
        assert "Out[3]: 'first'" in output

    def test_checkout_bad_id(self):
        output = run_script("x = 1", "%checkout t99", "%quit")
        assert "checkout failed" in output

    def test_checkout_usage_message(self):
        output = run_script("%checkout", "%quit")
        assert "usage" in output

    def test_undo_with_no_history(self):
        output = run_script("%undo", "%quit")
        assert "nothing to undo" in output

    def test_vars_lists_names_and_types(self):
        output = run_script("n = 5", "s = 'text'", "%vars", "%quit")
        assert "n: int" in output
        assert "s: str" in output

    def test_vars_empty(self):
        output = run_script("%vars", "%quit")
        assert "empty namespace" in output

    def test_state_shows_versions(self):
        output = run_script("x = 1", "%state", "%quit")
        assert "{x} @ t1" in output

    def test_help(self):
        output = run_script("%help", "%quit")
        assert "%checkout" in output
        assert "%log" in output

    def test_unknown_command(self):
        output = run_script("%frobnicate", "%quit")
        assert "unknown command %frobnicate" in output

    def test_eof_terminates(self):
        output = run_script("x = 1")  # no %quit: EOF ends the loop
        assert "kishu session started" in output
