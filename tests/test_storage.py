"""Tests for checkpoint stores (SQLite and in-memory backends)."""

from __future__ import annotations

import pytest

from repro.core.covariable import covar_key
from repro.core.storage import (
    SQLiteCheckpointStore,
    StoredNode,
    StoredPayload,
    decode_key,
    encode_key,
)
from repro.errors import StorageError


def make_node(node_id="t1", parent="t0"):
    return StoredNode(
        node_id=node_id,
        parent_id=parent,
        timestamp=int(node_id[1:]),
        execution_count=int(node_id[1:]),
        cell_source=f"x_{node_id} = 1",
        deleted_keys=(covar_key({"old"}),),
        dependencies=((covar_key({"dep"}), "t0"),),
    )


class TestKeyEncoding:
    def test_roundtrip(self):
        key = covar_key({"beta", "alpha"})
        assert decode_key(encode_key(key)) == key

    def test_canonical_order(self):
        assert encode_key(covar_key({"b", "a"})) == encode_key(covar_key({"a", "b"}))

    def test_empty_key(self):
        assert decode_key(encode_key(frozenset())) == frozenset()


class TestStoreParity:
    """Both backends must behave identically (the `any_store` fixture
    parameterizes over them)."""

    def test_node_roundtrip(self, any_store):
        node = make_node()
        any_store.write_node(node)
        (read,) = any_store.read_nodes()
        assert read == node

    def test_nodes_ordered_by_timestamp(self, any_store):
        any_store.write_node(make_node("t3", "t2"))
        any_store.write_node(make_node("t1", "t0"))
        ids = [n.node_id for n in any_store.read_nodes()]
        assert ids == ["t1", "t3"]

    def test_same_timestamp_orders_by_execution_count(self, any_store):
        """Regression: same-second checkpoints must not reorder parent
        after child on reload — execution count breaks the tie."""
        shared_ts = 100
        child = StoredNode(
            node_id="t2", parent_id="t1", timestamp=shared_ts,
            execution_count=2, cell_source="child",
            deleted_keys=(), dependencies=(),
        )
        parent = StoredNode(
            node_id="t1", parent_id="t0", timestamp=shared_ts,
            execution_count=1, cell_source="parent",
            deleted_keys=(), dependencies=(),
        )
        any_store.write_node(child)
        any_store.write_node(parent)
        ids = [n.node_id for n in any_store.read_nodes()]
        assert ids == ["t1", "t2"]

    def test_same_timestamp_and_count_keeps_insertion_order(self, any_store):
        """Final tiebreaker: insertion order, so reload is deterministic
        even for fully tied rows."""
        rows = [
            StoredNode(
                node_id=f"t{i}", parent_id="t0", timestamp=7,
                execution_count=7, cell_source=str(i),
                deleted_keys=(), dependencies=(),
            )
            for i in (3, 1, 2)
        ]
        for row in rows:
            any_store.write_node(row)
        ids = [n.node_id for n in any_store.read_nodes()]
        assert ids == ["t3", "t1", "t2"]

    def test_payload_roundtrip(self, any_store):
        payload = StoredPayload(
            node_id="t1", key=covar_key({"x"}), data=b"blob", serializer="primary"
        )
        any_store.write_payload(payload)
        read = any_store.read_payload("t1", covar_key({"x"}))
        assert read.data == b"blob"
        assert read.serializer == "primary"
        assert read.stored

    def test_tombstone_payload(self, any_store):
        any_store.write_payload(
            StoredPayload(node_id="t1", key=covar_key({"g"}), data=None, serializer=None)
        )
        read = any_store.read_payload("t1", covar_key({"g"}))
        assert not read.stored
        assert read.size_bytes == 0

    def test_missing_payload_raises(self, any_store):
        with pytest.raises(StorageError):
            any_store.read_payload("t9", covar_key({"nope"}))

    def test_payloads_of_node(self, any_store):
        for name in ("a", "b"):
            any_store.write_payload(
                StoredPayload(
                    node_id="t1",
                    key=covar_key({name}),
                    data=name.encode(),
                    serializer="primary",
                )
            )
        any_store.write_payload(
            StoredPayload(
                node_id="t2", key=covar_key({"c"}), data=b"c", serializer="primary"
            )
        )
        assert len(any_store.payloads_of("t1")) == 2

    def test_total_payload_bytes(self, any_store):
        any_store.write_payload(
            StoredPayload(
                node_id="t1", key=covar_key({"a"}), data=b"12345", serializer="primary"
            )
        )
        any_store.write_payload(
            StoredPayload(node_id="t1", key=covar_key({"b"}), data=None, serializer=None)
        )
        assert any_store.total_payload_bytes() == 5

    def test_payload_overwrite_replaces(self, any_store):
        key = covar_key({"x"})
        any_store.write_payload(
            StoredPayload(node_id="t1", key=key, data=b"old", serializer="primary")
        )
        any_store.write_payload(
            StoredPayload(node_id="t1", key=key, data=b"newer", serializer="fallback")
        )
        read = any_store.read_payload("t1", key)
        assert read.data == b"newer"
        assert read.serializer == "fallback"


class TestSQLiteDurability:
    def test_persists_across_connections(self, tmp_path):
        path = str(tmp_path / "checkpoints.db")
        with SQLiteCheckpointStore(path) as store:
            store.write_node(make_node())
            store.write_payload(
                StoredPayload(
                    node_id="t1",
                    key=covar_key({"x"}),
                    data=b"durable",
                    serializer="primary",
                )
            )
        with SQLiteCheckpointStore(path) as reopened:
            assert len(reopened.read_nodes()) == 1
            assert reopened.read_payload("t1", covar_key({"x"})).data == b"durable"

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "c.db")
        with SQLiteCheckpointStore(path) as store:
            pass
        with pytest.raises(Exception):
            store.read_nodes()  # connection closed

    def test_full_round_trip_survives_reopen(self, tmp_path):
        """Every persisted facet — nodes, deletes, deps, stored payloads,
        and tombstones — must survive a close/reopen of a file-backed
        store, byte for byte."""
        path = str(tmp_path / "full.db")
        node = StoredNode(
            node_id="t1",
            parent_id="t0",
            timestamp=1,
            execution_count=3,
            cell_source="df = df.drop(columns=['x'])\ntotal = df.sum()",
            deleted_keys=(covar_key({"tmp"}), covar_key({"old", "older"})),
            dependencies=(
                (covar_key({"df"}), "t0"),
                (covar_key({"cfg", "params"}), "t0"),
            ),
        )
        stored = StoredPayload(
            node_id="t1", key=covar_key({"df"}), data=b"\x00blob\xff", serializer="primary"
        )
        tombstone = StoredPayload(
            node_id="t1", key=covar_key({"cfg", "params"}), data=None, serializer=None
        )
        with SQLiteCheckpointStore(path) as store:
            with store.checkpoint("t1"):
                store.write_node(node)
                store.write_payload(stored)
                store.write_payload(tombstone)

        with SQLiteCheckpointStore(path) as back:
            assert back.last_recovery is not None and back.last_recovery.clean
            (read,) = back.read_nodes()
            assert (read.node_id, read.parent_id, read.timestamp) == ("t1", "t0", 1)
            assert read.execution_count == 3
            assert read.cell_source == node.cell_source
            assert set(read.deleted_keys) == set(node.deleted_keys)
            assert dict(read.dependencies) == dict(node.dependencies)
            payload = back.read_payload("t1", covar_key({"df"}))
            assert payload.data == b"\x00blob\xff"
            assert payload.serializer == "primary"
            ghost = back.read_payload("t1", covar_key({"cfg", "params"}))
            assert not ghost.stored and ghost.data is None
            assert back.total_payload_bytes() == len(b"\x00blob\xff")
            assert len(back.payloads_of("t1")) == 2
