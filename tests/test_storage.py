"""Tests for checkpoint stores (SQLite and in-memory backends)."""

from __future__ import annotations

import pytest

from repro.core.covariable import covar_key
from repro.core.storage import (
    SQLiteCheckpointStore,
    StoredNode,
    StoredPayload,
    decode_key,
    encode_key,
)
from repro.errors import StorageError


def make_node(node_id="t1", parent="t0"):
    return StoredNode(
        node_id=node_id,
        parent_id=parent,
        timestamp=int(node_id[1:]),
        execution_count=int(node_id[1:]),
        cell_source=f"x_{node_id} = 1",
        deleted_keys=(covar_key({"old"}),),
        dependencies=((covar_key({"dep"}), "t0"),),
    )


class TestKeyEncoding:
    def test_roundtrip(self):
        key = covar_key({"beta", "alpha"})
        assert decode_key(encode_key(key)) == key

    def test_canonical_order(self):
        assert encode_key(covar_key({"b", "a"})) == encode_key(covar_key({"a", "b"}))

    def test_empty_key(self):
        assert decode_key(encode_key(frozenset())) == frozenset()


class TestStoreParity:
    """Both backends must behave identically (the `any_store` fixture
    parameterizes over them)."""

    def test_node_roundtrip(self, any_store):
        node = make_node()
        any_store.write_node(node)
        (read,) = any_store.read_nodes()
        assert read == node

    def test_nodes_ordered_by_timestamp(self, any_store):
        any_store.write_node(make_node("t3", "t2"))
        any_store.write_node(make_node("t1", "t0"))
        ids = [n.node_id for n in any_store.read_nodes()]
        assert ids == ["t1", "t3"]

    def test_same_timestamp_orders_by_execution_count(self, any_store):
        """Regression: same-second checkpoints must not reorder parent
        after child on reload — execution count breaks the tie."""
        shared_ts = 100
        child = StoredNode(
            node_id="t2", parent_id="t1", timestamp=shared_ts,
            execution_count=2, cell_source="child",
            deleted_keys=(), dependencies=(),
        )
        parent = StoredNode(
            node_id="t1", parent_id="t0", timestamp=shared_ts,
            execution_count=1, cell_source="parent",
            deleted_keys=(), dependencies=(),
        )
        any_store.write_node(child)
        any_store.write_node(parent)
        ids = [n.node_id for n in any_store.read_nodes()]
        assert ids == ["t1", "t2"]

    def test_same_timestamp_and_count_keeps_insertion_order(self, any_store):
        """Final tiebreaker: insertion order, so reload is deterministic
        even for fully tied rows."""
        rows = [
            StoredNode(
                node_id=f"t{i}", parent_id="t0", timestamp=7,
                execution_count=7, cell_source=str(i),
                deleted_keys=(), dependencies=(),
            )
            for i in (3, 1, 2)
        ]
        for row in rows:
            any_store.write_node(row)
        ids = [n.node_id for n in any_store.read_nodes()]
        assert ids == ["t3", "t1", "t2"]

    def test_payload_roundtrip(self, any_store):
        payload = StoredPayload(
            node_id="t1", key=covar_key({"x"}), data=b"blob", serializer="primary"
        )
        any_store.write_payload(payload)
        read = any_store.read_payload("t1", covar_key({"x"}))
        assert read.data == b"blob"
        assert read.serializer == "primary"
        assert read.stored

    def test_tombstone_payload(self, any_store):
        any_store.write_payload(
            StoredPayload(node_id="t1", key=covar_key({"g"}), data=None, serializer=None)
        )
        read = any_store.read_payload("t1", covar_key({"g"}))
        assert not read.stored
        assert read.size_bytes == 0

    def test_missing_payload_raises(self, any_store):
        with pytest.raises(StorageError):
            any_store.read_payload("t9", covar_key({"nope"}))

    def test_payloads_of_node(self, any_store):
        for name in ("a", "b"):
            any_store.write_payload(
                StoredPayload(
                    node_id="t1",
                    key=covar_key({name}),
                    data=name.encode(),
                    serializer="primary",
                )
            )
        any_store.write_payload(
            StoredPayload(
                node_id="t2", key=covar_key({"c"}), data=b"c", serializer="primary"
            )
        )
        assert len(any_store.payloads_of("t1")) == 2

    def test_total_payload_bytes(self, any_store):
        any_store.write_payload(
            StoredPayload(
                node_id="t1", key=covar_key({"a"}), data=b"12345", serializer="primary"
            )
        )
        any_store.write_payload(
            StoredPayload(node_id="t1", key=covar_key({"b"}), data=None, serializer=None)
        )
        assert any_store.total_payload_bytes() == 5

    def test_payload_overwrite_replaces(self, any_store):
        key = covar_key({"x"})
        any_store.write_payload(
            StoredPayload(node_id="t1", key=key, data=b"old", serializer="primary")
        )
        any_store.write_payload(
            StoredPayload(node_id="t1", key=key, data=b"newer", serializer="fallback")
        )
        read = any_store.read_payload("t1", key)
        assert read.data == b"newer"
        assert read.serializer == "fallback"


class TestSQLiteDurability:
    def test_persists_across_connections(self, tmp_path):
        path = str(tmp_path / "checkpoints.db")
        with SQLiteCheckpointStore(path) as store:
            store.write_node(make_node())
            store.write_payload(
                StoredPayload(
                    node_id="t1",
                    key=covar_key({"x"}),
                    data=b"durable",
                    serializer="primary",
                )
            )
        with SQLiteCheckpointStore(path) as reopened:
            assert len(reopened.read_nodes()) == 1
            assert reopened.read_payload("t1", covar_key({"x"})).data == b"durable"

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "c.db")
        with SQLiteCheckpointStore(path) as store:
            pass
        with pytest.raises(Exception):
            store.read_nodes()  # connection closed

    def test_full_round_trip_survives_reopen(self, tmp_path):
        """Every persisted facet — nodes, deletes, deps, stored payloads,
        and tombstones — must survive a close/reopen of a file-backed
        store, byte for byte."""
        path = str(tmp_path / "full.db")
        node = StoredNode(
            node_id="t1",
            parent_id="t0",
            timestamp=1,
            execution_count=3,
            cell_source="df = df.drop(columns=['x'])\ntotal = df.sum()",
            deleted_keys=(covar_key({"tmp"}), covar_key({"old", "older"})),
            dependencies=(
                (covar_key({"df"}), "t0"),
                (covar_key({"cfg", "params"}), "t0"),
            ),
        )
        stored = StoredPayload(
            node_id="t1", key=covar_key({"df"}), data=b"\x00blob\xff", serializer="primary"
        )
        tombstone = StoredPayload(
            node_id="t1", key=covar_key({"cfg", "params"}), data=None, serializer=None
        )
        with SQLiteCheckpointStore(path) as store:
            with store.checkpoint("t1"):
                store.write_node(node)
                store.write_payload(stored)
                store.write_payload(tombstone)

        with SQLiteCheckpointStore(path) as back:
            assert back.last_recovery is not None and back.last_recovery.clean
            (read,) = back.read_nodes()
            assert (read.node_id, read.parent_id, read.timestamp) == ("t1", "t0", 1)
            assert read.execution_count == 3
            assert read.cell_source == node.cell_source
            assert set(read.deleted_keys) == set(node.deleted_keys)
            assert dict(read.dependencies) == dict(node.dependencies)
            payload = back.read_payload("t1", covar_key({"df"}))
            assert payload.data == b"\x00blob\xff"
            assert payload.serializer == "primary"
            ghost = back.read_payload("t1", covar_key({"cfg", "params"}))
            assert not ghost.stored and ghost.data is None
            assert back.total_payload_bytes() == len(b"\x00blob\xff")
            assert len(back.payloads_of("t1")) == 2


# ---------------------------------------------------------------------------
# Multi-session schema: namespacing, registry, migration
# ---------------------------------------------------------------------------


class TestSessionNamespacing:
    def test_for_session_views_are_isolated(self, any_store):
        alice = any_store.for_session("alice")
        bob = any_store.for_session("bob")
        alice.write_node(make_node("t1"))
        alice.write_payload(
            StoredPayload(
                node_id="t1", key=covar_key({"x"}), data=b"A", serializer="primary"
            )
        )
        bob.write_node(make_node("t1"))
        bob.write_payload(
            StoredPayload(
                node_id="t1", key=covar_key({"x"}), data=b"B", serializer="primary"
            )
        )
        # Same node id, two namespaces, no collision.
        assert alice.read_payload("t1", covar_key({"x"})).data == b"A"
        assert bob.read_payload("t1", covar_key({"x"})).data == b"B"
        assert len(alice.read_nodes()) == 1
        assert alice.total_payload_bytes() == 1

    def test_checkpoint_transactions_are_per_view(self, any_store):
        alice = any_store.for_session("alice")
        bob = any_store.for_session("bob")
        alice.begin_checkpoint("t1")
        alice.write_node(make_node("t1"))
        # An uncommitted checkpoint in one session is invisible to another.
        assert bob.read_nodes() == []
        alice.commit_checkpoint("t1")
        assert bob.read_nodes() == []
        assert [n.node_id for n in alice.read_nodes()] == ["t1"]

    def test_registry_roundtrip(self, any_store):
        any_store.register_session("alice", "alice.ipynb", status="active")
        any_store.register_session("bob", "bob.ipynb")
        assert any_store.has_session("alice")
        assert not any_store.has_session("ghost")
        records = {r.session_id: r for r in any_store.list_sessions()}
        assert records["alice"].status == "active"
        assert records["bob"].notebook_path == "bob.ipynb"

    def test_register_is_idempotent(self, any_store):
        any_store.register_session("alice", "alice.ipynb", status="active")
        any_store.register_session("alice", "other.ipynb")
        record = {r.session_id: r for r in any_store.list_sessions()}["alice"]
        # First registration wins; re-registering must not clobber.
        assert record.notebook_path == "alice.ipynb"
        assert record.status == "active"

    def test_rename_session(self, any_store):
        any_store.register_session("alice", "untitled.ipynb")
        any_store.rename_session("alice", "final.ipynb")
        record = {r.session_id: r for r in any_store.list_sessions()}["alice"]
        assert record.notebook_path == "final.ipynb"
        with pytest.raises(StorageError, match="unknown session"):
            any_store.rename_session("ghost", "x.ipynb")

    def test_session_status_transitions(self, any_store):
        any_store.register_session("alice")
        any_store.set_session_status("alice", "active")
        record = {r.session_id: r for r in any_store.list_sessions()}["alice"]
        assert record.status == "active"
        with pytest.raises(StorageError, match="unknown session"):
            any_store.set_session_status("ghost", "active")

    def test_list_counts_only_committed_checkpoints(self, any_store):
        view = any_store.for_session("alice")
        view.begin_checkpoint("t1")
        view.write_node(make_node("t1"))
        view.commit_checkpoint("t1")
        view.begin_checkpoint("t2")
        view.write_node(make_node("t2", "t1"))
        view.rollback_checkpoint("t2")
        record = {r.session_id: r for r in any_store.list_sessions()}["alice"]
        assert record.checkpoints == 1

    def test_sessions_persist_across_reopen(self, tmp_path):
        path = str(tmp_path / "multi.db")
        with SQLiteCheckpointStore(path) as store:
            view = store.for_session("alice", notebook_path="alice.ipynb")
            view.write_node(make_node("t1"))
        with SQLiteCheckpointStore(path) as back:
            assert back.has_session("alice")
            view = back.for_session("alice")
            assert [n.node_id for n in view.read_nodes()] == ["t1"]
            record = {r.session_id: r for r in back.list_sessions()}["alice"]
            assert record.notebook_path == "alice.ipynb"


class TestSchemaMigration:
    def _make_v1_store(self, path):
        """A pre-multi-session (v1) database: ``committed`` exists, no
        ``session_id`` anywhere."""
        import sqlite3

        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE nodes (
                node_id TEXT PRIMARY KEY, parent_id TEXT,
                timestamp INTEGER NOT NULL, execution_count INTEGER NOT NULL,
                cell_source TEXT NOT NULL,
                committed INTEGER NOT NULL DEFAULT 1
            );
            CREATE TABLE node_deletes (
                node_id TEXT NOT NULL, covar_key TEXT NOT NULL,
                PRIMARY KEY (node_id, covar_key)
            );
            CREATE TABLE node_deps (
                node_id TEXT NOT NULL, covar_key TEXT NOT NULL,
                ref_node TEXT NOT NULL, PRIMARY KEY (node_id, covar_key)
            );
            CREATE TABLE payloads (
                node_id TEXT NOT NULL, covar_key TEXT NOT NULL,
                data BLOB, serializer TEXT,
                PRIMARY KEY (node_id, covar_key)
            );
            CREATE INDEX idx_payloads_node ON payloads (node_id);
            INSERT INTO nodes VALUES ('t1', 't0', 1, 1, 'x = 1', 1);
            INSERT INTO nodes VALUES ('t2', 't1', 2, 2, 'y = x + 1', 1);
            INSERT INTO node_deletes VALUES ('t2', 'old');
            INSERT INTO node_deps VALUES ('t2', 'x', 't1');
            INSERT INTO payloads VALUES ('t1', 'x', X'AA', 'primary');
            INSERT INTO payloads VALUES ('t2', 'y', X'BB', 'primary');
            PRAGMA user_version = 1;
            """
        )
        conn.commit()
        conn.close()

    def test_v1_history_lands_in_default_session(self, tmp_path):
        path = str(tmp_path / "v1.db")
        self._make_v1_store(path)
        with SQLiteCheckpointStore(path) as store:
            assert [n.node_id for n in store.read_nodes()] == ["t1", "t2"]
            assert store.read_payload("t1", covar_key({"x"})).data == b"\xaa"
            (read_t2,) = [n for n in store.read_nodes() if n.node_id == "t2"]
            assert read_t2.deleted_keys == (covar_key({"old"}),)
            assert dict(read_t2.dependencies) == {covar_key({"x"}): "t1"}
            assert store.has_session("default")
            version = store._conn.execute("PRAGMA user_version").fetchone()[0]
            assert version == 2

    def test_migrated_store_supports_new_sessions(self, tmp_path):
        path = str(tmp_path / "v1.db")
        self._make_v1_store(path)
        with SQLiteCheckpointStore(path) as store:
            fresh = store.for_session("fresh")
            fresh.write_node(make_node("t1"))
            assert len(store.read_nodes()) == 2  # default untouched
            assert len(fresh.read_nodes()) == 1
        with SQLiteCheckpointStore(path) as back:
            assert len(back.read_nodes()) == 2
            assert len(back.for_session("fresh").read_nodes()) == 1

    def test_migration_is_idempotent(self, tmp_path):
        path = str(tmp_path / "v1.db")
        self._make_v1_store(path)
        for _ in range(3):
            with SQLiteCheckpointStore(path) as store:
                assert len(store.read_nodes()) == 2


# ---------------------------------------------------------------------------
# Satellite fixes: thread discipline, open-failure hygiene, close rollback
# ---------------------------------------------------------------------------


class TestCrossThreadDiscipline:
    def test_sqlite_store_usable_from_worker_thread(self, tmp_path):
        """Regression: the connection was created with the default
        ``check_same_thread=True``, so any touch from a non-creating
        thread (the commit-queue writer, soak workers) blew up with
        ProgrammingError."""
        import threading

        store = SQLiteCheckpointStore(str(tmp_path / "threads.db"))
        failures = []

        def worker():
            try:
                store.begin_checkpoint("t1")
                store.write_node(make_node("t1"))
                store.commit_checkpoint("t1")
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(repr(exc))

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert failures == []
        assert [n.node_id for n in store.read_nodes()] == ["t1"]
        store.close()

    def test_interleaved_threads_serialize_checkpoints(self, tmp_path):
        import threading

        store = SQLiteCheckpointStore(str(tmp_path / "serial.db"))
        views = [store.for_session(f"s{i}") for i in range(4)]
        errors = []

        def worker(view):
            try:
                parent = "t0"
                for i in range(1, 6):
                    view.begin_checkpoint(f"t{i}")
                    view.write_node(make_node(f"t{i}", parent))
                    view.commit_checkpoint(f"t{i}")
                    parent = f"t{i}"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(v,)) for v in views]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        for view in views:
            assert len(view.read_nodes()) == 5
        store.close()


class TestOpenFailureHygiene:
    def test_corrupt_file_does_not_leak_handle(self, tmp_path):
        """Regression: a failed ``_migrate`` on a corrupt file used to
        leave the sqlite3 connection dangling (no close on the error
        path) — visible as a leaked file descriptor."""
        import os

        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not a sqlite database at all")
        open_fds = set(os.listdir("/proc/self/fd"))
        with pytest.raises(Exception):
            SQLiteCheckpointStore(str(path))
        assert set(os.listdir("/proc/self/fd")) <= open_fds

    def test_wrong_schema_does_not_leak_handle(self, tmp_path):
        import os
        import sqlite3

        path = tmp_path / "other.db"
        conn = sqlite3.connect(str(path))
        conn.execute("CREATE TABLE nodes (wrong TEXT)")  # alien 'nodes' shape
        conn.commit()
        conn.close()
        open_fds = set(os.listdir("/proc/self/fd"))
        with pytest.raises(Exception):
            SQLiteCheckpointStore(str(path))
        assert set(os.listdir("/proc/self/fd")) <= open_fds


class TestRollbackOnClose:
    def test_close_rolls_back_open_checkpoint(self, any_store):
        from repro.obs import EventType, Observer

        observer = Observer()
        any_store.observer = observer
        any_store.begin_checkpoint("t1")
        any_store.write_node(make_node("t1"))
        any_store.close()
        events = observer.events.of_type(
            EventType.CHECKPOINT_ROLLED_BACK_ON_CLOSE
        )
        assert len(events) == 1
        assert events[0].fields["node"] == "t1"
        assert observer.metrics.counter("store.rollback_on_close").value == 1

    def test_closed_mid_checkpoint_leaves_no_torn_state(self, tmp_path):
        path = str(tmp_path / "midtxn.db")
        store = SQLiteCheckpointStore(path)
        store.write_node(make_node("t1"))
        store.begin_checkpoint("t2")
        store.write_node(make_node("t2", "t1"))
        store.write_payload(
            StoredPayload(
                node_id="t2", key=covar_key({"x"}), data=b"torn?", serializer="primary"
            )
        )
        store.close()  # explicit rollback, not a leaked transaction
        with SQLiteCheckpointStore(path) as back:
            assert back.last_recovery is not None and back.last_recovery.clean
            assert [n.node_id for n in back.read_nodes()] == ["t1"]

    def test_exit_rolls_back_open_checkpoint(self, tmp_path):
        path = str(tmp_path / "ctx.db")
        with SQLiteCheckpointStore(path) as store:
            store.begin_checkpoint("t1")
            store.write_node(make_node("t1"))
        with SQLiteCheckpointStore(path) as back:
            assert back.read_nodes() == []

    def test_close_without_open_checkpoint_emits_nothing(self, any_store):
        from repro.obs import EventType, Observer

        observer = Observer()
        any_store.observer = observer
        any_store.write_node(make_node("t1"))
        any_store.close()
        assert (
            observer.events.of_type(EventType.CHECKPOINT_ROLLED_BACK_ON_CLOSE)
            == []
        )
