"""Tests for checkpoint stores (SQLite and in-memory backends)."""

from __future__ import annotations

import pytest

from repro.core.covariable import covar_key
from repro.core.storage import (
    SQLiteCheckpointStore,
    StoredNode,
    StoredPayload,
    decode_key,
    encode_key,
)
from repro.errors import StorageError


def make_node(node_id="t1", parent="t0"):
    return StoredNode(
        node_id=node_id,
        parent_id=parent,
        timestamp=int(node_id[1:]),
        execution_count=int(node_id[1:]),
        cell_source=f"x_{node_id} = 1",
        deleted_keys=(covar_key({"old"}),),
        dependencies=((covar_key({"dep"}), "t0"),),
    )


class TestKeyEncoding:
    def test_roundtrip(self):
        key = covar_key({"beta", "alpha"})
        assert decode_key(encode_key(key)) == key

    def test_canonical_order(self):
        assert encode_key(covar_key({"b", "a"})) == encode_key(covar_key({"a", "b"}))

    def test_empty_key(self):
        assert decode_key(encode_key(frozenset())) == frozenset()


class TestStoreParity:
    """Both backends must behave identically (the `any_store` fixture
    parameterizes over them)."""

    def test_node_roundtrip(self, any_store):
        node = make_node()
        any_store.write_node(node)
        (read,) = any_store.read_nodes()
        assert read == node

    def test_nodes_ordered_by_timestamp(self, any_store):
        any_store.write_node(make_node("t3", "t2"))
        any_store.write_node(make_node("t1", "t0"))
        ids = [n.node_id for n in any_store.read_nodes()]
        assert ids == ["t1", "t3"]

    def test_payload_roundtrip(self, any_store):
        payload = StoredPayload(
            node_id="t1", key=covar_key({"x"}), data=b"blob", serializer="primary"
        )
        any_store.write_payload(payload)
        read = any_store.read_payload("t1", covar_key({"x"}))
        assert read.data == b"blob"
        assert read.serializer == "primary"
        assert read.stored

    def test_tombstone_payload(self, any_store):
        any_store.write_payload(
            StoredPayload(node_id="t1", key=covar_key({"g"}), data=None, serializer=None)
        )
        read = any_store.read_payload("t1", covar_key({"g"}))
        assert not read.stored
        assert read.size_bytes == 0

    def test_missing_payload_raises(self, any_store):
        with pytest.raises(StorageError):
            any_store.read_payload("t9", covar_key({"nope"}))

    def test_payloads_of_node(self, any_store):
        for name in ("a", "b"):
            any_store.write_payload(
                StoredPayload(
                    node_id="t1",
                    key=covar_key({name}),
                    data=name.encode(),
                    serializer="primary",
                )
            )
        any_store.write_payload(
            StoredPayload(
                node_id="t2", key=covar_key({"c"}), data=b"c", serializer="primary"
            )
        )
        assert len(any_store.payloads_of("t1")) == 2

    def test_total_payload_bytes(self, any_store):
        any_store.write_payload(
            StoredPayload(
                node_id="t1", key=covar_key({"a"}), data=b"12345", serializer="primary"
            )
        )
        any_store.write_payload(
            StoredPayload(node_id="t1", key=covar_key({"b"}), data=None, serializer=None)
        )
        assert any_store.total_payload_bytes() == 5

    def test_payload_overwrite_replaces(self, any_store):
        key = covar_key({"x"})
        any_store.write_payload(
            StoredPayload(node_id="t1", key=key, data=b"old", serializer="primary")
        )
        any_store.write_payload(
            StoredPayload(node_id="t1", key=key, data=b"newer", serializer="fallback")
        )
        read = any_store.read_payload("t1", key)
        assert read.data == b"newer"
        assert read.serializer == "fallback"


class TestSQLiteDurability:
    def test_persists_across_connections(self, tmp_path):
        path = str(tmp_path / "checkpoints.db")
        with SQLiteCheckpointStore(path) as store:
            store.write_node(make_node())
            store.write_payload(
                StoredPayload(
                    node_id="t1",
                    key=covar_key({"x"}),
                    data=b"durable",
                    serializer="primary",
                )
            )
        with SQLiteCheckpointStore(path) as reopened:
            assert len(reopened.read_nodes()) == 1
            assert reopened.read_payload("t1", covar_key({"x"})).data == b"durable"

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "c.db")
        with SQLiteCheckpointStore(path) as store:
            pass
        with pytest.raises(Exception):
            store.read_nodes()  # connection closed
