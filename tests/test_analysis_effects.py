"""Unit tests for the static cell-effect analyzer (DESIGN.md §8)."""

from __future__ import annotations

import pytest

from repro.analysis import CellEffects, EscapeKind, analyze_cell


class TestBasicEffects:
    def test_simple_assignment(self):
        effects = analyze_cell("x = 1")
        assert effects.writes == {"x"}
        assert not effects.reads
        assert not effects.escapes

    def test_read_then_write(self):
        effects = analyze_cell("y = x + 1")
        assert effects.reads == {"x"}
        assert effects.writes == {"y"}

    def test_aug_assign_reads_and_writes(self):
        effects = analyze_cell("x += 1")
        assert "x" in effects.reads
        assert "x" in effects.writes

    def test_delete(self):
        effects = analyze_cell("del x")
        assert effects.deletes == {"x"}

    def test_subscript_store_is_a_read_not_a_write(self):
        # ``d['k'] = v`` mutates through d without rebinding the name.
        effects = analyze_cell("d['k'] = v")
        assert "d" in effects.reads
        assert "d" not in effects.all_writes

    def test_attribute_store_is_a_read_not_a_write(self):
        effects = analyze_cell("obj.attr = 1")
        assert "obj" in effects.reads
        assert "obj" not in effects.all_writes

    def test_tuple_unpacking(self):
        effects = analyze_cell("a, (b, *c) = xs")
        assert effects.writes == {"a", "b", "c"}
        assert effects.reads == {"xs"}

    def test_builtin_calls_are_reads(self):
        effects = analyze_cell("print(len(xs))")
        assert {"print", "len", "xs"} <= effects.reads

    def test_import_writes_binding(self):
        effects = analyze_cell("import os.path\nimport json as j")
        assert {"os", "j"} <= effects.writes

    def test_from_import_writes_names(self):
        effects = analyze_cell("from collections import deque, Counter as C")
        assert {"deque", "C"} <= effects.writes

    def test_annotated_assignment(self):
        effects = analyze_cell("x: int = 5")
        assert "x" in effects.writes
        assert "int" in effects.reads

    def test_bare_annotation_binds_nothing(self):
        effects = analyze_cell("x: int")
        assert "x" not in effects.all_writes

    def test_syntax_error_yields_empty_effects(self):
        effects = analyze_cell("def broken(:")
        assert effects.syntax_error is not None
        assert not effects.all_accessed
        assert effects.is_opaque


class TestConditionality:
    def test_if_branches_are_conditional(self):
        effects = analyze_cell("if cond:\n    a = 1\nelse:\n    b = 2")
        assert "cond" in effects.reads
        assert effects.conditional_writes == {"a", "b"}
        assert not effects.writes

    def test_loop_bodies_are_conditional(self):
        effects = analyze_cell("for i in xs:\n    total = total + i")
        assert "xs" in effects.reads
        assert "i" in effects.conditional_writes
        assert "total" in effects.conditional_reads
        assert "total" in effects.conditional_writes

    def test_while_test_definite_body_conditional(self):
        effects = analyze_cell("while flag:\n    flag = step()")
        assert "flag" in effects.reads
        assert "flag" in effects.conditional_writes

    def test_try_body_conditional_finally_definite(self):
        effects = analyze_cell(
            "try:\n    a = risky()\nexcept ValueError as err:\n    b = 1\n"
            "finally:\n    c = 2"
        )
        assert {"a", "b", "err"} <= effects.conditional_writes
        assert "err" in effects.conditional_deletes  # unbound on handler exit
        assert "c" in effects.writes

    def test_boolop_tail_conditional(self):
        effects = analyze_cell("a or b")
        assert "a" in effects.reads
        assert "b" in effects.conditional_reads

    def test_ifexp_branches_conditional(self):
        effects = analyze_cell("r = x if cond else y")
        assert "cond" in effects.reads
        assert {"x", "y"} <= effects.conditional_reads

    def test_chained_comparison_tail_conditional(self):
        effects = analyze_cell("a < b < c")
        assert {"a", "b"} <= effects.reads
        assert "c" in effects.conditional_reads

    def test_assert_message_conditional(self):
        effects = analyze_cell("assert ok, msg")
        assert "ok" in effects.reads
        assert "msg" in effects.conditional_reads

    def test_function_bodies_conditional(self):
        effects = analyze_cell("def f():\n    return data")
        assert "f" in effects.writes
        assert "data" in effects.conditional_reads
        assert "data" not in effects.reads

    def test_lambda_body_conditional(self):
        effects = analyze_cell("g = lambda: data")
        assert "g" in effects.writes
        assert "data" in effects.conditional_reads

    def test_default_args_definite(self):
        effects = analyze_cell("def f(x=seed):\n    return x")
        assert "seed" in effects.reads

    def test_class_body_definite(self):
        effects = analyze_cell("class C:\n    limit = threshold")
        assert "C" in effects.writes
        assert "threshold" in effects.reads
        # ``limit`` is a class attribute, not a cell global.
        assert "limit" not in effects.all_writes


class TestScoping:
    def test_function_locals_not_cell_writes(self):
        effects = analyze_cell("def f():\n    x = 1\n    return x")
        assert "x" not in effects.all_writes
        assert "x" not in effects.all_reads

    def test_global_declaration_is_cell_write(self):
        effects = analyze_cell("def f():\n    global g\n    g = 1")
        assert "g" in effects.conditional_writes

    def test_closure_read_is_not_global(self):
        effects = analyze_cell(
            "def outer():\n    y = 1\n    def inner():\n        return y\n"
            "    return inner"
        )
        assert "y" not in effects.all_reads

    def test_comprehension_variable_does_not_leak(self):
        effects = analyze_cell("squares = [i * i for i in rng]")
        assert "squares" in effects.writes
        assert "rng" in effects.reads
        assert "i" not in effects.all_writes
        assert "i" not in effects.all_reads

    def test_comprehension_outer_iterable_definite(self):
        effects = analyze_cell("gen = (f(i) for i in source)")
        assert "source" in effects.reads  # evaluated eagerly
        assert "f" in effects.conditional_reads  # evaluated lazily

    def test_walrus_at_module_level_definite(self):
        effects = analyze_cell("(n := 10)")
        assert "n" in effects.writes

    def test_walrus_in_comprehension_binds_globally(self):
        effects = analyze_cell("ys = [(acc := acc + i) for i in rng]")
        assert "acc" in effects.conditional_writes
        assert "ys" in effects.writes

    def test_nested_function_parameters_shadow(self):
        effects = analyze_cell("def f(data):\n    return data")
        assert "data" not in effects.all_reads

    def test_except_as_shadowing(self):
        effects = analyze_cell(
            "try:\n    pass\nexcept Exception as exc:\n    print(exc)"
        )
        assert "exc" in effects.conditional_writes
        assert "exc" in effects.conditional_deletes


class TestEscapes:
    @pytest.mark.parametrize(
        "source, kind",
        [
            ("exec('x = 1')", EscapeKind.EXEC_EVAL),
            ("y = eval('1 + 1')", EscapeKind.EXEC_EVAL),
            ("code = compile(src, '<s>', 'exec')", EscapeKind.EXEC_EVAL),
            ("g = globals()", EscapeKind.NAMESPACE_INTROSPECTION),
            ("l = locals()", EscapeKind.NAMESPACE_INTROSPECTION),
            ("v = vars()", EscapeKind.NAMESPACE_INTROSPECTION),
            ("m = __import__('os')", EscapeKind.DYNAMIC_IMPORT),
            ("import importlib", EscapeKind.DYNAMIC_IMPORT),
            ("import importlib.util", EscapeKind.DYNAMIC_IMPORT),
            ("from importlib import import_module", EscapeKind.DYNAMIC_IMPORT),
            ("from os.path import *", EscapeKind.STAR_IMPORT),
            ("setattr(obj, name, value)", EscapeKind.NAME_REFLECTION),
            ("delattr(obj, name)", EscapeKind.NAME_REFLECTION),
            ("import sys\nf = sys._getframe()", EscapeKind.FRAME_INTROSPECTION),
            (
                "import inspect\nfr = inspect.currentframe()",
                EscapeKind.FRAME_INTROSPECTION,
            ),
            ("ns = func.__globals__", EscapeKind.FRAME_INTROSPECTION),
            ("d = frame.f_locals", EscapeKind.FRAME_INTROSPECTION),
            ("import os\nos.sep = '/'", EscapeKind.MODULE_PATCH),
            (
                "def bump():\n    global counter\n    counter = 1\nbump()",
                EscapeKind.HIDDEN_GLOBAL_STORE,
            ),
            (
                "ys = [(total := i) for i in rng]",
                EscapeKind.HIDDEN_GLOBAL_STORE,
            ),
            (
                "def drop():\n    global tmp\n    del tmp\ndrop()",
                EscapeKind.HIDDEN_GLOBAL_STORE,
            ),
        ],
    )
    def test_escape_detected(self, source, kind):
        effects = analyze_cell(source)
        assert any(escape.kind is kind for escape in effects.escapes), source
        assert effects.is_opaque

    def test_aliasing_an_escape_callable_is_flagged(self):
        effects = analyze_cell("run = exec")
        assert effects.escapes_of(EscapeKind.EXEC_EVAL)

    def test_star_import_sets_opaque_writes(self):
        effects = analyze_cell("from math import *")
        assert effects.opaque_writes

    def test_escape_span_is_precise(self):
        effects = analyze_cell("x = 1\ny = eval('2')")
        (escape,) = effects.escapes
        assert escape.span.line == 2
        assert escape.span.col == 4

    def test_attribute_store_on_non_module_is_clean(self):
        effects = analyze_cell("obj.attr = 1")
        assert not effects.escapes

    def test_module_level_walrus_is_not_a_hidden_store(self):
        # STORE_NAME at module level goes through the patched dict.
        effects = analyze_cell("(n := 10)")
        assert not effects.escapes_of(EscapeKind.HIDDEN_GLOBAL_STORE)

    def test_function_local_walrus_in_comprehension_is_clean(self):
        # The walrus binds in the enclosing *function* scope, not the
        # module globals — no hidden global store.
        effects = analyze_cell(
            "def f(rng):\n    return [(m := i) for i in rng]"
        )
        assert not effects.escapes

    def test_clean_cell_has_no_escapes(self):
        effects = analyze_cell(
            "xs = [1, 2, 3]\ntotal = sum(xs)\nprint(total)"
        )
        assert not effects.escapes
        assert not effects.is_opaque


class TestDerivedViewsAndMerge:
    def test_definite_accesses(self):
        effects = analyze_cell("y = x\nif y:\n    z = w")
        assert effects.definite_accesses == frozenset({"x", "y"})

    def test_all_writes_union(self):
        effects = analyze_cell("a = 1\nif a:\n    b = 2")
        assert effects.all_writes == frozenset({"a", "b"})

    def test_merge_unions_sets_and_concatenates_escapes(self):
        first = analyze_cell("x = 1")
        second = analyze_cell("y = eval('2')")
        merged = first.merge(second)
        assert merged.writes == {"x", "y"}
        assert len(merged.escapes) == 1
        assert merged.is_opaque

    def test_merge_propagates_syntax_error(self):
        good = analyze_cell("x = 1")
        bad = analyze_cell("def broken(:")
        assert good.merge(bad).syntax_error is not None

    def test_empty_cell(self):
        effects = analyze_cell("")
        assert not effects.all_accessed
        assert not effects.escapes
        assert isinstance(effects, CellEffects)
