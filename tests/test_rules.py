"""Tests for rule-based read-only cell analysis (§6.2 extension)."""

from __future__ import annotations

import pytest

from repro.core.rules import ReadOnlyCellAnalyzer
from repro.core.session import KishuSession
from repro.kernel.kernel import NotebookKernel


@pytest.fixture
def analyzer():
    return ReadOnlyCellAnalyzer()


class TestClassification:
    @pytest.mark.parametrize(
        "source",
        [
            "x",
            "y_train[:10]",                      # the paper's HW-LM case
            "df.head()",                         # the paper's §6.2 example
            "df.head(5)",
            "print(x)",
            "len(data)",
            "x + y * 2",
            "stats['mean']",
            "obj.attr.sub",
            "sorted(xs)[0]",
            "x > 0",
            "f'{x} rows'",
            "(a, b)",
            "",
        ],
    )
    def test_read_only_sources(self, analyzer, source):
        assert analyzer.is_read_only(source)

    @pytest.mark.parametrize(
        "source",
        [
            "df.drop('c')",                      # not in the pure list
            "import numpy",                      # import
            "custom_function(x)",                # unknown callable
            "x += 1",                            # augmented assignment
            "for i in xs:\n    print(i)",        # statements beyond Expr
            "print(xs.pop())",                   # impure argument
            "def f():\n    pass",
            "x[0] if flag else x.clear()",       # unhandled node -> reject
        ],
    )
    def test_rejected_sources(self, analyzer, source):
        assert not analyzer.is_read_only(source)

    def test_assignment_rejected(self, analyzer):
        assert not analyzer.is_read_only("x = 1")

    def test_delete_rejected(self, analyzer):
        assert not analyzer.is_read_only("del x")

    def test_unknown_method_rejected(self, analyzer):
        assert not analyzer.is_read_only("xs.append(1)")

    def test_syntax_error_rejected(self, analyzer):
        assert not analyzer.is_read_only("def broken(:")

    def test_custom_whitelists(self):
        analyzer = ReadOnlyCellAnalyzer(
            pure_builtins=frozenset({"show"}), pure_methods=frozenset()
        )
        assert analyzer.is_read_only("show(x)")
        assert not analyzer.is_read_only("print(x)")
        assert not analyzer.is_read_only("df.head()")


class TestSessionIntegration:
    def test_read_only_cells_skip_detection(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel, rule_analyzer=ReadOnlyCellAnalyzer())
        kernel.run_cell("data = list(range(1000))")
        kernel.run_cell("data[:10]")  # read-only print cell
        metric = session.metrics[-1]
        assert metric.detect_seconds == 0.0
        assert metric.updated_covariables == 0

    def test_mutating_cells_still_detected(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel, rule_analyzer=ReadOnlyCellAnalyzer())
        kernel.run_cell("data = [1]")
        kernel.run_cell("data.append(2)")
        metric = session.metrics[-1]
        assert metric.updated_covariables == 1

    def test_time_travel_unaffected_by_rule_skips(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel, rule_analyzer=ReadOnlyCellAnalyzer())
        kernel.run_cell("data = [1, 2]")
        target = session.head_id
        kernel.run_cell("data[:1]")        # skipped cell in between
        kernel.run_cell("data.clear()")
        session.checkout(target)
        assert kernel.get("data") == [1, 2]

    def test_overhead_reduction_on_print_cells(self):
        def run(with_rules: bool) -> float:
            kernel = NotebookKernel()
            session = KishuSession.init(
                kernel,
                rule_analyzer=ReadOnlyCellAnalyzer() if with_rules else None,
            )
            kernel.run_cell("text = ['word %d' % i for i in range(20000)]")
            for _ in range(5):
                kernel.run_cell("text[:10]")
            return sum(m.detect_seconds for m in session.metrics[1:])

        baseline = run(with_rules=False)
        with_rules = run(with_rules=True)
        assert with_rules < baseline / 3
