"""Cross-module integration tests: full notebooks under Kishu.

These drive the complete system — kernel, tracking, checkpointing,
checkout, fallback — over the real evaluation workloads, asserting the
correctness properties the paper claims (exact restoration, sub-state
loading, failure tolerance).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import KishuSession
from repro.core.storage import SQLiteCheckpointStore
from repro.kernel.kernel import NotebookKernel
from repro.workloads import build_notebook

SCALE = 0.05


def state_snapshot(kernel):
    """Comparable snapshot of user state (numpy-aware)."""
    import pickle

    snapshot = {}
    for name, value in kernel.user_variables().items():
        try:
            snapshot[name] = pickle.dumps(value, protocol=5)
        except Exception:
            snapshot[name] = f"<unpicklable {type(value).__qualname__}>"
    return snapshot


def assert_states_equivalent(expected, actual, *, allow_unpicklable=True):
    assert set(expected) == set(actual), (
        set(expected) ^ set(actual)
    )
    for name in expected:
        if allow_unpicklable and isinstance(expected[name], str):
            assert actual[name] == expected[name]
        else:
            assert actual[name] == actual[name]  # comparable payload exists
            assert expected[name] == actual[name], f"variable {name} differs"


@pytest.mark.parametrize(
    "name", ["Cluster", "TPS", "Sklearn", "HW-LM", "StoreSales", "Qiskit", "TorchGPU", "Ray"]
)
def test_full_notebook_runs_under_kishu(name):
    spec = build_notebook(name, SCALE)
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    for cell in spec.cells:
        kernel.run_cell(cell)
    assert len(session.log()) == spec.cell_count


@pytest.mark.parametrize("name", ["TPS", "Sklearn", "StoreSales"])
def test_undo_restores_exact_prior_state(name):
    spec = build_notebook(name, SCALE)
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    target = spec.primary_undo_index

    snapshots = {}
    for index, cell in enumerate(spec.cells):
        kernel.run_cell(cell)
        if index == target - 1:
            snapshots["before"] = state_snapshot(kernel)
        if index == target:
            break

    session.checkout(f"t{target}")  # node ids are 1-based per cell
    assert_states_equivalent(snapshots["before"], state_snapshot(kernel))


def test_branch_exploration_round_trip():
    spec = build_notebook("Cluster", SCALE)
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    branch_point = spec.branch_point_index
    for cell in spec.cells:
        kernel.run_cell(cell)
    tip_a = session.head_id
    snapshot_a = state_snapshot(kernel)

    session.checkout(f"t{branch_point + 1}")
    for cell in spec.cells[branch_point + 1 :]:
        kernel.run_cell(cell, raise_on_error=False)
    tip_b = session.head_id
    assert tip_b != tip_a

    session.checkout(tip_a)
    assert_states_equivalent(snapshot_a, state_snapshot(kernel))


def test_incremental_checkout_loads_less_than_state():
    spec = build_notebook("Sklearn", 0.1)
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    target = spec.primary_undo_index
    for cell in spec.cells[: target + 1]:
        kernel.run_cell(cell)
    total_stored = session.total_checkpoint_bytes()
    report = session.checkout(f"t{target}")
    # The paper's headline: only the small diverged co-variables move.
    assert report.bytes_loaded < total_stored / 4
    assert report.identical_keys  # most of the state was left in place


def test_qiskit_unserializable_state_round_trips():
    spec = build_notebook("Qiskit", SCALE)
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    for cell in spec.cells:
        kernel.run_cell(cell)
    digest_before = kernel.get("run_digest").hexdigest()
    tip = session.head_id

    session.checkout("t20")
    session.checkout(tip)
    # The hash object cannot be serialized; fallback recomputation rebuilt
    # it by re-running its cells in order.
    assert kernel.get("run_digest").hexdigest() == digest_before


def test_torchgpu_device_state_round_trips():
    spec = build_notebook("TorchGPU", SCALE)
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    for cell in spec.cells:
        kernel.run_cell(cell)
    val_loss = kernel.get("val_loss")
    tip = session.head_id
    session.checkout("t10")
    session.checkout(tip)
    assert kernel.get("val_loss") == val_loss
    assert kernel.get("gpu_train").cpu().data.shape[0] > 0


def test_sqlite_store_full_notebook(tmp_path):
    spec = build_notebook("HW-LM", SCALE)
    kernel = NotebookKernel()
    store = SQLiteCheckpointStore(str(tmp_path / "kishu.db"))
    session = KishuSession.init(kernel, store=store)
    for cell in spec.cells:
        kernel.run_cell(cell)
    report = session.checkout("t40")
    assert report.seconds > 0
    assert len(kernel.user_variables()) > 0
    store.close()


def test_fault_injection_payload_corruption_recovers():
    """Bit-rot every stored payload of one node: checkout must fall back
    to recomputation and still restore the exact state."""
    from repro.core.storage import StoredPayload

    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    kernel.run_cell("import numpy as np")
    kernel.run_cell("base = np.arange(10)")
    kernel.run_cell("derived = base * 2")
    target = session.head_id
    node = session.graph.get(target)
    for key in node.updated:
        session.store.write_payload(
            StoredPayload(node_id=target, key=key, data=b"\x00rot", serializer="primary")
        )
    kernel.run_cell("derived = None")
    session.checkout(target)
    assert np.array_equal(kernel.get("derived"), np.arange(10) * 2)


def test_interleaved_undo_redo_stress():
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    kernel.run_cell("log = []")
    checkpoints = [session.head_id]
    for i in range(10):
        kernel.run_cell(f"log.append({i})")
        checkpoints.append(session.head_id)
    for depth in (3, 7, 1, 10, 5):
        session.checkout(checkpoints[depth])
        assert kernel.get("log") == list(range(depth))
