"""Tests for named refs: branches and tags."""

from __future__ import annotations

import pytest

from repro.core.refs import RefError, RefManager
from repro.core.session import KishuSession
from repro.kernel.kernel import NotebookKernel


@pytest.fixture
def session():
    kernel = NotebookKernel()
    return KishuSession.init(kernel)


class TestRefManager:
    def test_tag_create_resolve(self):
        refs = RefManager()
        refs.create_tag("v1", "t3")
        assert refs.resolve("v1") == "t3"

    def test_tags_immutable(self):
        refs = RefManager()
        refs.create_tag("v1", "t3")
        with pytest.raises(RefError):
            refs.create_tag("v1", "t4")

    def test_tag_delete(self):
        refs = RefManager()
        refs.create_tag("v1", "t3")
        refs.delete_tag("v1")
        assert refs.resolve("v1") is None
        with pytest.raises(RefError):
            refs.delete_tag("v1")

    def test_branch_follows_head_only_when_active(self):
        refs = RefManager()
        refs.create_branch("dev", "t1")
        refs.advance_active_branch("t2")  # no active branch: no-op
        assert refs.resolve("dev") == "t1"
        refs.activate_branch("dev")
        refs.advance_active_branch("t3")
        assert refs.resolve("dev") == "t3"

    def test_cannot_delete_active_branch(self):
        refs = RefManager()
        refs.create_branch("dev", "t1")
        refs.activate_branch("dev")
        with pytest.raises(RefError):
            refs.delete_branch("dev")

    def test_branch_shadows_same_named_tag(self):
        refs = RefManager()
        refs.create_tag("x", "t1")
        refs.create_branch("x", "t2")
        assert refs.resolve("x") == "t2"

    def test_invalid_names_rejected(self):
        refs = RefManager()
        for bad in ("", " lead", "has space", "-lead", "a\nb"):
            with pytest.raises(RefError):
                refs.create_tag(bad, "t1")

    def test_names_of_decoration(self):
        refs = RefManager()
        refs.create_branch("dev", "t2")
        refs.create_tag("v1", "t2")
        assert refs.names_of("t2") == ["dev", "tag:v1"]
        assert refs.names_of("t9") == []


class TestSessionRefs:
    def test_tag_and_checkout_by_tag(self, session):
        session.run_cell("x = 'clean'")
        session.tag("before-mess")
        session.run_cell("x = 'messy'")
        session.checkout("before-mess")
        assert session.kernel.get("x") == "clean"

    def test_tag_explicit_target(self, session):
        session.run_cell("a = 1")
        session.run_cell("b = 2")
        session.tag("first", "t1")
        session.checkout("first")
        assert session.head_id == "t1"

    def test_tag_unknown_target_rejected(self, session):
        from repro.errors import CheckpointNotFoundError

        session.run_cell("a = 1")
        with pytest.raises(CheckpointNotFoundError):
            session.tag("ghost", "t42")

    def test_branch_advances_with_commits(self, session):
        session.run_cell("x = 1")
        session.branch("experiment")
        session.run_cell("x = 2")
        assert session.refs.resolve("experiment") == session.head_id

    def test_branch_switching_round_trip(self, session):
        session.run_cell("x = 'base'")
        session.branch("main-line")
        session.run_cell("x = 'main work'")
        session.checkout("t1")
        session.branch("side-line")
        session.run_cell("x = 'side work'")

        session.checkout("main-line")
        assert session.kernel.get("x") == "main work"
        session.checkout("side-line")
        assert session.kernel.get("x") == "side work"
        # Each branch kept advancing independently.
        assert session.refs.resolve("main-line") != session.refs.resolve("side-line")

    def test_detached_head_does_not_move_branches(self, session):
        session.run_cell("x = 1")
        session.branch("dev")
        dev_tip_before = session.refs.resolve("dev")
        session.checkout("t1")  # detached (by id)
        session.run_cell("y = 2")
        assert session.refs.resolve("dev") == dev_tip_before

    def test_log_decorated_with_refs(self, session):
        session.run_cell("x = 1")
        session.tag("v1")
        session.branch("dev")
        entries = {e.node_id: e for e in session.log()}
        assert "dev" in entries["t1"].refs
        assert "tag:v1" in entries["t1"].refs


class TestCliRefs:
    def test_tag_and_branch_commands(self):
        import io

        from repro.cli import KishuRepl

        stdin = io.StringIO(
            "x = 'good'\n"
            "%tag safe\n"
            "%branch risky\n"
            "x = 'bad'\n"
            "%checkout safe\n"
            "x\n"
            "%log\n"
            "%quit\n"
        )
        stdout = io.StringIO()
        KishuRepl(stdin=stdin, stdout=stdout).run()
        output = stdout.getvalue()
        assert "tagged t1 as 'safe'" in output
        assert "created branch 'risky'" in output
        assert "Out[3]: 'good'" in output  # x restored to pre-branch value
        assert "tag:safe" in output
