"""Tests for cost-based Det-replay (the paper's §7.5.2 future work)."""

from __future__ import annotations

import pytest

from repro.baselines import CostBasedDetReplayMethod, CostBasedDetReplaySession
from repro.bench import run_notebook_with_method
from repro.kernel.cells import Cell
from repro.kernel.kernel import NotebookKernel
from repro.workloads.spec import NotebookSpec, make_cells


def session_with_budget(budget: float) -> tuple:
    kernel = NotebookKernel()
    session = CostBasedDetReplaySession(kernel, replay_budget_seconds=budget)
    session.attach()
    return kernel, session


SLOW_DET_CELL = (
    "from repro.workloads.compute import simulate_compute\n"
    "model = sorted(range(100))\n"
    "simulate_compute(0.08)"
)


class TestSkipDecision:
    def test_cheap_deterministic_cell_skipped(self):
        kernel, session = session_with_budget(budget=10.0)
        kernel.run_cell(Cell.make("model = sorted([2, 1])", "c0", "deterministic"))
        assert session.metrics[-1].bytes_written == 0
        assert session.skip_decisions[-1] is False

    def test_expensive_deterministic_cell_stored(self):
        kernel, session = session_with_budget(budget=0.01)
        kernel.run_cell(Cell.make(SLOW_DET_CELL, "c0", "deterministic"))
        assert session.metrics[-1].bytes_written > 0
        assert session.skip_decisions[-1] is True

    def test_nondeterministic_cells_always_stored(self):
        kernel, session = session_with_budget(budget=10.0)
        kernel.run_cell("plain = [1, 2]")
        assert session.metrics[-1].bytes_written > 0

    def test_replay_cost_accumulates_through_skipped_chain(self):
        # Two skipped cells in a chain: the second's replay cost includes
        # the first's, eventually exceeding the budget.
        kernel, session = session_with_budget(budget=0.1)
        chain_cell = (
            "from repro.workloads.compute import simulate_compute\n"
            "acc = sorted([3, 1])\n"
            "simulate_compute(0.06)"
        )
        kernel.run_cell(Cell.make(chain_cell, "c0", "deterministic"))
        assert session.skip_decisions[-1] is False  # 0.06 < 0.1: skipped
        dependent_cell = (
            "acc = sorted(acc + [0])\n"
            "simulate_compute(0.06)"
        )
        kernel.run_cell(Cell.make(dependent_cell, "c1", "deterministic"))
        # 0.06 + ancestor 0.06 > 0.1: stored despite being deterministic.
        assert session.skip_decisions[-1] is True


class TestCheckoutBehaviour:
    def test_skipped_cells_replay_correctly(self):
        kernel, session = session_with_budget(budget=10.0)
        kernel.run_cell(Cell.make("model = sorted([3, 1, 2])", "c0", "deterministic"))
        target = session.head_id
        kernel.run_cell("model = None")
        report = session.checkout(target)
        assert kernel.get("model") == [1, 2, 3]
        assert report.recomputed_keys

    def test_bounded_checkout_vs_plain_detreplay(self):
        """With a tight budget, checkout avoids the long replay chain that
        plain Det-replay would incur (the paper's Cluster 1050 s case)."""
        from repro.baselines import DetReplayMethod

        entries = [("from repro.workloads.compute import simulate_compute", ())]
        for i in range(4):
            entries.append(
                (
                    f"model_{i} = sorted(range({i + 2}))\n"
                    "simulate_compute(0.05)",
                    ("deterministic", "model-train"),
                )
            )
        entries.append(("done = 1", ()))
        spec = NotebookSpec(
            name="Fits", topic="t", library="l", final=True,
            hidden_states=0, out_of_order_cells=0, cells=make_cells(entries),
        )

        def overwrite_and_switch_back(run):
            """Overwrite every model, then check out the pre-overwrite
            state — forcing each model co-variable to be restored."""
            target_index = len(spec.cells) - 1
            run.kernel.user_ns.begin_recording()
            result = run.kernel.run_cell(
                "model_0 = model_1 = model_2 = model_3 = None"
            )
            record = run.kernel.user_ns.end_recording()
            run.method.on_cell_executed(result, record)
            return run.method.checkout(target_index)

        plain = run_notebook_with_method(spec, DetReplayMethod)
        plain_undo = overwrite_and_switch_back(plain)

        def tight_budget_factory(kernel):
            return CostBasedDetReplayMethod(kernel, replay_budget_seconds=0.01)

        bounded = run_notebook_with_method(spec, tight_budget_factory)
        bounded_undo = overwrite_and_switch_back(bounded)

        assert not plain_undo.failed and not bounded_undo.failed
        assert bounded_undo.restored["model_0"] == [0, 1]
        # Plain det-replay replays every fit (~0.2 s); the cost-based
        # variant loads stored payloads instead.
        assert bounded_undo.seconds < plain_undo.seconds / 3
        # The flip side: the cost-based variant stored more.
        assert bounded.total_storage_bytes > plain.total_storage_bytes
