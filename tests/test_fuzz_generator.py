"""The seeded grammar: (seed, config) fully determines the program.

Reproducibility is the fuzzer's foundation — a divergence report is only
actionable if ``repro fuzz --seed S`` regenerates the exact program, in
any process, under any ``PYTHONHASHSEED``.
"""

import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.fuzz.grammar import (
    CONSTRUCTS,
    PROFILES,
    FuzzConfig,
    ProgramGenerator,
    profile,
)
from repro.kernel.kernel import NotebookKernel


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = ProgramGenerator().generate(123)
        b = ProgramGenerator().generate(123)
        assert a.cells == b.cells
        assert a.branch_cells == b.branch_cells
        assert a.kinds == b.kinds
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self):
        prints = {ProgramGenerator().generate(s).fingerprint() for s in range(20)}
        assert len(prints) == 20

    def test_config_is_part_of_identity(self):
        small = ProgramGenerator(FuzzConfig(cells=5)).generate(7)
        large = ProgramGenerator(FuzzConfig(cells=9)).generate(7)
        assert small.fingerprint() != large.fingerprint()
        # The shared prefix decisions agree: cells is a suffix concern.
        assert small.cells == large.cells[: len(small.cells)]

    def test_program_shape_matches_config(self):
        config = FuzzConfig(cells=11, branch_cells=3)
        program = ProgramGenerator(config).generate(0)
        assert len(program.cells) == 11
        assert len(program.branch_cells) == 3
        assert len(program.kinds) == 11

    def test_text_joins_cells_with_separator(self):
        program = ProgramGenerator(FuzzConfig(cells=3, branch_cells=0)).generate(1)
        assert program.text.count("\n# ---\n") == 2


class TestHashSeedIndependence:
    """Generated text must not depend on interpreter hash salting.

    The generator's namespace bookkeeping is all insertion-ordered lists;
    this subprocess test is the cross-check that no dict/set iteration
    order leaks into cell text (the same contract as the VarGraph
    fingerprint test).
    """

    SCRIPT = textwrap.dedent(
        """
        from repro.fuzz.grammar import ProgramGenerator, profile
        for name in ("default", "escape-heavy", "plain-data", "libsim-heavy"):
            generator = ProgramGenerator(profile(name))
            for seed in range(6):
                print(name, seed, generator.generate(seed).fingerprint())
        """
    )

    def _fingerprints(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(pathlib.Path(__file__).parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return result.stdout

    def test_identical_across_hash_seeds(self):
        first = self._fingerprints("0")
        second = self._fingerprints("424242")
        assert first == second
        assert len(first.splitlines()) == 24


class TestGrammarCoverage:
    def test_all_constructs_appear_across_seeds(self):
        generator = ProgramGenerator()
        seen = set()
        for seed in range(40):
            seen.update(generator.generate(seed).kinds)
        assert seen == set(CONSTRUCTS)

    def test_plain_data_profile_excludes_hard_families(self):
        generator = ProgramGenerator(profile("plain-data"))
        for seed in range(15):
            kinds = set(generator.generate(seed).kinds)
            assert not kinds & {"escape", "libsim", "closure", "generator", "consume"}

    def test_first_cell_never_references_missing_state(self):
        # With an empty namespace, infeasible picks re-route to creators.
        generator = ProgramGenerator()
        for seed in range(30):
            first = generator.generate(seed).kinds[0]
            # A first-cell "helper" is always a definition (calls need
            # live data), which references nothing.
            assert first in ("create", "generator", "escape", "libsim", "helper")

    def test_generated_programs_execute(self):
        # Cells may legitimately raise (deleted names and escapes are part
        # of the grammar) but must be valid syntax the kernel can run.
        generator = ProgramGenerator(FuzzConfig(cells=12, branch_cells=2))
        for seed in range(10):
            program = generator.generate(seed)
            kernel = NotebookKernel()
            for cell in program.cells + program.branch_cells:
                kernel.run_cell(cell, raise_on_error=False)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cells": 0},
            {"branch_cells": -1},
            {"max_live": 1},
            {"w_mutate": -0.5},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FuzzConfig(**kwargs)

    def test_all_zero_weights_rejected(self):
        zeros = {f"w_{name}": 0.0 for name in CONSTRUCTS}
        with pytest.raises(ValueError, match="at least one"):
            FuzzConfig(**zeros)

    def test_weights_follow_canonical_order(self):
        assert [name for name, _ in FuzzConfig().weights()] == list(CONSTRUCTS)

    def test_profile_unknown_name(self):
        with pytest.raises(ValueError, match="unknown fuzz profile"):
            profile("nonesuch")

    def test_profile_overrides_apply(self):
        config = profile("escape-heavy", cells=5)
        assert config.w_escape == PROFILES["escape-heavy"]["w_escape"]
        assert config.cells == 5
