"""The interprocedural function-summary layer (DESIGN.md §14).

Covers the summary extractor and fixpoint, the versioned notebook
table (registration, rebind/opaque invalidation, aliases), call-site
expansion and de-escalation in the cross-validator, the three
soundness closures the fuzz oracle forced (summary-informed record
completion, the checkout hidden-store barrier, stale-summary call
escalation), and the byte-stable golden outputs of ``repro summaries``
and the KSH40x lint family.
"""

from __future__ import annotations

import io
import os

import pytest

from repro.analysis import (
    CrossValidator,
    EscapeKind,
    NotebookSummaries,
    analyze_cell,
)
from repro.core.session import KishuSession
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def record_of(gets=(), sets=(), deletes=()):
    record = AccessRecord()
    record.gets |= set(gets)
    record.sets |= set(sets)
    record.deletes |= set(deletes)
    return record


def table_of(*sources):
    table = NotebookSummaries()
    for source in sources:
        table.advance(source)
    return table


HIDDEN_STORE_DEF = (
    "def bump(step):\n"
    "    global counter\n"
    "    counter = [step, step + 1]\n"
    "    return step % 7\n"
)
MUTATOR_DEF = (
    "def push(xs, item):\n"
    "    xs.append(item)\n"
    "    return len(xs)\n"
)
PURE_DEF = "def mean(values):\n    return sum(values) / len(values)\n"


class TestExtraction:
    def test_pure_helper_is_tracking_safe(self):
        view = table_of(PURE_DEF).view_at(0)
        summary = view.get("mean")
        assert summary is not None
        assert summary.is_tracking_safe
        assert not summary.writes and not summary.mutated_params

    def test_hidden_store_recorded_as_write_and_escape(self):
        summary = table_of(HIDDEN_STORE_DEF).view_at(0).get("bump")
        assert summary.writes == frozenset({"counter"})
        assert [e.kind for e in summary.escapes] == [
            EscapeKind.HIDDEN_GLOBAL_STORE
        ]
        assert not summary.is_tracking_safe

    def test_parameter_mutation_by_position(self):
        summary = table_of(MUTATOR_DEF).view_at(0).get("push")
        assert "xs" in summary.mutated_params
        assert "item" not in summary.mutated_params

    def test_transitive_effects_through_direct_calls(self):
        table = table_of(
            HIDDEN_STORE_DEF,
            "def outer(n):\n    return bump(n) + 1\n",
        )
        summary = table.view_at(1).get("outer")
        assert "counter" in summary.writes
        assert any(
            e.kind is EscapeKind.HIDDEN_GLOBAL_STORE for e in summary.escapes
        )

    def test_recursion_reaches_fixpoint(self):
        table = table_of(
            "def fact(n):\n"
            "    global depth\n"
            "    depth = n\n"
            "    return 1 if n <= 1 else n * fact(n - 1)\n"
        )
        summary = table.view_at(0).get("fact")
        assert "depth" in summary.writes

    def test_higher_order_param_call_is_unknown(self):
        summary = table_of(
            "def apply(f, x):\n    return f(x)\n"
        ).view_at(0).get("apply")
        assert summary.calls_params == frozenset({"f"})


class TestTableLifecycle:
    def test_rebind_invalidates(self):
        table = table_of(PURE_DEF, "mean = 3")
        assert table.view_at(1).get("mean") is None
        assert [r.to_dict() for r in table.invalidations] == [
            {"cell": 1, "name": "mean", "reason": "rebound by a later cell"}
        ]

    def test_opaque_cell_wipes_all(self):
        table = table_of(PURE_DEF, MUTATOR_DEF, "ns = globals()")
        view = table.view_at(2)
        assert view.get("mean") is None and view.get("push") is None
        assert {r.name for r in table.invalidations} == {"mean", "push"}

    def test_failed_cell_registers_nothing(self):
        table = NotebookSummaries()
        effects = analyze_cell(PURE_DEF, table.view_for_cell(PURE_DEF))
        table.observe_cell(PURE_DEF, effects, executed=False)
        assert table.view_at(0).get("mean") is None

    def test_alias_assignment_follows_summary(self):
        table = table_of(PURE_DEF, "avg = mean")
        assert table.view_at(1).get("avg") is not None

    def test_redefinition_revives_invalidated_name(self):
        table = table_of(PURE_DEF, "mean = 3", PURE_DEF)
        view = table.view_at(2)
        assert view.get("mean") is not None
        assert not view.is_invalidated("mean")

    def test_view_is_invalidated(self):
        table = table_of(PURE_DEF, "mean = 3")
        assert table.view_at(1).is_invalidated("mean")
        assert not table.view_at(0).is_invalidated("mean")


class TestCallExpansion:
    def test_call_site_inherits_summary_writes(self):
        table = table_of(HIDDEN_STORE_DEF)
        source = "tick = bump(5)"
        effects = analyze_cell(source, table.view_for_cell(source))
        assert "counter" in effects.summary_writes
        assert "counter" in effects.conditional_writes
        # The hidden store is *compensated*: the fixpoint already put
        # `counter` in the summary's write set, and the session folds
        # summary writes into the runtime record, so targeted detection
        # covers the store without escalating the call site.
        assert not effects.escapes
        outcome = CrossValidator().validate(
            effects, record_of(gets={"bump"}, sets={"tick", "counter"})
        )
        assert not outcome.escalate

    def test_unknown_callee_still_surfaces_hidden_store(self):
        # A helper whose body calls an unknown function cannot bound its
        # own effects, so its hidden store must surface and escalate.
        table = table_of(
            "def wild(step):\n"
            "    global counter\n"
            "    counter = mystery(step)\n"
            "    return counter\n"
        )
        source = "tick = wild(5)"
        effects = analyze_cell(source, table.view_for_cell(source))
        assert any("call to wild() reaches" in e.detail for e in effects.escapes)
        assert CrossValidator().validate(
            effects, record_of(gets={"wild"}, sets={"tick"})
        ).escalate

    def test_exec_helper_still_surfaces(self):
        # Non-store escapes (exec/eval, frame access, ...) are never
        # compensated: the summary cannot name what they touch.
        table = table_of(
            "def raw(code):\n"
            "    exec(code)\n"
        )
        source = "raw('x = 1')"
        effects = analyze_cell(source, table.view_for_cell(source))
        assert any("call to raw() reaches" in e.detail for e in effects.escapes)

    def test_def_cell_deescalates(self):
        # The whole point of deferral: defining a hidden-store helper no
        # longer escalates the (otherwise effect-free) def cell.
        table = NotebookSummaries()
        effects = analyze_cell(
            HIDDEN_STORE_DEF, table.view_for_cell(HIDDEN_STORE_DEF)
        )
        assert effects.deferred_escapes and not effects.escapes
        validator = CrossValidator()
        outcome = validator.validate(effects, record_of(sets={"bump"}))
        assert not outcome.escalate
        assert validator.stats.summary_deescalations == 1

    def test_pure_helper_call_site_stays_quiet(self):
        table = table_of(PURE_DEF)
        source = "avg = mean([1, 2])"
        effects = analyze_cell(source, table.view_for_cell(source))
        assert not effects.escapes
        outcome = CrossValidator().validate(
            effects, record_of(gets={"mean"}, sets={"avg"})
        )
        assert not outcome.escalate

    def test_without_summaries_the_def_cell_escalates(self):
        effects = analyze_cell(HIDDEN_STORE_DEF + "tick = bump(5)\n", None)
        outcome = CrossValidator().validate(
            effects, record_of(sets={"bump", "tick"})
        )
        assert outcome.escalate

    def test_stale_summary_call_escalates(self):
        # Soundness closure: after an opaque cell drops every summary, a
        # call to a once-summarized helper has unknowable effects — and a
        # hidden STORE_GLOBAL inside it would bypass the runtime record.
        table = table_of(HIDDEN_STORE_DEF, "ns = globals()")
        source = "tick = bump(5)"
        effects = analyze_cell(source, table.view_for_cell(source))
        assert [e.kind for e in effects.escapes] == [
            EscapeKind.STALE_SUMMARY_CALL
        ]
        outcome = CrossValidator().validate(
            effects, record_of(gets={"bump"}, sets={"tick"})
        )
        assert outcome.escalate

    def test_stale_summary_alias_escalates(self):
        table = table_of(HIDDEN_STORE_DEF, "bump = 3")
        source = "cb = bump"
        effects = analyze_cell(source, table.view_for_cell(source))
        assert any(
            e.kind is EscapeKind.STALE_SUMMARY_CALL for e in effects.escapes
        )

    def test_never_summarized_call_stays_quiet(self):
        table = table_of(PURE_DEF)
        source = "out = undefined_helper(1)"
        effects = analyze_cell(source, table.view_for_cell(source))
        assert not effects.escapes
        assert effects.summary_unknown_calls == 1

    def test_callback_folds_full_summary(self):
        table = table_of(HIDDEN_STORE_DEF)
        source = "order = sorted([3, 1, 2], key=bump)"
        effects = analyze_cell(source, table.view_for_cell(source))
        # Passed as a callback, the helper may run inside sorted(): its
        # write set folds in (conservatively) and the bounded hidden
        # store is compensated exactly as at a direct call site.
        assert "counter" in effects.summary_writes
        assert not any(
            e.kind is EscapeKind.HIDDEN_GLOBAL_STORE for e in effects.escapes
        )


class TestSessionSoundness:
    """Minimal distillations of the fuzz-oracle divergences (func-heavy
    campaign): each was a way a helper's hidden STORE_GLOBAL could slip
    past tracking once call sites stopped escalating."""

    def _session(self):
        kernel = NotebookKernel()
        return kernel, KishuSession.init(kernel)

    def test_hidden_rebind_versions_advance(self):
        # Record completion: the second and third calls rebind `counter`
        # invisibly (STORE_GLOBAL bypasses the patched dict); the
        # summary-informed record must still advance its version.
        kernel, session = self._session()
        heads = []
        for cell in (HIDDEN_STORE_DEF, "a = bump(1)", "b = bump(2)"):
            kernel.run_cell(cell)
            heads.append(session.head_id)
        assert kernel.user_ns.peek("counter") == [2, 3]
        session.checkout(heads[1])
        assert kernel.user_ns.peek("counter") == [1, 2]
        session.checkout(heads[2])
        assert kernel.user_ns.peek("counter") == [2, 3]

    def test_hidden_delete_versions_advance(self):
        kernel, session = self._session()
        deleter = (
            "def drop():\n"
            "    global counter\n"
            "    del counter\n"
            "    return 0\n"
        )
        heads = []
        for cell in (HIDDEN_STORE_DEF, deleter, "a = bump(1)", "z = drop()"):
            kernel.run_cell(cell)
            heads.append(session.head_id)
        assert kernel.user_ns.peek("counter") is None
        session.checkout(heads[2])
        assert kernel.user_ns.peek("counter") == [1, 2]
        session.checkout(heads[3])
        assert kernel.user_ns.peek("counter") is None

    def test_stale_call_after_opaque_cell_is_detected(self):
        # Seed-14 distillation: an opaque cell wipes the table, then a
        # later call rebinds `counter` with no summary to attribute the
        # write to — the stale-summary escalation must catch it.
        kernel, session = self._session()
        heads = []
        for cell in (
            HIDDEN_STORE_DEF,
            "a = bump(1)",
            "ns_keys = sorted(globals().keys())[:1]",
            "b = bump(2)",
        ):
            kernel.run_cell(cell)
            heads.append(session.head_id)
        assert kernel.user_ns.peek("counter") == [2, 3]
        session.checkout(heads[1])
        assert kernel.user_ns.peek("counter") == [1, 2]
        session.checkout(heads[3])
        assert kernel.user_ns.peek("counter") == [2, 3]

    def test_summary_stats_flow_to_telemetry(self):
        kernel, session = self._session()
        for cell in (HIDDEN_STORE_DEF, "a = bump(1)"):
            kernel.run_cell(cell)
        stats = session.analysis_stats
        assert stats.summary_expansions >= 1
        assert stats.summary_deferred_escapes >= 1
        assert stats.summary_deescalations >= 1

    def test_summaries_resync_after_checkout(self):
        # The table is session state: checking out past the helper's
        # definition must forget it.
        kernel, session = self._session()
        kernel.run_cell("x = 1")
        before_def = session.head_id
        kernel.run_cell(PURE_DEF)
        assert session.summaries.view_for_cell("pass").get("mean") is not None
        session.checkout(before_def)
        assert session.summaries.view_for_cell("pass").get("mean") is None

    def test_use_summaries_false_disables_table(self):
        kernel = NotebookKernel()
        session = KishuSession.init(kernel, use_summaries=False)
        kernel.run_cell("x = 1")
        assert session.summaries is None


class TestGoldenOutput:
    """``repro summaries`` and the KSH40x lint must be byte-stable."""

    @pytest.fixture(autouse=True)
    def _repo_root_cwd(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)

    def run_main(self, main, argv):
        from repro import cli

        buffer = io.StringIO()
        getattr(cli, main)(argv, stdout=buffer)
        return buffer.getvalue()

    def test_summaries_json_matches_golden(self):
        argv = ["tests/golden/summaries_fixture.py", "--format", "json"]
        first = self.run_main("summaries_main", argv)
        second = self.run_main("summaries_main", argv)
        assert first == second  # byte-stable across runs
        with open(os.path.join(GOLDEN_DIR, "summaries_report.json")) as handle:
            assert first == handle.read()

    def test_ksh40x_lint_matches_golden(self):
        argv = [
            "tests/golden/summaries_fixture.py", "--notebook", "--format", "json"
        ]
        first = self.run_main("lint_main", argv)
        second = self.run_main("lint_main", argv)
        assert first == second
        with open(os.path.join(GOLDEN_DIR, "summaries_lint.json")) as handle:
            assert first == handle.read()
        for rule in ("KSH401", "KSH402", "KSH403"):
            assert rule in first

    def test_summaries_text_mode_mentions_live_functions(self):
        out = self.run_main(
            "summaries_main", ["tests/golden/summaries_fixture.py"]
        )
        assert "pure_mean" in out
        assert "invalidated" in out


# ---------------------------------------------------------------------------
# Property: summary-informed write sets over-approximate runtime writes
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

GLOBAL_TARGETS = ("ga", "gb", "gc")

helper_bodies = st.sampled_from(
    [
        # (body template, behavior tag)
        ("    global {g}\n    {g} = [n, n + 1]\n    return n", "store"),
        ("    global {g}\n    {g} = n\n    return n * 2", "store"),
        ("    return n + 1", "pure"),
        ("    xs.append(n)\n    return len(xs)", "mutate"),
    ]
)
global_picks = st.sampled_from(GLOBAL_TARGETS)
call_args = st.integers(min_value=0, max_value=9)


class TestWriteSupersetProperty:
    """For any helper-then-call notebook, the summary-informed static
    write set (definite ∪ conditional, which includes every expanded
    ``summary_write``) must over-approximate the names the execution
    actually rebound — the invariant that makes summary-informed record
    completion and Lemma-1 pruning sound."""

    @settings(max_examples=60, deadline=None)
    @given(body=helper_bodies, g=global_picks, n=call_args)
    def test_static_writes_cover_runtime_rebinds(self, body, g, n):
        template, tag = body
        uses_xs = "xs" in template
        params = "xs, n" if uses_xs else "n"
        def_cell = f"def helper({params}):\n" + template.format(g=g)
        call_cell = (
            f"out = helper(seed_list, {n})" if uses_xs else f"out = helper({n})"
        )

        table = NotebookSummaries()
        kernel = NotebookKernel()
        kernel.run_cell("seed_list = [0]")
        table.advance("seed_list = [0]")
        for cell in (def_cell, call_cell):
            view = table.view_for_cell(cell)
            effects = analyze_cell(cell, view)
            before = dict(kernel.user_ns.user_items())
            kernel.run_cell(cell, raise_on_error=False)
            after = dict(kernel.user_ns.user_items())
            rebound = {
                name
                for name in set(before) | set(after)
                if before.get(name) is not after.get(name)
            }
            static_writes = (
                effects.writes
                | effects.conditional_writes
                | effects.deletes
                | effects.conditional_deletes
            )
            assert rebound <= static_writes, (
                f"cell {cell!r}: runtime rebound {sorted(rebound)} but the "
                f"summary-informed static write set is {sorted(static_writes)}"
            )
            assert effects.summary_writes <= effects.conditional_writes
            table.observe_cell(cell, effects)
