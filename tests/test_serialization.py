"""Tests for the pickler chain, by-value functions, and blocklist (§6.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialization import (
    Blocklist,
    FallbackPickler,
    PrimaryPickler,
    SerializerChain,
    active_globals,
)
from repro.errors import DeserializationError, SerializationError


@pytest.fixture
def chain():
    return SerializerChain()


class TestPrimaryPickler:
    def test_roundtrip_plain_data(self):
        pickler = PrimaryPickler()
        payload = {"a": [1, 2], "b": np.arange(4)}
        out = pickler.loads(pickler.dumps(payload))
        assert out["a"] == [1, 2]
        assert np.array_equal(out["b"], np.arange(4))

    def test_module_pickles_by_reference(self):
        pickler = PrimaryPickler()
        out = pickler.loads(pickler.dumps({"np": np}))
        assert out["np"] is np

    def test_refuses_fallback_marked_objects(self):
        class NeedsFallback:
            _requires_fallback_pickler = True

        pickler = PrimaryPickler()
        with pytest.raises(Exception):
            pickler.dumps(NeedsFallback())


class TestFallbackPickler:
    def test_handles_fallback_marked_objects(self):
        from repro.libsim.deep_learning import SimMixedPrecisionScaler

        # requires-fallback libsim class round-trips via the fallback.
        scaler = SimMixedPrecisionScaler()
        pickler = FallbackPickler()
        restored = pickler.loads(pickler.dumps(scaler))
        assert restored.scale == scaler.scale

    def test_lambda_by_value(self):
        pickler = FallbackPickler()
        func = eval("lambda x: x * 3")
        restored = pickler.loads(pickler.dumps(func))
        assert restored(4) == 12

    def test_closure_by_value(self):
        def outer(n):
            def inner(x):
                return x + n

            return inner

        pickler = FallbackPickler()
        restored = pickler.loads(pickler.dumps(outer(10)))
        assert restored(5) == 15

    def test_defaults_preserved(self):
        namespace = {}
        exec("def f(x, y=7):\n    return x + y", namespace)
        pickler = FallbackPickler()
        restored = pickler.loads(pickler.dumps(namespace["f"]))
        assert restored(1) == 8

    def test_rebuilt_function_binds_active_globals(self):
        cell_ns = {"__builtins__": __builtins__}
        exec("base = 100\ndef f():\n    return base + 1", cell_ns)
        pickler = FallbackPickler()
        blob = pickler.dumps(cell_ns["f"])
        target = {"__builtins__": __builtins__, "base": 200}
        with active_globals(target):
            restored = pickler.loads(blob)
        assert restored() == 201

    def test_importable_function_stays_by_reference(self):
        import os.path

        pickler = FallbackPickler()
        restored = pickler.loads(pickler.dumps(os.path.join))
        assert restored is os.path.join


class TestChain:
    def test_primary_preferred(self, chain):
        _, name = chain.serialize({"x"}, {"x": [1]})
        assert name == "primary"

    def test_falls_back_for_cell_functions(self, chain):
        ns = {}
        exec("def g(a):\n    return a * 2", ns)
        blob, name = chain.serialize({"g"}, {"g": ns["g"]})
        assert name == "fallback"
        restored = chain.deserialize(blob, name)
        assert restored["g"](3) == 6

    def test_raises_when_all_fail(self, chain):
        gen = (i for i in range(3))
        with pytest.raises(SerializationError) as excinfo:
            chain.serialize({"gen"}, {"gen": gen})
        assert "gen" in str(excinfo.value)

    def test_deserialize_unknown_pickler(self, chain):
        with pytest.raises(DeserializationError):
            chain.deserialize(b"anything", "no-such-pickler")

    def test_deserialize_corrupt_payload(self, chain):
        blob, name = chain.serialize({"x"}, {"x": 1})
        with pytest.raises(DeserializationError):
            chain.deserialize(blob[:-3] + b"!!!", name)

    def test_shared_references_preserved_within_payload(self, chain):
        shared = [1, 2]
        blob, name = chain.serialize({"a", "b"}, {"a": shared, "b": {"r": shared}})
        out = chain.deserialize(blob, name)
        assert out["b"]["r"] is out["a"]


class TestBlocklist:
    def test_membership(self):
        blocklist = Blocklist({"SimCrossValidator"})
        assert "SimCrossValidator" in blocklist
        assert blocklist.blocks_any({"int", "SimCrossValidator"})
        assert not blocklist.blocks_any({"int", "list"})

    def test_add_discard(self):
        blocklist = Blocklist()
        blocklist.add("Bad")
        assert len(blocklist) == 1
        blocklist.discard("Bad")
        assert len(blocklist) == 0

    def test_from_file(self, tmp_path):
        path = tmp_path / "blocklist.txt"
        path.write_text("# silent picklers\nSimTopicModel\n\nSimQueryPlan\n")
        blocklist = Blocklist.from_file(path)
        assert "SimTopicModel" in blocklist
        assert "SimQueryPlan" in blocklist
        assert len(blocklist) == 2
