"""Cross-process exclusivity of the SQLite checkpoint store.

Two kernels writing one database interleave node sequences and corrupt
the parent-pointer chain, so opening a database another *process* holds
must fail fast with :class:`StoreBusyError`. Within one process, the
lock is refcounted: the multi-session service and reader handles open
the same file freely.
"""

import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.core.storage import SQLiteCheckpointStore
from repro.errors import StorageError, StoreBusyError

SRC = str(pathlib.Path(__file__).parent.parent / "src")


def _run_probe(db_path: str) -> subprocess.CompletedProcess:
    """Open ``db_path`` in a fresh interpreter; print the outcome."""
    script = textwrap.dedent(
        f"""
        from repro.core.storage import SQLiteCheckpointStore
        from repro.errors import StoreBusyError
        try:
            store = SQLiteCheckpointStore({db_path!r})
        except StoreBusyError as exc:
            print("BUSY", exc)
        else:
            store.close()
            print("OPENED")
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )


class TestCrossProcess:
    def test_second_process_is_rejected_while_open(self, tmp_path):
        db = str(tmp_path / "history.db")
        store = SQLiteCheckpointStore(db)
        try:
            result = _run_probe(db)
            assert result.stdout.startswith("BUSY"), result.stdout
            assert "another process" in result.stdout
        finally:
            store.close()

    def test_second_process_succeeds_after_close(self, tmp_path):
        db = str(tmp_path / "history.db")
        store = SQLiteCheckpointStore(db)
        store.close()
        result = _run_probe(db)
        assert result.stdout.startswith("OPENED"), result.stdout


class TestReplBusyStore:
    def test_repl_reports_busy_store_cleanly(self, tmp_path):
        """``python -m repro.cli --store BUSY`` must print one actionable
        line and exit 2, not dump a traceback."""
        db = str(tmp_path / "history.db")
        store = SQLiteCheckpointStore(db)
        try:
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC
            result = subprocess.run(
                [sys.executable, "-m", "repro.cli", "--store", db],
                input="%quit\n",
                env=env,
                capture_output=True,
                text=True,
            )
        finally:
            store.close()
        assert result.returncode == 2
        assert "another process" in result.stderr
        assert "Traceback" not in result.stderr


class TestInProcess:
    def test_double_open_same_path_refcounts(self, tmp_path):
        db = str(tmp_path / "history.db")
        first = SQLiteCheckpointStore(db, "alpha")
        second = SQLiteCheckpointStore(db, "beta")
        try:
            # Still exclusively ours: a foreign process stays locked out
            # while either in-process handle is open.
            assert _run_probe(db).stdout.startswith("BUSY")
            first.close()
            assert _run_probe(db).stdout.startswith("BUSY")
        finally:
            second.close()
        assert _run_probe(db).stdout.startswith("OPENED")

    def test_memory_databases_never_lock(self):
        a = SQLiteCheckpointStore(":memory:")
        b = SQLiteCheckpointStore(":memory:")
        a.close()
        b.close()

    def test_lock_released_when_open_fails(self, tmp_path):
        from repro.core.storage import _STORE_LOCKS

        db = tmp_path / "corrupt.db"
        db.write_bytes(b"not a sqlite file at all")
        with pytest.raises(Exception):
            SQLiteCheckpointStore(str(db))
        # The failed open must not leave the advisory lock held.
        assert os.path.realpath(str(db)) not in _STORE_LOCKS

    def test_busy_error_is_a_storage_error(self):
        assert issubclass(StoreBusyError, StorageError)
