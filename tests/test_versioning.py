"""Tests for versioned co-variables and session-state metadata (§5.1)."""

from __future__ import annotations

from repro.core.covariable import covar_key
from repro.core.versioning import SessionState, VersionedCoVariable


class TestSessionStateDerivation:
    def test_child_adds_updates(self):
        state = SessionState()
        child = state.child("t1", [covar_key({"x"})], [])
        assert child.version_of(covar_key({"x"})) == "t1"

    def test_child_supersedes_same_key(self):
        state = SessionState({covar_key({"x"}): "t1"})
        child = state.child("t2", [covar_key({"x"})], [])
        assert child.version_of(covar_key({"x"})) == "t2"
        assert len(child) == 1

    def test_child_supersedes_overlapping_key(self):
        # {x} and {y} merge into {x,y}: both old singletons must go.
        state = SessionState({covar_key({"x"}): "t1", covar_key({"y"}): "t1"})
        child = state.child("t2", [covar_key({"x", "y"})], [])
        assert child.keys() == {covar_key({"x", "y"})}

    def test_child_applies_deletions(self):
        state = SessionState({covar_key({"x"}): "t1", covar_key({"y"}): "t1"})
        child = state.child("t2", [], [covar_key({"x"})])
        assert child.keys() == {covar_key({"y"})}

    def test_split_supersedes_by_name_overlap(self):
        state = SessionState({covar_key({"x", "y"}): "t1"})
        child = state.child(
            "t2", [covar_key({"x"}), covar_key({"y"})], [covar_key({"x", "y"})]
        )
        assert child.keys() == {covar_key({"x"}), covar_key({"y"})}

    def test_untouched_versions_survive(self):
        state = SessionState({covar_key({"a"}): "t1", covar_key({"b"}): "t2"})
        child = state.child("t3", [covar_key({"c"})], [])
        assert child.version_of(covar_key({"a"})) == "t1"
        assert child.version_of(covar_key({"b"})) == "t2"

    def test_parent_not_mutated(self):
        state = SessionState({covar_key({"a"}): "t1"})
        state.child("t2", [covar_key({"a"})], [])
        assert state.version_of(covar_key({"a"})) == "t1"


class TestQueries:
    def test_names_union(self):
        state = SessionState(
            {covar_key({"a", "b"}): "t1", covar_key({"c"}): "t2"}
        )
        assert state.names() == {"a", "b", "c"}

    def test_versioned_set(self):
        state = SessionState({covar_key({"a"}): "t1"})
        assert state.versioned() == {
            VersionedCoVariable(key=covar_key({"a"}), node_id="t1")
        }

    def test_equality(self):
        left = SessionState({covar_key({"a"}): "t1"})
        right = SessionState({covar_key({"a"}): "t1"})
        assert left == right
        assert left != SessionState({covar_key({"a"}): "t2"})

    def test_copy_is_independent(self):
        state = SessionState({covar_key({"a"}): "t1"})
        copied = state.copy()
        assert copied == state
        assert copied is not state

    def test_contains_and_get(self):
        state = SessionState({covar_key({"a"}): "t1"})
        assert covar_key({"a"}) in state
        assert state.get(covar_key({"zzz"})) is None
