"""Library effect stubs: format, registry, type tracking, analysis.

Covers the PR 9 static side (DESIGN.md §15): stub parsing and loading,
the flow-insensitive local type tracker, call-site resolution, and the
integration into :func:`~repro.analysis.visitor.analyze_cell` — plus
the star-import property the whole layer's soundness rests on: a stub
never fires on a binding the tracker cannot prove.
"""

from __future__ import annotations

import ast
import json

import pytest

from repro.analysis.effects import EscapeKind
from repro.analysis.stubs import (
    STUB_FORMAT_VERSION,
    CallStub,
    StubError,
    StubRegistry,
    default_registry,
    parse_stub_mapping,
    shipped_stub_files,
)
from repro.analysis.typetrack import (
    INSTANCE,
    MODULE,
    NotebookTypeEnv,
    StubContext,
    stub_call_mutates,
    stub_is_pure_at,
)
from repro.analysis.visitor import analyze_cell


def _registry(mapping):
    registry = StubRegistry()
    registry.add_mapping(mapping)
    return registry


PANDAS_LIKE = {
    "stub_format": STUB_FORMAT_VERSION,
    "module": "pdlike",
    "functions": {
        "read_csv": {"effect": "pure", "returns": "Frame"},
    },
    "types": {
        "Frame": {
            "constructor": {"effect": "pure"},
            "methods": {
                "head": {"effect": "pure"},
                "sort_values": {
                    "effect": "pure",
                    "mutates_if": {"kwarg": "inplace", "default": False},
                },
                "insert": {"effect": "mutates"},
                "merge_into": {"effect": "pure", "mutates_args": [0]},
                "register": {
                    "effect": "pure",
                    "writes_globals": ["_registry"],
                },
                "do_exec": {"effect": "pure", "escape": "exec-eval"},
            },
        }
    },
}


class TestStubFormat:
    def test_parse_and_lookup(self):
        registry = _registry(PANDAS_LIKE)
        assert registry.has_module("pdlike")
        stub = registry.function("pdlike", "read_csv")
        assert stub is not None and stub.returns == "pdlike.Frame"
        method = registry.method("pdlike.Frame", "insert")
        assert method is not None and method.effect == "mutates"

    def test_format_version_mismatch_rejected(self):
        bad = dict(PANDAS_LIKE, stub_format=99)
        with pytest.raises(StubError):
            parse_stub_mapping(bad)

    def test_malformed_effect_rejected(self):
        bad = {
            "stub_format": STUB_FORMAT_VERSION,
            "module": "m",
            "functions": {"f": {"effect": "sideways"}},
        }
        with pytest.raises(StubError):
            parse_stub_mapping(bad)

    def test_multi_module_form(self):
        mapping = {
            "stub_format": STUB_FORMAT_VERSION,
            "modules": [
                {"module": "a", "functions": {"f": {"effect": "pure"}}},
                {"module": "b", "functions": {"g": {"effect": "mutates"}}},
            ],
        }
        registry = StubRegistry()
        registry.add_mapping(mapping)
        assert registry.has_module("a") and registry.has_module("b")

    def test_fingerprint_tracks_content(self):
        one = _registry(PANDAS_LIKE)
        two = _registry(PANDAS_LIKE)
        assert one.fingerprint() == two.fingerprint()
        changed = json.loads(json.dumps(PANDAS_LIKE))
        changed["types"]["Frame"]["methods"]["head"]["effect"] = "mutates"
        assert _registry(changed).fingerprint() != one.fingerprint()

    def test_shipped_stubs_load(self):
        assert shipped_stub_files()
        registry = default_registry()
        assert registry.has_module("repro.libsim.data_analysis")
        assert registry.has_module("random")
        # RNG draws must be stubbed as mutating the module state: replay
        # plans that dropped seed/draw cells would replay different
        # numbers.
        for name in ("seed", "random", "randint", "shuffle"):
            stub = registry.function("random", name)
            assert stub is not None
            assert stub.effect == "mutates" or stub.mutates_args

    def test_mutates_if_call_sites(self):
        registry = _registry(PANDAS_LIKE)
        stub = registry.method("pdlike.Frame", "sort_values")
        pure_call = ast.parse("df.sort_values('c')").body[0].value
        inplace = ast.parse("df.sort_values('c', inplace=True)").body[0].value
        dynamic = ast.parse("df.sort_values('c', inplace=flag)").body[0].value
        splat = ast.parse("df.sort_values('c', **kw)").body[0].value
        assert not stub_call_mutates(stub, pure_call)
        assert stub_call_mutates(stub, inplace)
        assert stub_call_mutates(stub, dynamic)  # non-literal: conservative
        assert stub_call_mutates(stub, splat)

    def test_whole_call_purity(self):
        registry = _registry(PANDAS_LIKE)
        head = registry.method("pdlike.Frame", "head")
        merge = registry.method("pdlike.Frame", "merge_into")
        register = registry.method("pdlike.Frame", "register")
        call = ast.parse("df.head()").body[0].value
        assert stub_is_pure_at(head, call)
        # Argument mutation and hidden writes defeat purity even when
        # the receiver itself is untouched.
        assert not stub_is_pure_at(merge, call)
        assert not stub_is_pure_at(register, call)

    def test_is_pure_requires_no_effects_at_all(self):
        assert CallStub(qualname="m.f").is_pure
        assert not CallStub(qualname="m.f", mutates_args=(0,)).is_pure
        assert not CallStub(qualname="m.f", writes_globals=("g",)).is_pure
        assert not CallStub(qualname="m.f", escape="exec-eval").is_pure


class TestTypeTracking:
    def _env(self):
        return NotebookTypeEnv(_registry(PANDAS_LIKE))

    def _resolve(self, env, source):
        module = ast.parse(source)
        return env.resolver(module)

    def test_import_and_constructor_binding(self):
        env = self._env()
        env.observe_cell("import pdlike")
        env.observe_cell("df = pdlike.read_csv('x.csv')")
        resolver = self._resolve(env, "df.head()")
        resolved = resolver.resolve_call(
            ast.parse("df.head()").body[0].value
        )
        assert resolved is not None
        assert resolved.qualname == "pdlike.Frame.head"
        assert resolved.receiver == "df"
        assert resolved.receiver_type.kind == INSTANCE

    def test_import_alias(self):
        env = self._env()
        env.observe_cell("import pdlike as pd")
        resolver = self._resolve(env, "pd.read_csv('x')")
        resolved = resolver.resolve_call(
            ast.parse("pd.read_csv('x')").body[0].value
        )
        assert resolved is not None
        assert resolved.receiver_type.kind == MODULE

    def test_rebind_to_unknown_poisons(self):
        env = self._env()
        env.observe_cell("import pdlike")
        env.observe_cell("df = pdlike.read_csv('x')")
        env.observe_cell("df = mystery()")
        resolver = self._resolve(env, "df.head()")
        assert resolver.resolve_call(
            ast.parse("df.head()").body[0].value
        ) is None

    def test_star_import_wipes_env(self):
        env = self._env()
        env.observe_cell("import pdlike")
        env.observe_cell("df = pdlike.read_csv('x')")
        env.observe_cell("from mystery import *")
        resolver = self._resolve(env, "df.head()")
        assert resolver.resolve_call(
            ast.parse("df.head()").body[0].value
        ) is None

    def test_failed_cell_does_not_advance_env(self):
        env = self._env()
        env.observe_cell("import pdlike")
        env.observe_cell("df = mystery()", executed=False)
        assert "pdlike" in env.current()
        assert "df" not in env.current()

    def test_env_at_is_a_snapshot(self):
        env = self._env()
        env.observe_cell("import pdlike")
        env.observe_cell("df = pdlike.read_csv('x')")
        assert "df" not in env.env_at(1)
        assert "df" in env.env_at(2)

    def test_unknown_library_call_names_stub_file(self):
        registry = default_registry()
        env = NotebookTypeEnv(registry)
        env.observe_cell(
            "from repro.libsim.data_analysis import SimDataFrame"
        )
        env.observe_cell("df = SimDataFrame()")
        module = ast.parse("df.frobnicate()")
        resolver = env.resolver(module)
        unknown = resolver.unknown_library_call(module.body[0].value)
        assert unknown is not None
        assert unknown.qualname.endswith("SimDataFrame.frobnicate")
        assert unknown.stub_file and "libsim_data_analysis" in unknown.stub_file


class TestAnalyzeCellIntegration:
    def _context(self):
        return StubContext(registry=_registry(PANDAS_LIKE))

    def test_pure_read_and_mutator_split(self):
        ctx = self._context()
        ctx.observe_cell("import pdlike")
        ctx.observe_cell("df = pdlike.read_csv('x')")
        effects = analyze_cell("h = df.head()\ndf.insert()", stubs=ctx)
        # Raw effects record both facts; consumers (the session's
        # purity witness set) subtract mutations from pure receivers.
        assert "df" in effects.stub_pure_receivers
        assert "df" in effects.stub_mutations
        assert effects.stub_expansions == 2

    def test_pure_only_receiver_recorded(self):
        ctx = self._context()
        ctx.observe_cell("import pdlike")
        ctx.observe_cell("df = pdlike.read_csv('x')")
        effects = analyze_cell("h = df.head()", stubs=ctx)
        assert effects.stub_pure_receivers == {"df"}
        assert effects.stub_mutations == set()

    def test_argument_mutation_attributed(self):
        ctx = self._context()
        ctx.observe_cell("import pdlike")
        ctx.observe_cell("df = pdlike.read_csv('x')")
        ctx.observe_cell("other = pdlike.read_csv('y')")
        effects = analyze_cell("df.merge_into(other)", stubs=ctx)
        assert "other" in effects.stub_mutations

    def test_hidden_global_write_folded(self):
        ctx = self._context()
        ctx.observe_cell("import pdlike")
        ctx.observe_cell("df = pdlike.read_csv('x')")
        effects = analyze_cell("df.register()", stubs=ctx)
        assert "_registry" in effects.stub_writes
        assert "_registry" in effects.conditional_writes

    def test_stub_escape_surfaces(self):
        ctx = self._context()
        ctx.observe_cell("import pdlike")
        ctx.observe_cell("df = pdlike.read_csv('x')")
        effects = analyze_cell("df.do_exec()", stubs=ctx)
        assert any(
            escape.kind is EscapeKind.EXEC_EVAL for escape in effects.escapes
        )

    def test_unknown_library_call_counted(self):
        ctx = self._context()
        ctx.observe_cell("import pdlike")
        ctx.observe_cell("df = pdlike.read_csv('x')")
        effects = analyze_cell("df.pivot()", stubs=ctx)
        assert effects.stub_unknown_calls == 1
        assert effects.stub_expansions == 0

    def test_no_stub_context_is_inert(self):
        effects = analyze_cell("h = df.head()")
        assert effects.stub_expansions == 0
        assert effects.stub_pure_receivers == set()


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


_METHODS = st.sampled_from(["head", "sort_values", "insert", "pivot"])
_NAMES = st.sampled_from(["df", "frame", "x", "data"])


@st.composite
def _programs(draw):
    """A notebook prefix with provable bindings, a star import at a
    random position, and arbitrary method calls sprinkled throughout."""
    cells = ["import pdlike"]
    bound = draw(st.lists(_NAMES, min_size=1, max_size=3, unique=True))
    for name in bound:
        cells.append(f"{name} = pdlike.read_csv('x')")
    star_at = draw(st.integers(min_value=0, max_value=3))
    calls = draw(
        st.lists(st.tuples(_NAMES, _METHODS), min_size=1, max_size=6)
    )
    call_cells = [f"{name}.{method}()" for name, method in calls]
    call_cells.insert(
        min(star_at, len(call_cells)), "from mystery import *"
    )
    return cells, call_cells


@settings(max_examples=80, deadline=None)
@given(_programs())
def test_stubs_never_fire_on_unprovable_bindings(program):
    """Satellite 3: after a star import, nothing is provable — no stub
    may fire on any receiver, however it was bound before."""
    prefix, call_cells = program
    ctx = StubContext(registry=_registry(PANDAS_LIKE))
    for cell in prefix:
        ctx.observe_cell(cell)
    star_seen = False
    for cell in call_cells:
        effects = analyze_cell(cell, stubs=ctx)
        if star_seen:
            assert effects.stub_expansions == 0, cell
            assert not effects.stub_mutations, cell
            assert not effects.stub_pure_receivers, cell
        if "import *" in cell:
            star_seen = True
        ctx.observe_cell(cell)
