"""ddmin shrinking and the pinned-regression emitter."""

import subprocess
import sys
import pathlib

from repro.fuzz.shrink import emit_regression_test, shrink_cells


class TestShrinkCells:
    def test_minimizes_to_the_failing_pair(self):
        cells = [f"x{i} = {i}" for i in range(8)]

        def still_fails(candidate):
            return "x2 = 2" in candidate and "x6 = 6" in candidate

        result = shrink_cells(cells, still_fails)
        assert result == ["x2 = 2", "x6 = 6"]

    def test_single_culprit_minimizes_to_one(self):
        cells = [f"x{i} = {i}" for i in range(10)]
        result = shrink_cells(cells, lambda c: "x7 = 7" in c)
        assert result == ["x7 = 7"]

    def test_passing_input_is_returned_unchanged(self):
        cells = ["a = 1", "b = 2"]
        assert shrink_cells(cells, lambda c: False) == cells

    def test_predicate_never_sees_the_empty_program(self):
        seen = []

        def still_fails(candidate):
            seen.append(list(candidate))
            return "a = 1" in candidate

        shrink_cells(["a = 1", "b = 2"], still_fails)
        assert all(candidate for candidate in seen)

    def test_order_is_preserved(self):
        cells = ["a = 1", "b = 2", "c = 3", "d = 4"]

        def still_fails(candidate):
            return "b = 2" in candidate and "d = 4" in candidate

        assert shrink_cells(cells, still_fails) == ["b = 2", "d = 4"]

    def test_deterministic(self):
        cells = [f"x{i} = {i}" for i in range(12)]

        def predicate(candidate):
            return sum(1 for c in candidate if int(c.split()[-1]) % 3 == 0) >= 2

        assert shrink_cells(cells, predicate) == shrink_cells(cells, predicate)

    def test_attempt_budget_is_respected(self):
        calls = []

        def still_fails(candidate):
            calls.append(1)
            return True  # everything "fails": worst case for ddmin

        shrink_cells([f"x{i} = {i}" for i in range(30)], still_fails, max_attempts=10)
        # +1 for the initial does-it-fail-at-all check.
        assert len(calls) <= 11


class TestEmitRegressionTest:
    def test_emitted_file_is_a_runnable_pytest(self, tmp_path):
        path = tmp_path / "test_fuzz_seed_42.py"
        emit_regression_test(
            ["a = [1, 2]", "b = a"],
            seed=42,
            path=str(path),
            original_cells=20,
            origin="unit test",
        )
        content = path.read_text()
        assert "seed=42" in content
        assert "def test_fuzz_seed_42" in content
        assert "20 cell(s) -> 2" in content
        compile(content, str(path), "exec")  # syntactically sound
        env_path = str(pathlib.Path(__file__).parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", str(path)],
            capture_output=True,
            text=True,
            env={
                **__import__("os").environ,
                "PYTHONPATH": env_path,
            },
            cwd=str(tmp_path),
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "test_fuzz_seed_7.py"
        emit_regression_test(["a = 1"], seed=7, path=str(path))
        assert path.exists()

    def test_cells_roundtrip_through_repr(self, tmp_path):
        tricky = ["s = 'quote\\'s'\nt = \"double\"", "u = s + t"]
        path = tmp_path / "test_fuzz_seed_0.py"
        emit_regression_test(tricky, seed=0, path=str(path))
        namespace = {}
        exec(compile(path.read_text(), str(path), "exec"), namespace)
        assert namespace["CELLS"] == tricky
