"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    CheckoutError,
    CheckpointNotFoundError,
    DeserializationError,
    KernelError,
    KishuError,
    RestorationError,
    SerializationError,
    SnapshotError,
    StorageError,
    TrackingError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            SerializationError,
            DeserializationError,
            CheckpointNotFoundError,
            CheckoutError,
            RestorationError,
            KernelError,
            StorageError,
            SnapshotError,
            TrackingError,
        ],
    )
    def test_all_derive_from_kishu_error(self, exc_type):
        assert issubclass(exc_type, KishuError)

    def test_restoration_is_a_checkout_error(self):
        # Callers catching CheckoutError must also see fallback failures.
        assert issubclass(RestorationError, CheckoutError)

    def test_catching_base_covers_library_failures(self):
        with pytest.raises(KishuError):
            raise StorageError("lost payload")


class TestSerializationError:
    def test_message_names_the_covariable(self):
        error = SerializationError({"b", "a"}, cause=TypeError("nope"))
        assert "a, b" in str(error)
        assert "nope" in str(error)

    def test_carries_structured_fields(self):
        cause = TypeError("boom")
        error = SerializationError({"x"}, cause=cause)
        assert error.covariable_names == frozenset({"x"})
        assert error.cause is cause


class TestKernelError:
    def test_carries_cell_source_and_cause(self):
        cause = NameError("nope")
        error = KernelError("cell failed", cell_source="boom()", cause=cause)
        assert error.cell_source == "boom()"
        assert error.cause is cause
