"""Lint engine, rule registry, purity registry, reporters, and the
``%lint`` / ``repro lint`` surfaces (DESIGN.md §8)."""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis import (
    GLOBAL_PURITY,
    Finding,
    JsonReporter,
    LintEngine,
    LintRule,
    PurityRegistry,
    ReadOnlyCellAnalyzer,
    RuleRegistry,
    Severity,
    Span,
    TextReporter,
    worst_severity,
)
from repro.cli import KishuRepl, lint_main, main


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestLintEngine:
    def test_clean_mutating_cell_has_no_findings(self):
        assert LintEngine().lint_source("x = 1\ny = x + 1") == []

    def test_syntax_error_ksh100(self):
        findings = LintEngine().lint_source("def broken(:")
        assert rule_ids(findings) == ["KSH100"]
        assert findings[0].severity is Severity.ERROR

    @pytest.mark.parametrize(
        "source, expected_id",
        [
            ("exec('x = 1')", "KSH101"),
            ("g = globals()", "KSH102"),
            ("import importlib", "KSH103"),
            ("from math import *", "KSH104"),
            ("setattr(o, n, v)", "KSH105"),
            ("ns = fn.__globals__", "KSH106"),
            ("import os\nos.sep = '/'", "KSH107"),
            ("zs = [(w := i) for i in rng]", "KSH108"),
        ],
    )
    def test_escape_rule_ids(self, source, expected_id):
        findings = LintEngine().lint_source(source)
        assert expected_id in rule_ids(findings)

    def test_builtin_shadow_ksh110(self):
        findings = LintEngine().lint_source("print = 'oops'")
        assert "KSH110" in rule_ids(findings)

    def test_read_only_info_ksh201(self):
        findings = LintEngine().lint_source("df.head()")
        assert rule_ids(findings) == ["KSH201"]
        assert findings[0].severity is Severity.INFO

    def test_findings_sorted_by_position(self):
        findings = LintEngine().lint_source(
            "a = eval('1')\nb = globals()\nc = eval('2')"
        )
        assert [finding.span.line for finding in findings] == [1, 2, 3]

    def test_label_threaded_through(self):
        findings = LintEngine().lint_source("exec('')", label="In[3]")
        assert findings[0].label == "In[3]"
        assert findings[0].format().startswith("In[3]:")

    def test_lint_cells_concatenates(self):
        findings = LintEngine().lint_cells(
            [("In[1]", "x = 1"), ("In[2]", "exec('')"), ("In[3]", "g = globals()")]
        )
        assert rule_ids(findings) == ["KSH101", "KSH102"]
        assert [finding.label for finding in findings] == ["In[2]", "In[3]"]


class TestSuppression:
    def test_line_level_disable(self):
        findings = LintEngine().lint_source(
            "x = 1\nexec('')  # kishu: disable=KSH101"
        )
        assert findings == []

    def test_line_level_disable_is_line_scoped(self):
        # Not on line 1 (that would be cell-wide): only line 2 is silenced.
        findings = LintEngine().lint_source(
            "x = 1\nexec('')  # kishu: disable=KSH101\nexec('again')"
        )
        assert rule_ids(findings) == ["KSH101"]
        assert findings[0].span.line == 3

    def test_cell_wide_disable_on_first_line(self):
        findings = LintEngine().lint_source(
            "# kishu: disable=KSH101\nexec('')\nexec('again')"
        )
        assert findings == []

    def test_disable_all(self):
        findings = LintEngine().lint_source(
            "g = globals()  # kishu: disable=all"
        )
        assert findings == []

    def test_unrelated_rule_still_fires(self):
        findings = LintEngine().lint_source(
            "g = globals()  # kishu: disable=KSH101"
        )
        assert rule_ids(findings) == ["KSH102"]


class TestRuleRegistry:
    def test_default_registry_contents(self):
        registry = RuleRegistry.default()
        for rule_id in ("KSH100", "KSH101", "KSH107", "KSH108", "KSH110", "KSH201"):
            assert rule_id in registry

    def test_unregister_silences_a_rule(self):
        registry = RuleRegistry.default()
        registry.unregister("KSH102")
        findings = LintEngine(registry).lint_source("g = globals()")
        assert "KSH102" not in rule_ids(findings)

    def test_user_defined_rule(self):
        class NoTodoRule(LintRule):
            rule_id = "KSH900"
            severity = Severity.INFO
            description = "flags TODO comments"

            def check(self, context):
                for index, line in enumerate(context.source.splitlines(), start=1):
                    if "TODO" in line:
                        yield self.finding(context, "todo found", Span(index, 0, index, 0))

        registry = RuleRegistry.default()
        registry.register(NoTodoRule())
        findings = LintEngine(registry).lint_source("x = 1  # TODO later")
        assert "KSH900" in rule_ids(findings)


class TestPurityRegistry:
    def test_registering_a_callable_extends_read_only(self):
        analyzer = ReadOnlyCellAnalyzer(purity=PurityRegistry())
        assert not analyzer.is_read_only("show(x)")
        analyzer.purity.register_callable("show")
        assert analyzer.is_read_only("show(x)")

    def test_registering_a_method_extends_read_only(self):
        analyzer = ReadOnlyCellAnalyzer(purity=PurityRegistry())
        assert not analyzer.is_read_only("df.plot()")
        analyzer.purity.register_method("plot")
        assert analyzer.is_read_only("df.plot()")

    def test_global_registry_reaches_default_analyzers(self):
        analyzer = ReadOnlyCellAnalyzer()
        GLOBAL_PURITY.register_callable("__test_only_pure__")
        try:
            assert analyzer.is_read_only("__test_only_pure__(x)")
        finally:
            GLOBAL_PURITY.unregister_callable("__test_only_pure__")
        assert not analyzer.is_read_only("__test_only_pure__(x)")

    def test_explicit_whitelists_stay_frozen(self):
        analyzer = ReadOnlyCellAnalyzer(
            pure_builtins=frozenset({"show"}), pure_methods=frozenset()
        )
        assert analyzer.is_read_only("show(x)")
        assert not analyzer.is_read_only("print(x)")  # not whitelisted here

    def test_unregister(self):
        registry = PurityRegistry()
        assert registry.is_pure_callable("print")
        registry.unregister_callable("print")
        assert not registry.is_pure_callable("print")


class TestDeprecationShim:
    def test_old_import_path_warns_but_works(self):
        from repro.core.rules import ReadOnlyCellAnalyzer as OldAnalyzer

        with pytest.warns(DeprecationWarning, match="repro.analysis"):
            analyzer = OldAnalyzer()
        assert analyzer.is_read_only("print(x)")
        assert isinstance(analyzer, ReadOnlyCellAnalyzer)

    def test_old_whitelist_reexports(self):
        from repro.analysis.rules import PURE_BUILTINS as NEW_BUILTINS
        from repro.core.rules import PURE_BUILTINS as OLD_BUILTINS

        assert OLD_BUILTINS is NEW_BUILTINS


class TestReporters:
    def make_findings(self):
        engine = LintEngine()
        return engine.lint_source("exec('')\ndf.head()", label="cell.py")

    def test_text_reporter(self):
        text = TextReporter().render(self.make_findings())
        assert "cell.py:1:0: warning KSH101" in text
        assert "finding(s)" in text

    def test_text_reporter_empty(self):
        assert TextReporter().render([]) == "no findings"

    def test_json_reporter(self):
        payload = json.loads(JsonReporter().render(self.make_findings()))
        rules = {entry["rule"] for entry in payload["findings"]}
        assert "KSH101" in rules
        assert payload["counts"]["warning"] == 1

    def test_worst_severity(self):
        assert worst_severity([]) is Severity.INFO
        findings = LintEngine().lint_source("def broken(:")
        assert worst_severity(findings) is Severity.ERROR


class TestCliSurfaces:
    def run_repl(self, *lines):
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        KishuRepl(stdin=stdin, stdout=stdout).run()
        return stdout.getvalue()

    def test_percent_lint_over_history(self):
        output = self.run_repl("x = 1", "exec('y = 2')", "%lint", "%quit")
        assert "KSH101" in output
        assert "In[2]" in output

    def test_percent_lint_inline_snippet(self):
        output = self.run_repl("%lint g = globals()", "%quit")
        assert "KSH102" in output

    def test_percent_lint_no_cells(self):
        output = self.run_repl("%lint", "%quit")
        assert "no cells executed yet" in output

    def test_percent_telemetry_shows_analysis_counters(self):
        output = self.run_repl("x = 1", "exec('y = 2')", "%telemetry", "%quit")
        assert "escalations         1" in output
        assert "cells analyzed      2" in output

    def test_lint_main_clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\ny = x + 1\n")
        out = io.StringIO()
        assert lint_main([str(path)], stdout=out) == 0
        assert "no findings" in out.getvalue()

    def test_lint_main_warning_exit_codes(self, tmp_path):
        path = tmp_path / "escapes.py"
        path.write_text("exec('x = 1')\n")
        out = io.StringIO()
        assert lint_main([str(path)], stdout=out) == 0  # warnings pass by default
        assert lint_main(["--strict", str(path)], stdout=io.StringIO()) == 1

    def test_lint_main_error_exits_nonzero(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        assert lint_main([str(path)], stdout=io.StringIO()) == 1

    def test_lint_main_missing_file(self):
        assert lint_main(["/nonexistent/nowhere.py"], stdout=io.StringIO()) == 2

    def test_lint_main_json_format(self, tmp_path):
        path = tmp_path / "escapes.py"
        path.write_text("g = globals()\n")
        out = io.StringIO()
        lint_main(["--format", "json", str(path)], stdout=out)
        payload = json.loads(out.getvalue())
        assert payload["findings"][0]["rule"] == "KSH102"
        assert payload["findings"][0]["label"] == str(path)

    def test_main_dispatches_lint_subcommand(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert main(["lint", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out
