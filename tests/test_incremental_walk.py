"""Incremental VarGraph construction (DESIGN.md §7).

Three layers of coverage:

* :class:`SubtreeCache` unit behaviour — lookup, invalidation through the
  reverse member index, eviction, refresh.
* Builder-level splicing — spliced builds are node-table-identical to
  cold builds; invalidation forces a re-walk; policy layering keeps
  handler registrations private to one builder.
* End-to-end equivalence — a notebook kernel driven through randomized
  mutation/aliasing/deletion cell sequences, tracked by two delta
  detectors (one cold, one incremental); every per-name node table and
  every delta must be identical. This is the property that makes the
  cache a pure optimization.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covariable import CoVariablePool
from repro.core.delta import DeltaDetector
from repro.core.objectwalk import DEFAULT_POLICY, Visit
from repro.core.vargraph import SubtreeCache, VarGraphBuilder, _CacheEntry, GraphNode
from repro.kernel.kernel import NotebookKernel


def _entry(root, nodes=1, extra_ids=()):
    ids = frozenset({id(root), *extra_ids})
    return _CacheEntry(
        root=root,
        nodes=tuple(
            GraphNode(
                obj_id=id(root) + i,
                type_name="list",
                kind="composite",
                value=None,
                children=(),
            )
            for i in range(nodes)
        ),
        ids=ids,
        mutable_ids=ids,
        contains_opaque=False,
    )


class TestSubtreeCache:
    def test_store_and_lookup(self):
        cache = SubtreeCache()
        root = [1, 2]
        cache.store(_entry(root))
        assert cache.lookup(id(root)) is not None
        assert cache.lookup(12345) is None

    def test_invalidation_by_member_id(self):
        # Dirtying any object *inside* a segment drops the whole segment,
        # not just segments rooted at the dirty object.
        cache = SubtreeCache()
        inner = [1]
        outer = [inner]
        cache.store(_entry(outer, nodes=2, extra_ids=(id(inner),)))
        assert cache.invalidate_ids({id(inner)}) == 1
        assert cache.lookup(id(outer)) is None
        assert len(cache) == 0

    def test_invalidation_of_unknown_ids_is_noop(self):
        cache = SubtreeCache()
        root = [1]
        cache.store(_entry(root))
        assert cache.invalidate_ids({999999}) == 0
        assert cache.lookup(id(root)) is not None

    def test_eviction_over_node_budget(self):
        cache = SubtreeCache(max_total_nodes=5)
        roots = [[i] for i in range(4)]
        for root in roots:
            cache.store(_entry(root, nodes=2))
        # 4 entries x 2 nodes > 5: the oldest entries were evicted.
        assert cache.total_nodes <= 5
        assert cache.lookup(id(roots[0])) is None
        assert cache.lookup(id(roots[-1])) is not None

    def test_restore_refreshes_entry(self):
        cache = SubtreeCache()
        root = [1]
        cache.store(_entry(root, nodes=1))
        cache.store(_entry(root, nodes=3))
        assert len(cache) == 1
        assert cache.total_nodes == 3

    def test_clear(self):
        cache = SubtreeCache()
        root = [1]
        cache.store(_entry(root))
        cache.clear()
        assert len(cache) == 0
        assert cache.total_nodes == 0


class TestBuilderSplicing:
    def test_spliced_rebuild_is_node_table_identical(self):
        builder = VarGraphBuilder(incremental=True)
        data = {"rows": [[1.5, 2.5], [3.5]], "n": 7}
        cold = VarGraphBuilder().build("d", data)
        first = builder.build("d", data)
        second = builder.build("d", data)  # unchanged: splices from cache
        assert first.nodes == cold.nodes
        assert second.nodes == cold.nodes
        assert second.fingerprint == cold.fingerprint
        assert second.id_set == cold.id_set
        assert builder.telemetry.nodes_spliced > 0

    def test_invalidation_forces_rewalk_and_sees_mutation(self):
        builder = VarGraphBuilder(incremental=True)
        data = [[1, 2], [3, 4]]
        before = builder.build("x", data)
        data[0][0] = 99
        builder.invalidate_ids({id(data[0])})
        after = builder.build("x", data)
        assert before.differs_from(after)
        assert after.nodes == VarGraphBuilder().build("x", data).nodes

    def test_stale_without_invalidation_then_invalidate_all(self):
        # The documented contract: the cache only observes mutations its
        # caller reports. invalidate_all() is the conservative reset.
        builder = VarGraphBuilder(incremental=True)
        data = [[1]]
        before = builder.build("x", data)
        data[0][0] = 2
        stale = builder.build("x", data)
        assert not before.differs_from(stale)  # cache cannot know
        builder.invalidate_all()
        fresh = builder.build("x", data)
        assert before.differs_from(fresh)

    def test_telemetry_counts_cold_and_warm_builds(self):
        builder = VarGraphBuilder(incremental=True)
        data = [[1.5], [2.5]]
        builder.build("x", data)
        cold = builder.telemetry.snapshot()
        builder.build("x", data)
        warm = builder.telemetry.since(cold)
        assert cold.objects_visited >= 5
        assert warm.cache_hits >= 1
        assert warm.objects_visited <= 1  # only the uncached root


class TestPolicyIsolation:
    def test_registered_handler_stays_private_to_builder(self):
        class Marker:
            pass

        handler_calls = []

        def handle(obj):
            handler_calls.append(obj)
            return Visit(kind="opaque")

        customized = VarGraphBuilder()
        customized.policy.register(Marker, handle)
        plain = VarGraphBuilder()

        marker = Marker()
        assert customized.build("m", marker).opaque
        assert handler_calls == [marker]

        # Neither the shared default policy nor other builders saw the
        # registration: Marker still walks as a plain composite.
        assert not plain.build("m", marker).opaque
        assert DEFAULT_POLICY.visit(marker).kind != "opaque"
        assert not any(
            issubclass(type_, Marker) for type_, _ in DEFAULT_POLICY._handlers
        )

    def test_layer_overrides_win_over_parent(self):
        base = DEFAULT_POLICY.layer()
        base.register(list, lambda obj: Visit(kind="opaque"))
        layered = base.layer()
        assert layered.visit([1]).kind == "opaque"
        layered.register(list, lambda obj: Visit(kind="composite", children=()))
        assert layered.visit([1]).kind == "composite"
        assert base.visit([1]).kind == "opaque"
        assert DEFAULT_POLICY.visit([1]).kind == "composite"


# -- end-to-end equivalence -----------------------------------------------------

# Cell templates over a fixed name universe v0..v4. Each opcode maps to a
# source builder given (i, j) operand name indices and the set of names
# currently bound; inapplicable ops degrade to a create so every drawn
# sequence is executable.
_N_NAMES = 5


def _name(i):
    return f"v{i % _N_NAMES}"


def _cell_source(opcode, i, j, bound):
    target, other = _name(i), _name(j)
    if opcode == 0:
        return f"{target} = [{i}, {i} + 0.5, ['s', {j}]]"
    if opcode == 1:
        return f"{target} = {{'k': [{i} + 1.5], 'n': {j}}}"
    if opcode == 2 and other in bound:  # alias
        return f"{target} = {other}"
    if opcode == 3 and other in bound:  # share a substructure
        return f"{target} = [{other}, [{i}]]"
    if opcode == 4 and target in bound:  # mutate through the name
        return f"{target} = {target}; {target}.append(7) if isinstance({target}, list) else {target}.update(m={i})"
    if opcode == 5 and target in bound:
        return f"del {target}"
    if opcode == 6 and target in bound:  # read-only access
        return f"_ = repr({target})"
    if opcode == 7:  # self-referencing structure
        return f"{target} = []\n{target}.append({target})"
    if opcode == 8 and target in bound:  # rebind to a fresh object
        return f"{target} = [{j} + 2.5]"
    return f"{target} = [{i}, [{j} + 0.25]]"


operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=_N_NAMES - 1),
        st.integers(min_value=0, max_value=_N_NAMES - 1),
    ),
    min_size=1,
    max_size=10,
)


@pytest.mark.slow
class TestIncrementalEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_incremental_detection_equals_cold(self, ops):
        kernel = NotebookKernel()
        cold_pool = CoVariablePool(VarGraphBuilder(incremental=False))
        warm_pool = CoVariablePool(VarGraphBuilder(incremental=True))
        cold = DeltaDetector(cold_pool)
        warm = DeltaDetector(warm_pool)

        bound = set()
        for opcode, i, j in ops:
            source = _cell_source(opcode, i, j, bound)
            kernel.user_ns.begin_recording()
            kernel.run_cell(source, raise_on_error=False)
            record = kernel.user_ns.end_recording()
            items = kernel.user_variables()
            bound = {name for name in items if name.startswith("v")}

            delta_cold = cold.detect(record, items)
            delta_warm = warm.detect(record, items)

            # Identical deltas: the cache must be invisible to detection.
            assert set(delta_cold.created) == set(delta_warm.created)
            assert set(delta_cold.modified) == set(delta_warm.modified)
            assert delta_cold.deleted == delta_warm.deleted
            assert delta_cold.accessed_keys == delta_warm.accessed_keys

            # Identical partitions and per-name node tables.
            assert cold_pool.keys() == warm_pool.keys()
            for name in items:
                cold_graph = cold_pool.graph_of(name)
                warm_graph = warm_pool.graph_of(name)
                assert (cold_graph is None) == (warm_graph is None)
                if cold_graph is None:
                    continue
                assert cold_graph.nodes == warm_graph.nodes, name
                assert cold_graph.fingerprint == warm_graph.fingerprint
                assert cold_graph.id_set == warm_graph.id_set
                assert cold_graph.opaque == warm_graph.opaque
                assert cold_graph.truncated == warm_graph.truncated
