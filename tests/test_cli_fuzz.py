"""``repro fuzz`` happy paths: reproducible output, JSON shape, soak, minimize."""

import io
import json

import repro.fuzz
from repro.cli import fuzz_main
from repro.fuzz.oracle import Divergence, OracleReport


def run(argv):
    out, err = io.StringIO(), io.StringIO()
    code = fuzz_main(argv, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestFuzzText:
    def test_clean_run_exits_zero(self):
        code, stdout, stderr = run(["--seed", "2", "--cells", "8"])
        assert code == 0
        assert "seed 2 cells 8" in stdout
        assert "0 failing program(s)" in stdout

    def test_output_is_byte_reproducible(self):
        argv = ["--seed", "5", "--iterations", "2", "--cells", "8"]
        first = run(argv)
        second = run(argv)
        assert first == second

    def test_print_program_shows_cells(self):
        code, stdout, _ = run(
            ["--seed", "0", "--cells", "4", "--print-program"]
        )
        assert code == 0
        assert "# seed 0" in stdout
        assert "# ---" in stdout


class TestFuzzJson:
    def test_json_shape(self):
        code, stdout, _ = run(
            ["--seed", "1", "--iterations", "2", "--cells", "6", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(stdout)
        assert payload["iterations_run"] == 2
        assert payload["divergence_count"] == 0
        assert [r["seed"] for r in payload["results"]] == [1, 2]
        assert all(len(r["fingerprint"]) == 64 for r in payload["results"])

    def test_json_is_byte_reproducible(self):
        argv = ["--seed", "3", "--cells", "6", "--format", "json"]
        assert run(argv) == run(argv)


class TestFuzzMinimize:
    def test_divergence_is_shrunk_and_pinned(self, tmp_path, monkeypatch):
        # Force a failing oracle so the minimize → emit pipeline runs
        # without needing a live bug in the checkout stack.
        def fake_oracle(program, **kwargs):
            report = OracleReport(seed=program.seed, n_cells=len(program.cells))
            report.divergences.append(
                Divergence(
                    kind="checkout",
                    node_id="t1",
                    cell_index=0,
                    detail="synthetic",
                    seed=program.seed,
                )
            )
            return report

        monkeypatch.setattr(repro.fuzz, "run_program_oracle", fake_oracle)
        monkeypatch.setattr(
            repro.fuzz, "shrink_program", lambda program, **kw: ["a = 1"]
        )
        code, stdout, _ = run(
            [
                "--seed",
                "9",
                "--cells",
                "5",
                "--minimize",
                "--emit-dir",
                str(tmp_path),
            ]
        )
        assert code == 1
        emitted = tmp_path / "test_fuzz_seed_9.py"
        assert emitted.exists()
        assert "seed=9" in emitted.read_text()
        assert "minimized seed 9: 5 -> 1 cell(s)" in stdout
        assert "DIVERGED" in stdout


class TestFuzzSoak:
    def test_soak_writes_report(self, tmp_path):
        out_path = tmp_path / "soak.json"
        code, stdout, _ = run(
            ["--soak", "2", "--cells", "4", "--out", str(out_path)]
        )
        assert code == 0
        assert "soak: 2 session(s)" in stdout
        payload = json.loads(out_path.read_text())
        assert payload["sessions"] == 2
        assert payload["oracle"]["failures"] == 0

    def test_soak_json_to_stdout(self):
        code, stdout, _ = run(
            ["--soak", "2", "--cells", "3", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(stdout)
        assert payload["sessions"] == 2
