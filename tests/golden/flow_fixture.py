# Golden fixture for the whole-notebook lint and replay planner.
# Cells are split on the `# %%` markers; the shape is chosen to fire
# KSH301 (use before definite def), KSH302 (dead write) and KSH304
# (escaped dependency) with stable spans.
# %%
xs = [1, 2]
# %%
xs = [3]
# %%
total = sum(xs) + offset
# %%
exec("offset = 1")
# %%
result = total + offset
