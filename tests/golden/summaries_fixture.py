# Golden fixture for the interprocedural function-summary table.
# Cells are split on the `# %%` markers; the shape is chosen to fire
# KSH401 (helper argument mutation), KSH402 in both flavors (a bounded
# hidden store that is compensated, and an exec helper that escalates)
# and KSH403 in both flavors (a rebind invalidation and an opaque
# wipe), alongside one tracking-safe helper that de-escalates. The
# exec-calling cell comes last so its table wipe cannot mask the
# earlier findings.
# %%
def scale(xs, factor):
    total = 0
    for value in xs:
        total += value * factor
    xs.append(total)
    return xs
# %%
def bump(step):
    global counter
    counter = [step, step + 1]
    return step % 7
# %%
def pure_mean(values):
    return sum(values) / len(values)
# %%
def inject(code):
    exec(code)
    return code
# %%
data = [1, 2, 3]
# %%
scaled = scale(data, 2)
# %%
tick = bump(5)
# %%
avg = pure_mean(data)
# %%
scale = len(data)
# %%
final = pure_mean([avg, tick])
# %%
inject("limit = 9")
