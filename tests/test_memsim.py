"""Tests for the simulated process memory substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SnapshotError
from repro.memsim import (
    Extent,
    PageTable,
    SimulatedProcess,
    nominal_object_bytes,
    restore_namespace,
)


class TestPageTable:
    def test_write_read_roundtrip(self):
        table = PageTable(page_size=64)
        table.write(10, b"hello")
        assert table.read(10, 5) == b"hello"

    def test_cross_page_write(self):
        table = PageTable(page_size=16)
        data = bytes(range(40))
        table.write(8, data)
        assert table.read(8, 40) == data
        assert table.dirty_pages() == {0, 1, 2}  # bytes [8, 48) span 3 pages

    def test_unmapped_reads_zero(self):
        table = PageTable(page_size=16)
        assert table.read(100, 4) == b"\x00\x00\x00\x00"

    def test_dirty_tracking_and_clear(self):
        table = PageTable(page_size=16)
        table.write(0, b"x")
        assert table.dirty_pages() == {0}
        table.clear_dirty()
        assert table.dirty_pages() == set()

    def test_one_byte_dirties_whole_page(self):
        table = PageTable(page_size=4096)
        table.write(4095, b"z")
        assert table.dirty_pages() == {0}

    def test_zero_extent(self):
        table = PageTable(page_size=16)
        table.write(0, b"abcdef")
        table.zero(Extent(start=0, length=6))
        assert table.read(0, 6) == bytes(6)

    def test_page_digests_change_with_content(self):
        table = PageTable(page_size=16)
        table.write(0, b"aaaa")
        before = table.page_digests({0})[0]
        table.write(0, b"aaab")
        assert table.page_digests({0})[0] != before

    def test_extent_pages(self):
        extent = Extent(start=10, length=30)
        assert list(extent.pages(16)) == [0, 1, 2]
        assert list(Extent(start=0, length=0).pages(16)) == []


class TestLayout:
    def test_interleaved_variables_share_pages(self):
        # Two variables synced together fragment: their chunks interleave,
        # so they share pages (the paper's Fig 4 pathology).
        process = SimulatedProcess(page_size=4096, chunk_size=512)
        data = {"sad": list(range(600)), "happy": list(range(600, 1200))}
        process.sync_variables(data)
        assert process.pages_of("sad") & process.pages_of("happy")

    def test_lone_variable_is_contiguous(self):
        process = SimulatedProcess(page_size=4096, chunk_size=512)
        process.sync_variables({"solo": list(range(2000))})
        layout = process.layout_of("solo")
        assert len(layout.extents) == 1

    def test_mutation_dirties_all_variable_pages(self):
        process = SimulatedProcess(page_size=256, chunk_size=64)
        data = {"a": list(range(300)), "b": list(range(300, 600))}
        process.sync_variables(data)
        process.snapshot(data)  # clears dirty
        data["a"][0] = -1
        process.sync_variables(data, changed_names={"a"})
        dirty = process.pages.dirty_pages()
        assert dirty >= process.pages_of("a") & dirty
        assert dirty  # something got dirtied

    def test_removed_variable_freed(self):
        process = SimulatedProcess()
        process.sync_variables({"x": [1, 2, 3]})
        process.sync_variables({})
        assert process.layout_of("x") is None

    def test_touch_contiguous_variable_dirties_one_page(self):
        # One allocation -> one refcount header -> one dirty page.
        process = SimulatedProcess(page_size=256, chunk_size=64)
        data = {"read_only": list(range(500))}
        process.sync_variables(data)
        process.snapshot(data)
        process.touch_variable("read_only")
        assert len(process.pages.dirty_pages()) == 1

    def test_touch_fragmented_variable_dirties_chunk_pages(self):
        # Interleaved structures have a header per chunk: reading them
        # dirties far more pages (the paper's fragmentation pathology).
        process = SimulatedProcess(page_size=256, chunk_size=64)
        data = {"a": list(range(400)), "b": list(range(400, 800))}
        process.sync_variables(data)
        process.snapshot(data)
        process.touch_variable("a")
        assert len(process.pages.dirty_pages()) > 3

    def test_touch_missing_variable_is_noop(self):
        process = SimulatedProcess()
        process.touch_variable("ghost")  # must not raise


class TestSnapshots:
    def test_full_snapshot_covers_heap(self):
        process = SimulatedProcess()
        data = {"x": list(range(1000))}
        process.sync_variables(data)
        snapshot = process.snapshot(data)
        assert snapshot.size_bytes >= len(nominal_object_bytes(data["x"]))

    def test_incremental_snapshot_smaller_when_unchanged(self):
        process = SimulatedProcess()
        data = {"x": list(range(1000)), "y": list(range(1000))}
        process.sync_variables(data)
        first = process.snapshot(data, incremental=True)
        second = process.snapshot(data, incremental=True)
        assert second.size_bytes < first.size_bytes

    def test_incremental_snapshot_captures_changes(self):
        process = SimulatedProcess()
        data = {"x": [0] * 500}
        process.sync_variables(data)
        process.snapshot(data, incremental=True)
        data["x"][0] = 9
        process.sync_variables(data, changed_names={"x"})
        delta = process.snapshot(data, incremental=True)
        assert delta.size_bytes > 0

    def test_offprocess_state_fails_snapshot(self):
        from repro.libsim.deep_learning import SimTorchTensorGPU

        process = SimulatedProcess()
        data = {"tensor": SimTorchTensorGPU(shape=(2, 2))}
        process.sync_variables(data)
        with pytest.raises(SnapshotError):
            process.snapshot(data)

    def test_offprocess_override(self):
        from repro.libsim.deep_learning import SimTorchTensorGPU

        process = SimulatedProcess()
        data = {"tensor": SimTorchTensorGPU(shape=(2, 2))}
        process.sync_variables(data)
        snapshot = process.snapshot(data, allow_offprocess=True)
        assert snapshot.snapshot_id == 1


class TestRestore:
    def test_restore_from_full_snapshot(self):
        process = SimulatedProcess()
        data = {"x": [1, 2, 3], "y": "text"}
        process.sync_variables(data)
        snapshot = process.snapshot(data)
        restored = restore_namespace([snapshot])
        assert restored == data

    def test_restore_pieces_incremental_chain(self):
        process = SimulatedProcess()
        data = {"x": [0] * 100}
        process.sync_variables(data)
        chain = [process.snapshot(data, incremental=True)]
        data["x"][0] = 1
        process.sync_variables(data, changed_names={"x"})
        chain.append(process.snapshot(data, incremental=True))
        restored = restore_namespace(chain)
        assert restored["x"][0] == 1

    def test_restore_preserves_numpy(self):
        process = SimulatedProcess()
        data = {"arr": np.arange(10)}
        process.sync_variables(data)
        snapshot = process.snapshot(data)
        restored = restore_namespace([snapshot])
        assert np.array_equal(restored["arr"], np.arange(10))

    def test_restore_empty_chain_rejected(self):
        with pytest.raises(SnapshotError):
            restore_namespace([])

    def test_unpicklable_carried_by_reference(self):
        process = SimulatedProcess()
        gen = (i for i in range(3))
        data = {"gen": gen}
        process.sync_variables(data)
        snapshot = process.snapshot(data)
        restored = restore_namespace([snapshot])
        # A memory image preserves the object exactly (by reference here).
        assert restored["gen"] is gen
