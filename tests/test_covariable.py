"""Tests for co-variable membership and the pool (§4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.covariable import (
    CoVariablePool,
    covar_key,
    group_into_components,
)
from repro.core.vargraph import VarGraphBuilder


@pytest.fixture
def builder():
    return VarGraphBuilder()


class TestGrouping:
    def test_independent_variables_are_singletons(self, builder):
        graphs = builder.build_many({"a": [1], "b": [2], "c": 3})
        components = group_into_components(graphs)
        assert sorted(map(sorted, components)) == [["a"], ["b"], ["c"]]

    def test_shared_reference_groups(self, builder):
        shared = [1, 2]
        graphs = builder.build_many({"x": {"ref": shared}, "y": [shared], "z": [9]})
        components = {frozenset(c) for c in group_into_components(graphs)}
        assert frozenset({"x", "y"}) in components
        assert frozenset({"z"}) in components

    def test_transitive_sharing_groups(self, builder):
        a, b = [1], [2]
        graphs = builder.build_many(
            {"p": [a], "q": [a, b], "r": [b]}  # p~q via a, q~r via b
        )
        components = group_into_components(graphs)
        assert len(components) == 1
        assert components[0] == {"p", "q", "r"}

    def test_paper_fig3_example(self, builder):
        # {ser, obj} share 'b'-like object; {df} is independent.
        shared_cell = ["b-value"]

        class Obj:
            pass

        obj = Obj()
        obj.foo = shared_cell
        ser = {"0": ["a"], "1": shared_cell, "2": ["c"]}
        df = {"col": np.arange(4)}
        graphs = builder.build_many({"ser": ser, "obj": obj, "df": df})
        components = {frozenset(c) for c in group_into_components(graphs)}
        assert components == {frozenset({"ser", "obj"}), frozenset({"df"})}


class TestPool:
    def test_from_namespace(self, builder):
        shared = [0]
        pool = CoVariablePool.from_namespace(
            {"x": shared, "y": {"r": shared}, "z": 1}, builder
        )
        assert len(pool) == 2
        assert pool.key_of("x") == covar_key({"x", "y"})
        assert pool.key_of("z") == covar_key({"z"})

    def test_covariable_of(self, builder):
        pool = CoVariablePool.from_namespace({"a": [1]}, builder)
        covariable = pool.covariable_of("a")
        assert covariable is not None
        assert covariable.names == covar_key({"a"})
        assert pool.covariable_of("missing") is None

    def test_replace_swaps_atomically(self, builder):
        pool = CoVariablePool.from_namespace({"a": [1], "b": [2]}, builder)
        graphs = builder.build_many({"a": [1, 2]})
        from repro.core.covariable import CoVariable

        new = CoVariable(names=covar_key({"a"}), graphs=graphs)
        pool.replace([covar_key({"a"}), covar_key({"b"})], [new])
        assert pool.keys() == {covar_key({"a"})}
        assert pool.key_of("b") is None

    def test_type_names_cover_reachable_objects(self, builder):
        pool = CoVariablePool.from_namespace({"d": {"k": [1.5]}}, builder)
        names = pool.covariable_of("d").type_names()
        assert "dict" in names
        assert "list" in names
        assert "float" in names

    def test_opaque_flag(self, builder):
        pool = CoVariablePool.from_namespace(
            {"g": (i for i in range(2)), "x": 1}, builder
        )
        assert pool.covariable_of("g").opaque
        assert not pool.covariable_of("x").opaque

    def test_id_set_union(self, builder):
        shared = [1]
        pool = CoVariablePool.from_namespace({"x": [shared], "y": [shared]}, builder)
        covariable = pool.covariable_of("x")
        assert id(shared) in covariable.id_set

    def test_rebuild_for_names_skips_missing(self, builder):
        pool = CoVariablePool.from_namespace({"a": [1]}, builder)
        graphs = pool.rebuild_for_names({"a", "gone"}, {"a": [1]})
        assert set(graphs) == {"a"}

    def test_all_names(self, builder):
        pool = CoVariablePool.from_namespace({"a": 1, "b": 2}, builder)
        assert pool.all_names() == {"a", "b"}
