"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.session import KishuSession
from repro.core.storage import InMemoryCheckpointStore, SQLiteCheckpointStore
from repro.kernel.kernel import NotebookKernel
from repro.libsim.devices import reset_stores


@pytest.fixture(autouse=True)
def clean_device_stores():
    """Each test starts with empty simulated GPU/remote stores."""
    reset_stores()
    yield
    reset_stores()


@pytest.fixture
def kernel() -> NotebookKernel:
    return NotebookKernel()


@pytest.fixture
def session(kernel) -> KishuSession:
    """A Kishu session attached to a fresh kernel, in-memory store."""
    return KishuSession.init(kernel)


@pytest.fixture(params=["memory", "sqlite"])
def any_store(request):
    """Both checkpoint-store backends, for parity testing."""
    if request.param == "memory":
        store = InMemoryCheckpointStore()
    else:
        store = SQLiteCheckpointStore(":memory:")
    yield store
    store.close()
