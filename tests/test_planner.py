"""Tests for checkout planning."""

from __future__ import annotations

import pytest

from repro.core.covariable import covar_key
from repro.core.graph import CheckpointGraph, PayloadInfo
from repro.core.planner import CheckoutPlanner


def add(graph, stored_names=(), unstored_names=(), deleted=(), parent=None):
    updated = {}
    for names in stored_names:
        key = covar_key(names)
        updated[key] = PayloadInfo(key=key, stored=True, serializer="primary", size_bytes=100)
    for names in unstored_names:
        key = covar_key(names)
        updated[key] = PayloadInfo(key=key, stored=False)
    return graph.add_node(
        cell_source="cell",
        execution_count=len(graph),
        updated=updated,
        deleted={covar_key(n) for n in deleted},
        dependencies={},
        parent_id=parent,
    )


class TestPlans:
    def test_noop_plan(self):
        graph = CheckpointGraph()
        node = add(graph, [{"x"}])
        plan = CheckoutPlanner(graph).plan(node.node_id, node.node_id)
        assert plan.is_noop

    def test_undo_plan_loads_old_version(self):
        graph = CheckpointGraph()
        t1 = add(graph, [{"x"}])
        t2 = add(graph, [{"x"}])
        plan = CheckoutPlanner(graph).plan(t2.node_id, t1.node_id)
        assert len(plan.loads) == 1
        assert plan.loads[0].key == covar_key({"x"})
        assert plan.loads[0].node_id == t1.node_id
        assert plan.loads[0].stored
        assert plan.bytes_to_load == 100

    def test_unstored_payload_flagged_for_recomputation(self):
        graph = CheckpointGraph()
        t1 = add(graph, unstored_names=[{"gen"}])
        add(graph, [], deleted=[{"gen"}])
        plan = CheckoutPlanner(graph).plan(graph.head_id, t1.node_id)
        assert plan.needs_recomputation
        assert not plan.loads[0].stored

    def test_delete_names_for_new_variables(self):
        graph = CheckpointGraph()
        t1 = add(graph, [{"x"}])
        add(graph, [{"fresh"}])
        plan = CheckoutPlanner(graph).plan(graph.head_id, t1.node_id)
        assert plan.delete_names == frozenset({"fresh"})

    def test_identical_reported(self):
        graph = CheckpointGraph()
        add(graph, [{"stay"}])
        t2 = add(graph, [{"change"}])
        add(graph, [{"change"}])
        plan = CheckoutPlanner(graph).plan(graph.head_id, t2.node_id)
        assert covar_key({"stay"}) in plan.identical
        assert [load.key for load in plan.loads] == [covar_key({"change"})]

    def test_missing_version_info_treated_as_unstored(self):
        graph = CheckpointGraph()
        t1 = add(graph, [{"x"}])
        # Corrupt the node's updated map (simulated metadata loss).
        graph.get(t1.node_id).updated.clear()
        add(graph, [], deleted=[{"x"}])
        plan = CheckoutPlanner(graph).plan(graph.head_id, t1.node_id)
        assert plan.needs_recomputation
