"""Tests for the fleet health engine (``repro.obs.health``, DESIGN.md §16).

Covers the declarative SLO spec (parsing, validation, versioning,
fingerprints), sliding-window aggregation with injected clocks,
multi-window burn-rate alerting (fire → resolve → re-fire, window
edges), backpressure hysteresis against both a fake and the real commit
queue, the engine's disabled gate, static/replay evaluation, the
Prometheus exporter, and the ``repro health`` / ``repro top`` CLI
surfaces. The alert lifecycle is pinned byte-for-byte by
``tests/golden/health_alerts.jsonl``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.obs import EventType, LATENCY_BUCKETS, MetricsRegistry, Observer
from repro.obs.health import (
    SLO,
    SLO_FORMAT_VERSION,
    BackpressureController,
    FleetAggregator,
    HealthEngine,
    SLOError,
    SLOEvaluator,
    SLOSpec,
    default_spec,
    evaluate_static,
    replay_events,
)
from repro.obs.promexport import render_prometheus

GOLDEN_ALERTS = pathlib.Path(__file__).parent / "golden" / "health_alerts.jsonl"

#: A deliberately tiny spec with short windows: one backpressure-flagged
#: gauge objective and one zero-tolerance rate objective.
SMALL_SPEC = {
    "slo_format": 1,
    "name": "test-spec",
    "slos": [
        {
            "name": "depth",
            "indicator": "service.queue_depth",
            "kind": "gauge",
            "threshold": 8,
            "objective": 0.5,
            "short_window": 10,
            "long_window": 50,
            "min_samples": 3,
            "backpressure": True,
        },
        {
            "name": "failures",
            "indicator": "events.queue_write_failed",
            "kind": "rate",
            "max_per_window": 0,
            "short_window": 10,
            "long_window": 50,
        },
    ],
}


def small_spec() -> SLOSpec:
    return SLOSpec.from_mapping(SMALL_SPEC)


# ---------------------------------------------------------------------------
# Declarative spec: parsing, validation, versioning, fingerprint
# ---------------------------------------------------------------------------


class TestSLOSpec:
    def test_parses_with_defaults(self):
        spec = small_spec()
        assert spec.name == "test-spec"
        assert spec.slo_format == SLO_FORMAT_VERSION
        depth = spec.slos[0]
        assert depth.budget == pytest.approx(0.5)
        assert depth.backpressure is True
        failures = spec.slos[1]
        assert failures.severity == "page"  # default
        assert failures.burn_threshold == 1.0

    def test_round_trips_through_as_dict(self):
        spec = small_spec()
        again = SLOSpec.from_mapping(spec.as_dict())
        assert again.fingerprint() == spec.fingerprint()

    @pytest.mark.parametrize(
        "patch, match",
        [
            ({"kind": "nope"}, "kind"),
            ({"severity": "urgent"}, "severity"),
            ({"threshold": None}, "threshold"),
            ({"objective": 1.5}, "objective"),
            ({"short_window": 60, "long_window": 60}, "short_window"),
            ({"burn_threshold": 0}, "burn_threshold"),
            ({"mystery_field": 1}, "unknown fields"),
        ],
    )
    def test_bad_slo_entries_raise(self, patch, match):
        entry = dict(SMALL_SPEC["slos"][0])
        entry.update(patch)
        data = {"slo_format": 1, "name": "x", "slos": [entry]}
        with pytest.raises(SLOError, match=match):
            SLOSpec.from_mapping(data)

    def test_rate_without_allowance_raises(self):
        with pytest.raises(SLOError, match="max_per_window"):
            SLO(name="r", indicator="events.x", kind="rate")

    def test_duplicate_names_raise(self):
        entry = dict(SMALL_SPEC["slos"][0])
        data = {"slo_format": 1, "name": "x", "slos": [entry, dict(entry)]}
        with pytest.raises(SLOError, match="duplicate"):
            SLOSpec.from_mapping(data)

    def test_newer_format_refused(self):
        data = dict(SMALL_SPEC, slo_format=SLO_FORMAT_VERSION + 1)
        with pytest.raises(SLOError, match="newer"):
            SLOSpec.from_mapping(data)

    def test_empty_slos_refused(self):
        with pytest.raises(SLOError, match="non-empty"):
            SLOSpec.from_mapping({"slo_format": 1, "name": "x", "slos": []})

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMALL_SPEC))
        spec = SLOSpec.from_file(path)
        assert spec.source == str(path)
        assert spec.fingerprint() == small_spec().fingerprint()

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(SLOError, match="invalid JSON"):
            SLOSpec.from_file(path)

    def test_from_file_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            'slo_format = 1\nname = "toml-spec"\n'
            "[[slos]]\n"
            'name = "depth"\nindicator = "service.queue_depth"\n'
            'kind = "gauge"\nthreshold = 8\nobjective = 0.5\n'
            "short_window = 10\nlong_window = 50\n"
        )
        spec = SLOSpec.from_file(path)
        assert spec.name == "toml-spec"
        assert spec.slos[0].threshold == 8

    def test_fingerprint_tracks_content(self):
        base = small_spec().fingerprint()
        bumped = dict(SMALL_SPEC)
        bumped_slos = [dict(s) for s in SMALL_SPEC["slos"]]
        bumped_slos[0]["threshold"] = 9
        bumped["slos"] = bumped_slos
        assert SLOSpec.from_mapping(bumped).fingerprint() != base

    def test_shipped_default_spec(self):
        spec = default_spec()
        assert spec.name == "fleet-default"
        assert len(spec.slos) == 9
        # Pinned: the CI gate and docs reference this fingerprint. Bump
        # it only with an intentional change to slodata/fleet.json.
        assert spec.fingerprint() == "61a6d390b3e40e2f"
        assert any(slo.backpressure for slo in spec.slos)


# ---------------------------------------------------------------------------
# Sliding-window aggregation
# ---------------------------------------------------------------------------


class TestFleetAggregator:
    def test_window_excludes_samples_at_horizon(self):
        agg = FleetAggregator(clock=lambda: 100.0)
        agg.observe("m", 1.0, now=90.0)  # exactly at the horizon: out
        agg.observe("m", 2.0, now=90.5)
        assert agg.window_values("m", 10.0, now=100.0) == [2.0]

    def test_session_filter(self):
        agg = FleetAggregator(clock=lambda: 10.0)
        agg.observe("m", 1.0, session="a", now=1.0)
        agg.observe("m", 2.0, session="b", now=2.0)
        assert agg.window_values("m", 60.0, now=10.0) == [1.0, 2.0]
        assert agg.window_values("m", 60.0, now=10.0, session="b") == [2.0]
        assert agg.sessions() == ["a", "b"]

    def test_retention_prunes_old_samples(self):
        agg = FleetAggregator(clock=lambda: 0.0, retention=100.0)
        agg.observe("m", 1.0, now=0.0)
        for at in (50.0, 101.0):
            agg.observe("m", 2.0, now=at)
        # The t=0 sample fell off at the t=101 insert (0 <= 101 - 100).
        assert agg.window_values("m", 1000.0, now=101.0) == [2.0, 2.0]

    def test_snapshot_percentiles_are_nearest_rank(self):
        agg = FleetAggregator(clock=lambda: 10.0)
        for i, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            agg.observe("m", value, now=float(i))
        snap = agg.snapshot(window=60.0, now=10.0)
        stats = snap["fleet"]["m"]
        assert stats["count"] == 4
        assert stats["p50"] == 2.0
        assert stats["p99"] == 4.0
        assert stats["max"] == 4.0

    def test_ingest_event_feeds_rate_and_gauge_series(self):
        agg = FleetAggregator(clock=lambda: 5.0)
        agg.ingest_event(
            EventType.COMMIT_ENQUEUED, {"depth": 3, "session": "s1"}, now=1.0
        )
        agg.ingest_event(EventType.COMMIT, {"bytes": 128, "session": "s1"}, now=2.0)
        assert agg.window_values("events.commit_enqueued", 60.0, now=5.0) == [1.0]
        assert agg.window_values("service.queue_depth", 60.0, now=5.0) == [3.0]
        assert agg.window_values("store.bytes_written", 60.0, now=5.0) == [128.0]


# ---------------------------------------------------------------------------
# Multi-window burn-rate evaluation
# ---------------------------------------------------------------------------


def evaluator_with_clock():
    clock_now = [0.0]
    agg = FleetAggregator(clock=lambda: clock_now[0], retention=200.0)
    return SLOEvaluator(small_spec(), agg), agg, clock_now


class TestSLOEvaluator:
    def test_fire_requires_both_windows(self):
        evaluator, agg, _ = evaluator_with_clock()
        # Three bad samples inside the short window but the long window
        # is the same set — both burn, so it fires.
        for at in (1.0, 2.0, 3.0):
            agg.gauge("service.queue_depth", 40.0, now=at)
        transitions = evaluator.evaluate(now=3.0)
        assert [t["type"] for t in transitions] == [EventType.SLO_ALERT_FIRED]
        assert transitions[0]["slo"] == "depth"
        assert "service.queue_depth" in transitions[0]["reason"]
        assert evaluator.firing() == ["depth"]
        assert evaluator.firing_backpressure() is True

    def test_min_samples_gates_firing(self):
        evaluator, agg, _ = evaluator_with_clock()
        agg.gauge("service.queue_depth", 40.0, now=1.0)
        agg.gauge("service.queue_depth", 40.0, now=2.0)
        assert evaluator.evaluate(now=2.0) == []  # 2 < min_samples=3

    def test_resolve_on_short_window_recovery_and_refire(self):
        evaluator, agg, _ = evaluator_with_clock()
        for at in (1.0, 2.0, 3.0):
            agg.gauge("service.queue_depth", 40.0, now=at)
        evaluator.evaluate(now=3.0)
        # Healthy samples push the bad ones out of the short window
        # (but they still sit in the long window: resolve is short-only).
        for at in (14.0, 15.0, 16.0):
            agg.gauge("service.queue_depth", 1.0, now=at)
        transitions = evaluator.evaluate(now=16.0)
        assert [t["type"] for t in transitions] == [EventType.SLO_ALERT_RESOLVED]
        assert evaluator.firing() == []
        # Sustained badness again → a second, distinct fire.
        for at in (20.0, 21.0, 22.0):
            agg.gauge("service.queue_depth", 40.0, now=at)
        transitions = evaluator.evaluate(now=22.0)
        assert [t["type"] for t in transitions] == [EventType.SLO_ALERT_FIRED]
        assert evaluator.state("depth").fired == 2
        assert evaluator.state("depth").resolved == 1

    def test_zero_tolerance_rate_fires_on_single_event(self):
        evaluator, agg, _ = evaluator_with_clock()
        agg.count("events.queue_write_failed", 1, now=5.0)
        transitions = evaluator.evaluate(now=5.0)
        fired = [t for t in transitions if t["slo"] == "failures"]
        assert fired and fired[0]["type"] == EventType.SLO_ALERT_FIRED
        assert fired[0]["burn_short"] == 1.0

    def test_transitions_emit_observer_events(self):
        observer = Observer()
        clock_now = [0.0]
        agg = FleetAggregator(clock=lambda: clock_now[0], retention=200.0)
        evaluator = SLOEvaluator(small_spec(), agg, observer=observer)
        agg.count("events.queue_write_failed", 1, now=1.0)
        evaluator.evaluate(now=1.0)
        fired = observer.events.of_type(EventType.SLO_ALERT_FIRED)
        assert len(fired) == 1
        assert fired[0].fields["slo"] == "failures"
        assert fired[0].fields["severity"] == "page"


# ---------------------------------------------------------------------------
# Backpressure: hysteresis ladder, real queue integration
# ---------------------------------------------------------------------------


class FakeQueue:
    PRESSURE_LEVELS = ("accept", "degrade_fsync", "block")

    def __init__(self, depth: int = 0) -> None:
        self.calls = []
        self._depth = depth

    def set_pressure(self, level, *, ceiling=None, reason=""):
        self.calls.append((level, ceiling, reason))

    def depth(self) -> int:
        return self._depth


class TestBackpressureController:
    def test_escalates_after_sustained_firing_with_hysteresis(self):
        queue = FakeQueue()
        ctl = BackpressureController(
            queue, escalate_after=2, relax_after=3, ceiling=16
        )
        assert ctl.update(True) is None  # 1 hot tick: not yet
        assert ctl.update(True) == "degrade_fsync"
        assert ctl.update(True) is None  # counter reset on transition
        assert ctl.update(True) == "block"
        # Ladder top: further firing ticks change nothing.
        assert ctl.update(True) is None
        assert queue.calls == [
            ("degrade_fsync", 16, "slo_firing"),
            ("block", 16, "slo_firing"),
        ]

    def test_relaxes_after_sustained_recovery(self):
        queue = FakeQueue()
        ctl = BackpressureController(
            queue, escalate_after=3, relax_after=2, ceiling=None
        )
        for _ in range(3):
            ctl.update(True, reason="depth")
        assert ctl.level == "degrade_fsync"
        assert ctl.update(False) is None
        assert ctl.update(False) == "accept"
        assert ctl.level == "accept"
        # A firing tick mid-recovery resets the cool-down counter
        # (without escalating: one hot tick < escalate_after).
        for _ in range(3):
            ctl.update(True)
        assert ctl.level == "degrade_fsync"
        assert ctl.update(False) is None
        assert ctl.update(True) is None
        assert ctl.update(False) is None  # cool restarted at 1
        assert ctl.update(False) == "accept"

    def test_real_queue_pressure_surface(self):
        from repro.core.storage import InMemoryCheckpointStore
        from repro.service.queue import PRESSURE_LEVELS, CommitQueue

        observer = Observer()
        queue = CommitQueue(InMemoryCheckpointStore(), observer=observer)
        try:
            assert queue.pressure == "accept"
            assert queue.stats()["pressure"] == "accept"
            queue.set_pressure("degrade_fsync", reason="test")
            assert queue.pressure == "degrade_fsync"
            # Idempotent: re-setting the same level emits nothing new.
            queue.set_pressure("degrade_fsync")
            changes = observer.events.of_type(EventType.BACKPRESSURE_CHANGED)
            assert len(changes) == 1
            assert changes[0].fields["previous"] == "accept"
            queue.set_pressure("block", ceiling=4)
            with queue._lock:
                assert queue._effective_cap_locked() == 4
                assert queue._effective_fsync_locked() == "per_batch"
            queue.set_pressure("accept")
            with queue._lock:
                assert queue._effective_cap_locked() == queue._max_depth
            with pytest.raises(ValueError, match="pressure"):
                queue.set_pressure("panic")
            assert (
                observer.metrics.gauge("service.backpressure").value
                == PRESSURE_LEVELS.index("accept")
            )
        finally:
            queue.stop(drain=False)


# ---------------------------------------------------------------------------
# The engine: disabled gate, closed loop, spec-derived ceiling
# ---------------------------------------------------------------------------


class TestHealthEngine:
    def test_disabled_engine_is_inert(self):
        engine = HealthEngine.disabled()
        assert engine.enabled is False
        assert engine.tick() == []
        engine.record_commit(1.0)  # must not raise (no aggregator exists)
        engine.record_checkout(1.0)
        engine.ingest_event(EventType.COMMIT, {})
        engine.attach_queue(FakeQueue())
        assert engine.report() == {"enabled": False}

    def test_closed_loop_escalates_backpressure(self):
        clock_now = [0.0]
        engine = HealthEngine(
            spec=small_spec(),
            clock=lambda: clock_now[0],
            escalate_after=2,
            relax_after=3,
        )
        queue = FakeQueue(depth=40)  # far over the threshold of 8
        engine.attach_queue(queue, ceiling=8)
        # Each tick samples queue depth; min_samples=3 means the alert
        # can first fire on the third tick, then hysteresis needs 2
        # firing ticks before the first escalation.
        transitions = []
        for at in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
            clock_now[0] = at
            transitions.extend(engine.tick(now=at))
        assert any(t["type"] == EventType.SLO_ALERT_FIRED for t in transitions)
        levels = [call[0] for call in queue.calls]
        assert levels == ["degrade_fsync", "block"]
        assert all(call[1] == 8 for call in queue.calls)
        assert engine.stats.backpressure_transitions == 2
        report = engine.report(now=7.0)
        assert report["firing"] == ["depth"]
        assert report["pressure"] == "block"
        assert report["spec"]["fingerprint"] == small_spec().fingerprint()

    def test_ceiling_derived_from_spec_backpressure_gauge(self):
        engine = HealthEngine(spec=small_spec(), clock=lambda: 0.0)
        engine.attach_queue(FakeQueue())
        assert engine.controller.ceiling == 8  # from SMALL_SPEC's threshold
        fleet = HealthEngine(clock=lambda: 0.0)  # shipped spec
        fleet.attach_queue(FakeQueue())
        assert fleet.controller.ceiling == 16

    def test_record_verbs_feed_the_aggregator(self):
        engine = HealthEngine(spec=small_spec(), clock=lambda: 1.0)
        engine.record_commit(0.2, session="s1")
        engine.record_checkout(0.4, session="s1")
        agg = engine.aggregator
        assert agg.window_values("commit.latency_seconds", 60.0, now=1.0) == [0.2]
        assert agg.window_values("checkout.latency_seconds", 60.0, now=1.0) == [0.4]


# ---------------------------------------------------------------------------
# Static and replay evaluation
# ---------------------------------------------------------------------------


class TestEvaluateStatic:
    def test_latency_rate_and_no_data_statuses(self):
        spec = default_spec()
        report = evaluate_static(
            spec,
            {
                "commit.latency_seconds": {"samples": [0.01] * 10},
                "events.queue_write_failed": {"count": 2},
            },
        )
        by_name = {r["slo"]: r for r in report["results"]}
        assert by_name["commit-latency"]["status"] == "ok"
        assert by_name["write-failures"]["status"] == "firing"
        assert by_name["write-failures"]["burn"] == 2.0
        assert by_name["checkout-latency"]["status"] == "no_data"
        assert report["firing"] == ["write-failures"]
        assert report["fingerprint"] == spec.fingerprint()

    def test_burn_is_bad_fraction_over_budget(self):
        spec = small_spec()
        report = evaluate_static(
            spec, {"service.queue_depth": {"samples": [40.0, 1.0, 1.0, 1.0]}}
        )
        depth = next(r for r in report["results"] if r["slo"] == "depth")
        # 1/4 bad over a 0.5 budget → burn 0.5 → under threshold 1.0.
        assert depth["burn"] == 0.5
        assert depth["status"] == "ok"


def lifecycle_records():
    """A synthetic service event stream driving fire → resolve → re-fire.

    Written out longhand (not generated) so the golden file's meaning
    stays legible: depths over threshold fire `depth`, a write failure
    fires `failures`, healthy depths resolve both, a second failure
    re-fires, and the replay tail resolves everything.
    """
    return [
        {"seq": 1, "type": "commit_enqueued", "session": "s1", "depth": 12},
        {"seq": 2, "type": "commit_enqueued", "session": "s1", "depth": 13},
        {"seq": 3, "type": "commit_enqueued", "session": "s2", "depth": 14},
        {"seq": 5, "type": "queue_write_failed", "session": "s1", "node": "t5"},
        {"seq": 8, "type": "commit_enqueued", "session": "s1", "depth": 1},
        {"seq": 16, "type": "commit_enqueued", "session": "s2", "depth": 1},
        {"seq": 17, "type": "commit_enqueued", "session": "s1", "depth": 2},
        {"seq": 30, "type": "queue_write_failed", "session": "s2", "node": "t9"},
    ]


class TestReplayEvents:
    def test_alert_lifecycle_matches_golden(self):
        report = replay_events(small_spec(), lifecycle_records())
        rendered = (
            "\n".join(
                json.dumps(alert, sort_keys=True) for alert in report["alerts"]
            )
            + "\n"
        )
        again = replay_events(small_spec(), lifecycle_records())
        assert report["alerts"] == again["alerts"], "replay must be deterministic"
        assert rendered == GOLDEN_ALERTS.read_text(), (
            "alert lifecycle drifted from tests/golden/health_alerts.jsonl — "
            "the alert sequence must be a pure function of (events, spec); "
            "regenerate only for an intentional semantics change"
        )

    def test_lifecycle_shape(self):
        report = replay_events(small_spec(), lifecycle_records())
        kinds = [(a["slo"], a["type"]) for a in report["alerts"]]
        # Both SLOs fire, resolve on recovery/drain, and `failures`
        # re-fires on the second failure before the tail resolves it.
        assert kinds.count(("failures", EventType.SLO_ALERT_FIRED)) == 2
        assert kinds.count(("failures", EventType.SLO_ALERT_RESOLVED)) == 2
        assert kinds.count(("depth", EventType.SLO_ALERT_FIRED)) == 1
        assert kinds.count(("depth", EventType.SLO_ALERT_RESOLVED)) == 1
        assert report["firing"] == []  # tail pass drained everything
        assert report["events"] == len(lifecycle_records())

    def test_empty_stream(self):
        report = replay_events(small_spec(), [])
        assert report["alerts"] == []
        assert report["events"] == 0


# ---------------------------------------------------------------------------
# Prometheus exporter
# ---------------------------------------------------------------------------


class TestPrometheusExport:
    def test_renders_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.counter("commit.count").inc(3)
        registry.gauge("store.head_state_covariables").set(5)
        registry.histogram("service.write_latency_seconds", LATENCY_BUCKETS).record(
            0.004
        )
        text = render_prometheus(registry)
        assert "# TYPE repro_commit_count_total counter\n" in text
        assert "repro_commit_count_total 3\n" in text
        assert "# TYPE repro_store_head_state_covariables gauge\n" in text
        assert 'le="0.005"} 1\n' in text
        assert 'le="+Inf"} 1\n' in text
        assert "service_write_latency_seconds_count 1\n" in text
        assert text.endswith("\n")

    def test_labels_and_determinism(self):
        registry = MetricsRegistry()
        registry.counter("commit.count").inc()
        text = render_prometheus(registry, labels={"store": "fleet.db"})
        assert 'repro_commit_count_total{store="fleet.db"} 1' in text
        assert render_prometheus(registry, labels={"store": "fleet.db"}) == text


# ---------------------------------------------------------------------------
# CLI surfaces: repro health / repro top
# ---------------------------------------------------------------------------


class TestHealthCli:
    def run_health(self, args):
        import io

        from repro.cli import health_main

        out, err = io.StringIO(), io.StringIO()
        code = health_main(args, stdout=out, stderr=err)
        return code, out.getvalue(), err.getvalue()

    def write_events(self, tmp_path, records):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        return str(path)

    def write_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMALL_SPEC))
        return str(path)

    def test_needs_store_or_events(self):
        code, _, err = self.run_health([])
        assert code == 2
        assert "--store" in err

    def test_strict_fails_on_fired_alert(self, tmp_path):
        events = self.write_events(tmp_path, lifecycle_records())
        spec = self.write_spec(tmp_path)
        code, out, _ = self.run_health(
            ["--events", events, "--slo", spec, "--strict"]
        )
        assert code == 1
        assert "FIRED" in out and "ALERTS FIRED" in out

    def test_strict_passes_on_clean_stream(self, tmp_path):
        events = self.write_events(
            tmp_path,
            [{"seq": i, "type": "commit_enqueued", "session": "s1", "depth": 1}
             for i in range(5)],
        )
        spec = self.write_spec(tmp_path)
        code, out, _ = self.run_health(
            ["--events", events, "--slo", spec, "--strict"]
        )
        assert code == 0
        assert "health: OK" in out

    def test_json_report_shape(self, tmp_path):
        events = self.write_events(tmp_path, lifecycle_records())
        spec = self.write_spec(tmp_path)
        code, out, _ = self.run_health(
            ["--events", events, "--slo", spec, "--format", "json"]
        )
        assert code == 0  # not strict
        payload = json.loads(out)
        assert payload["ok"] is False
        assert payload["alerts_fired"] == 3
        assert payload["fingerprint"] == small_spec().fingerprint()

    def test_bad_spec_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        events = self.write_events(tmp_path, [])
        code, _, err = self.run_health(["--events", events, "--slo", str(bad)])
        assert code == 2
        assert "repro health:" in err

    def test_prom_format_needs_store(self, tmp_path):
        events = self.write_events(tmp_path, [])
        code, _, err = self.run_health(["--events", events, "--format", "prom"])
        assert code == 2

    def test_store_report_and_prom(self, tmp_path):
        from repro.core.storage import SQLiteCheckpointStore
        from repro.core.session import KishuSession
        from repro.kernel.kernel import NotebookKernel

        path = str(tmp_path / "store.db")
        session = KishuSession.init(
            NotebookKernel(), store=SQLiteCheckpointStore(path)
        )
        session.run_cell("x = 1")
        session.store.close()
        code, out, _ = self.run_health(["--store", path, "--format", "json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["store"]["store.nodes"] == 1
        code, out, _ = self.run_health(["--store", path, "--format", "prom"])
        assert code == 0
        assert "repro_store_nodes_total 1" in out


class TestTopCli:
    def test_one_frame_over_a_store(self, tmp_path):
        import io

        from repro.cli import top_main
        from repro.core.storage import SQLiteCheckpointStore
        from repro.core.session import KishuSession
        from repro.kernel.kernel import NotebookKernel

        path = str(tmp_path / "store.db")
        session = KishuSession.init(
            NotebookKernel(), store=SQLiteCheckpointStore(path)
        )
        session.run_cell("x = 1")
        session.store.close()
        out, err = io.StringIO(), io.StringIO()
        code = top_main(["--store", path, "--iterations", "1"], out, err)
        assert code == 0
        text = out.getvalue()
        assert "repro top" in text and "1 commit(s)" in text
        assert "default" in text

    def test_missing_store(self, tmp_path):
        import io

        from repro.cli import top_main

        out, err = io.StringIO(), io.StringIO()
        code = top_main([ "--store", str(tmp_path / "nope.db")], out, err)
        assert code == 2
        assert "no such store" in err.getvalue()
