"""Tests for the array fast-path digests (§6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import combine, digest_array, digest_bytes, fnv1a64


class TestFnv:
    def test_deterministic(self):
        assert fnv1a64(b"hello") == fnv1a64(b"hello")

    def test_different_inputs_differ(self):
        assert fnv1a64(b"hello") != fnv1a64(b"hellp")

    def test_empty_input(self):
        assert isinstance(fnv1a64(b""), int)

    def test_large_buffer_folded(self):
        big = bytes(1_000_000)
        assert fnv1a64(big) == fnv1a64(bytes(1_000_000))
        tweaked = bytearray(big)
        tweaked[500_000] = 1
        assert fnv1a64(big) != fnv1a64(bytes(tweaked))

    def test_accepts_memoryview(self):
        data = bytearray(b"abc")
        assert fnv1a64(memoryview(data)) == fnv1a64(b"abc")


class TestDigestBytes:
    def test_backends_agree_with_themselves(self):
        for backend in ("fnv", "blake2b"):
            assert digest_bytes(b"x", backend=backend) == digest_bytes(
                b"x", backend=backend
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            digest_bytes(b"x", backend="md5000")


class TestDigestArray:
    def test_content_sensitivity(self):
        a = np.arange(100, dtype=np.float64)
        b = a.copy()
        assert digest_array(a) == digest_array(b)
        b[50] += 1
        assert digest_array(a) != digest_array(b)

    def test_dtype_sensitivity(self):
        ints = np.zeros(8, dtype=np.int64)
        floats = np.zeros(8, dtype=np.float64)
        assert digest_array(ints) != digest_array(floats)

    def test_shape_sensitivity(self):
        flat = np.zeros(12)
        grid = np.zeros((3, 4))
        assert digest_array(flat) != digest_array(grid)

    def test_noncontiguous_input(self):
        base = np.arange(20)
        strided = base[::2]
        assert digest_array(strided) == digest_array(np.ascontiguousarray(strided))


class TestCombine:
    def test_order_sensitive(self):
        assert combine(1, 2) != combine(2, 1)

    def test_deterministic(self):
        assert combine(7, 8, 9) == combine(7, 8, 9)

    def test_arity_sensitive(self):
        assert combine(1) != combine(1, 0)
