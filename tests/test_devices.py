"""Tests for the simulated off-process stores."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.libsim.devices import (
    GPU_STORE,
    REMOTE_STORE,
    DeviceStore,
    OffProcessHandle,
    contains_offprocess,
    store_by_name,
)


class TestDeviceStore:
    def test_put_get_delete(self):
        store = DeviceStore("test")
        key = store.put({"w": 1})
        assert store.get(key) == {"w": 1}
        assert key in store
        store.delete(key)
        assert key not in store

    def test_explicit_key(self):
        store = DeviceStore("test")
        store.put("payload", key="mine")
        assert store.get("mine") == "payload"

    def test_store_by_name(self):
        assert store_by_name("gpu") is GPU_STORE
        assert store_by_name("remote") is REMOTE_STORE
        with pytest.raises(KeyError):
            store_by_name("tape")


class TestOffProcessHandle:
    def test_fetch_and_update(self):
        handle = OffProcessHandle("gpu", np.zeros(4))
        handle.update(np.ones(4))
        assert handle.fetch().sum() == 4

    def test_reduce_round_trips_payload(self):
        original = OffProcessHandle("gpu", np.arange(8))
        restored = pickle.loads(pickle.dumps(original, protocol=5))
        assert np.array_equal(restored.fetch(), np.arange(8))
        # The restored handle is a fresh device allocation, not the same key.
        assert restored.key != original.key

    def test_equality_compares_payloads(self):
        left = OffProcessHandle("gpu", np.arange(3))
        right = OffProcessHandle("gpu", np.arange(3))
        assert left == right

    def test_free_releases(self):
        handle = OffProcessHandle("gpu", 1)
        handle.free()
        with pytest.raises(KeyError):
            handle.fetch()


class TestContainsOffprocess:
    def test_direct_handle(self):
        assert contains_offprocess(OffProcessHandle("gpu", 1))

    def test_nested_in_containers(self):
        handle = OffProcessHandle("remote", 1)
        assert contains_offprocess([{"deep": (handle,)}])

    def test_nested_in_instance_attributes(self):
        class Holder:
            def __init__(self):
                self.inner = OffProcessHandle("gpu", 2)

        assert contains_offprocess(Holder())

    def test_plain_data_clean(self):
        assert not contains_offprocess({"a": [1, 2], "b": np.zeros(3)})

    def test_modules_never_offprocess(self):
        assert not contains_offprocess(np)

    def test_cycles_terminate(self):
        loop = []
        loop.append(loop)
        assert not contains_offprocess(loop)

    def test_depth_bound(self):
        handle = OffProcessHandle("gpu", 1)
        nested = [[[[[[[[[handle]]]]]]]]]
        assert not contains_offprocess(nested, max_depth=3)
        assert contains_offprocess(nested, max_depth=20)
