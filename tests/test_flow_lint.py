"""Tests for the whole-notebook KSH30x lint rules and golden CLI output."""

from __future__ import annotations

import io
import os

import pytest

from repro.analysis.rules import LintEngine

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def notebook_findings(sources, execution_counts=None, rule=None):
    cells = [(f"cell[{i}]", source) for i, source in enumerate(sources)]
    findings = LintEngine().lint_notebook(cells, execution_counts=execution_counts)
    if rule is not None:
        findings = [f for f in findings if f.rule_id == rule]
    return findings


class TestUseBeforeDefiniteDef:
    def test_fires_on_undefined_read(self):
        findings = notebook_findings(["y = x + 1"], rule="KSH301")
        assert len(findings) == 1
        assert "'x'" in findings[0].message
        assert findings[0].cell_index == 0

    def test_silent_when_defined_earlier(self):
        assert not notebook_findings(["x = 1", "y = x + 1"], rule="KSH301")

    def test_silent_on_builtins(self):
        assert not notebook_findings(["n = len([1])"], rule="KSH301")

    def test_conditional_definition_variant(self):
        findings = notebook_findings(
            ["if flag:\n    x = 1", "y = x"], rule="KSH301"
        )
        messages = [f.message for f in findings if "'x'" in f.message]
        assert messages and "conditionally" in messages[0]

    def test_deleted_variant(self):
        findings = notebook_findings(["x = 1", "del x", "y = x"], rule="KSH301")
        assert findings and "deleted" in findings[0].message

    def test_escape_window_deferred_to_ksh304(self):
        findings = notebook_findings(["exec('x = 1')", "y = x"])
        rules = {f.rule_id for f in findings if "'x'" in f.message}
        assert "KSH304" in rules
        assert "KSH301" not in rules


class TestDeadWrite:
    def test_fires_on_shadowed_write(self):
        findings = notebook_findings(["x = 1", "x = 2", "y = x"], rule="KSH302")
        assert len(findings) == 1
        assert findings[0].cell_index == 0

    def test_silent_when_read_between(self):
        assert not notebook_findings(
            ["x = 1", "y = x", "x = 2"], rule="KSH302"
        )

    def test_silent_when_mutated_between(self):
        assert not notebook_findings(
            ["xs = [1]", "xs.append(2)", "xs = []"], rule="KSH302"
        )

    def test_silent_when_escape_between(self):
        assert not notebook_findings(
            ["x = 1", "exec('print(x)')", "x = 2"], rule="KSH302"
        )


class TestExecutionOrder:
    def test_fires_on_out_of_order_counts(self):
        findings = notebook_findings(
            ["a = 1", "b = 2"], execution_counts=[5, 3], rule="KSH303"
        )
        assert len(findings) == 1
        assert findings[0].cell_index == 1
        assert "In[3]" in findings[0].message

    def test_silent_in_order(self):
        assert not notebook_findings(
            ["a = 1", "b = 2"], execution_counts=[1, 2], rule="KSH303"
        )

    def test_unknown_counts_skipped(self):
        assert not notebook_findings(
            ["a = 1", "b = 2"], execution_counts=[0, 0], rule="KSH303"
        )


class TestEscapedDependency:
    def test_fires_on_read_through_escape_window(self):
        findings = notebook_findings(
            ["x = 1", "exec('x = 2')", "y = x"], rule="KSH304"
        )
        assert len(findings) == 1
        assert findings[0].cell_index == 2
        assert "replay-unsafe" in findings[0].message

    def test_silent_without_escape(self):
        assert not notebook_findings(["x = 1", "y = x"], rule="KSH304")


class TestNotebookLintMechanics:
    def test_suppression_comment_silences_notebook_finding(self):
        noisy = notebook_findings(["y = x + 1"], rule="KSH301")
        assert noisy
        quiet = notebook_findings(
            ["# kishu: disable=KSH301\ny = x + 1"], rule="KSH301"
        )
        assert not quiet

    def test_findings_sorted_by_cell_then_span(self):
        findings = notebook_findings(
            ["b = undefined_two", "a = undefined_one"]
        )
        keys = [f.sort_key for f in findings]
        assert keys == sorted(keys)

    def test_per_cell_rules_still_run(self):
        findings = notebook_findings(["exec('x = 1')"])
        assert any(f.rule_id == "KSH101" for f in findings)


class TestGoldenOutput:
    """`--format json` must be byte-stable (satellite: deterministic output)."""

    @pytest.fixture(autouse=True)
    def _repo_root_cwd(self, monkeypatch):
        # Golden files embed repo-relative labels.
        monkeypatch.chdir(REPO_ROOT)

    def run_main(self, main, argv):
        from repro import cli

        buffer = io.StringIO()
        getattr(cli, main)(argv, stdout=buffer)
        return buffer.getvalue()

    def test_notebook_lint_json_matches_golden(self):
        argv = [
            "tests/golden/flow_fixture.py", "--notebook", "--format", "json"
        ]
        first = self.run_main("lint_main", argv)
        second = self.run_main("lint_main", argv)
        assert first == second  # byte-stable across runs
        with open(os.path.join(GOLDEN_DIR, "flow_lint.json")) as handle:
            assert first == handle.read()

    def test_replay_plan_json_matches_golden(self):
        argv = ["tests/golden/flow_fixture.py", "--format", "json"]
        first = self.run_main("plan_main", argv)
        second = self.run_main("plan_main", argv)
        assert first == second
        with open(os.path.join(GOLDEN_DIR, "replay_plan.json")) as handle:
            assert first == handle.read()

    def test_plan_strict_exit_code_on_unsafe_plan(self):
        from repro.cli import plan_main

        buffer = io.StringIO()
        code = plan_main(
            ["tests/golden/flow_fixture.py", "--strict"], stdout=buffer
        )
        assert code == 1  # the fixture routes through an exec() cell
        assert "REPLAY-UNSAFE" in buffer.getvalue()

    def test_plan_requires_exactly_one_source(self):
        from repro.cli import plan_main

        assert plan_main([], stdout=io.StringIO()) == 2
        assert (
            plan_main(
                ["a.py", "--store", "b.sqlite"], stdout=io.StringIO()
            )
            == 2
        )
