"""End-to-end tests for checkout fallback via statically planned replay.

Covers the ISSUE 4 acceptance path: with a missing or unserializable
payload, checkout reconstructs the co-variable through a
:class:`~repro.core.replay.ReplayEngine` plan that executes strictly
fewer cells than the full history, with zero runtime cross-validation
mismatches — and the restored namespace equals a cold re-execution
oracle (the PR 1 harness's :func:`canonical_state`).
"""

from __future__ import annotations

import pytest

from repro.core.covariable import covar_key
from repro.core.replay import DeclineReason, PlanDecline
from repro.core.session import KishuSession
from repro.core.storage import SQLiteCheckpointStore, StoredPayload
from repro.kernel.kernel import NotebookKernel
from repro.obs import EventType

from test_oracle import canonical_state


def tombstone_payload(session, key, node_id):
    """Simulate a payload lost on disk (deleted, pruned, corrupted away)."""
    session.store.write_payload(
        StoredPayload(node_id=node_id, key=key, data=None, serializer=None)
    )


class TestDeletedPayloadFallback:
    CELLS = (
        "base = [1, 2, 3]",
        "derived = {'sum': sum(base), 'doubled': [x * 2 for x in base]}",
    )

    def run_cells(self, session):
        for source in self.CELLS:
            session.run_cell(source)

    def test_checkout_reconstructs_via_replay(self, tmp_path):
        kernel = NotebookKernel()
        store = SQLiteCheckpointStore(str(tmp_path / "kishu.db"))
        session = KishuSession.init(kernel, store=store)
        try:
            self.run_cells(session)
            target = session.head_id
            key = covar_key({"derived"})
            version = session.graph.get(target).state.version_of(key)
            session.run_cell("derived = None")
            tombstone_payload(session, key, version)

            report = session.checkout(target)

            assert kernel.get("derived") == {"sum": 6, "doubled": [2, 4, 6]}
            assert key in report.recomputed_keys
            assert session.plan_stats.plans_executed >= 1
            assert session.plan_stats.plans_declined == 0
            assert session.plan_stats.validation_mismatches == 0
        finally:
            store.close()

    def test_restored_namespace_equals_cold_reexecution_oracle(self, tmp_path):
        kernel = NotebookKernel()
        store = SQLiteCheckpointStore(str(tmp_path / "kishu.db"))
        session = KishuSession.init(kernel, store=store)
        try:
            self.run_cells(session)
            target = session.head_id
            key = covar_key({"derived"})
            version = session.graph.get(target).state.version_of(key)
            session.run_cell("derived = None")
            tombstone_payload(session, key, version)
            session.checkout(target)
        finally:
            store.close()

        oracle = NotebookKernel()
        for source in self.CELLS:
            oracle.run_cell(source)
        assert canonical_state(kernel) == canonical_state(oracle)

    def test_replay_loads_dependency_instead_of_rerunning_it(self, session):
        # The stored {base} version short-circuits the recursion: the
        # plan loads it rather than replaying its producing cell.
        session.run_cell("base = [1, 2, 3]")
        session.run_cell("derived = [x * 2 for x in base]")
        target = session.head_id
        key = covar_key({"derived"})
        version = session.graph.get(target).state.version_of(key)
        session.run_cell("derived = None")
        tombstone_payload(session, key, version)
        session.checkout(target)
        assert session.kernel.get("derived") == [2, 4, 6]
        assert session.plan_stats.payload_loads >= 1
        assert session.plan_stats.cells_skipped >= 1

    def test_unsafe_plan_declined_to_legacy_recursion(self, session):
        # A dependency produced by an opaque cell makes the static plan
        # replay-unsafe; the engine must decline — never silently run an
        # unsound plan — and the legacy runtime-dependency recursion
        # restores the value.
        session.run_cell("exec('seed = [4]')")
        session.run_cell("digest = [seed[0] * i for i in range(3)]")
        target = session.head_id
        key = covar_key({"digest"})
        version = session.graph.get(target).state.version_of(key)
        session.run_cell("digest = None")
        tombstone_payload(session, key, version)
        report = session.checkout(target)
        assert session.kernel.get("digest") == [0, 4, 8]
        assert key in report.recomputed_keys
        assert session.plan_stats.unsafe_plans >= 1
        assert session.plan_stats.plans_declined >= 1

        # Satellite (ISSUE 5): a decline is machine-readable, not just a
        # counter tick — the reason enum + detail ride on PlanStats, the
        # checkout report, and the event log.
        decline = session.plan_stats.last_decline
        assert isinstance(decline, PlanDecline)
        assert decline.reason is DeclineReason.UNSAFE
        assert decline.detail  # a human explanation, never empty
        assert decline.names == tuple(sorted(key))
        assert report.declines and report.declines[-1] is decline
        assert session.plan_stats.declines_by_reason()["unsafe"] >= 1

        events = session.observer.events.of_type(EventType.REPLAY_PLAN_DECLINED)
        assert events, "every decline must appear in the event log"
        assert events[-1].fields["reason"] == "unsafe"
        assert events[-1].fields["detail"] == decline.detail

    def test_every_decline_reason_has_distinct_wire_value(self):
        values = [reason.value for reason in DeclineReason]
        assert len(values) == len(set(values))
        assert all(value == value.lower() for value in values)


@pytest.fixture
def session():
    kernel = NotebookKernel()
    return KishuSession.init(kernel)


class TestSharedReferencingAcceptance:
    """ISSUE 4 acceptance: minimal replay on the shared-referencing workload."""

    def run_workload(self, session):
        np = pytest.importorskip("numpy")
        from repro.workloads import shared_referencing_workload

        spec = shared_referencing_workload(3, n_arrays=8, array_kb=8)
        for cell in spec.cells:
            session.run_cell(cell.source)
        return np, spec

    def test_minimal_replay_beats_full_history(self, session):
        np, spec = self.run_workload(session)
        target = session.head_id
        bundle_key = session.pool.key_of("bundle")
        assert bundle_key == frozenset({"bundle", "arr_0", "arr_1", "arr_2"})
        version = session.graph.get(target).state.version_of(bundle_key)

        # Diverge the co-variable (so checkout must reload it), then
        # lose the target version's payload.
        session.run_cell("bundle[0][:] = 0.0")
        tombstone_payload(session, bundle_key, version)
        report = session.checkout(target)

        # Correctness: the probe ran `bundle[0][:] = bundle[0] * 1.01 + 0.5`
        # over arrays seeded deterministically, so a cold re-execution is
        # an exact oracle.
        n_elements = 8 * 1024 // 8
        for i in range(3):
            expected = np.random.default_rng(i).random(n_elements)
            if i == 0:
                expected = expected * 1.01 + 0.5
            assert np.array_equal(session.kernel.get(f"arr_{i}"), expected)
        # Aliasing inside the co-variable survives the replay.
        bundle = session.kernel.get("bundle")
        assert bundle[0] is session.kernel.get("arr_0")
        assert bundle[2] is session.kernel.get("arr_2")
        assert bundle_key in report.recomputed_keys

        # Minimality: strictly fewer cells executed than the full
        # history (12 cells up to the probe), and zero cross-validation
        # mismatches — the acceptance criterion's telemetry check.
        stats = session.plan_stats
        assert stats.plans_executed >= 1
        total_cells = len(spec.cells)
        assert 0 < stats.cells_replayed < total_cells
        assert stats.cells_skipped > 0
        assert stats.validation_mismatches == 0

    def test_unserializable_covariable_variant(self):
        # Same acceptance shape with a *blocklisted* (never-stored)
        # co-variable instead of a deleted payload: the bundle list is
        # unserializable by policy, so every checkout of it must go
        # through replay.
        np = pytest.importorskip("numpy")
        from repro.core.serialization import Blocklist
        from repro.workloads import shared_referencing_workload

        kernel = NotebookKernel()
        session = KishuSession.init(kernel, blocklist=Blocklist({"list"}))
        spec = shared_referencing_workload(2, n_arrays=6, array_kb=4)
        for cell in spec.cells:
            session.run_cell(cell.source)
        target = session.head_id
        session.run_cell("bundle = None")
        session.checkout(target)

        n_elements = 4 * 1024 // 8
        expected = np.random.default_rng(0).random(n_elements) * 1.01 + 0.5
        assert np.array_equal(kernel.get("bundle")[0], expected)
        assert session.plan_stats.validation_mismatches == 0
