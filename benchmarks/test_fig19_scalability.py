"""Fig 19: scalability to long notebook sessions (§7.7.2).

Randomly re-execute up to 1000 cells of the two visualization notebooks
(HW-LM, Qiskit) and measure (1) checkpoint-graph metadata size and
(2) state-difference computation time for undoing 0–1000 cells from the
tip. Paper claims: both grow linearly — metadata with executed cells,
diff time with the total cell count of the two states — and stay tiny in
absolute terms (9 MB / 81 ms at 1000 cells on the paper's testbed).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import format_series, format_table
from repro.core.session import KishuSession
from repro.kernel.kernel import NotebookKernel
from repro.workloads import build_notebook, long_session_cells

TOTAL_EXECUTIONS = 1000
CHECKPOINT_SAMPLES = [100, 250, 500, 750, 1000]
UNDO_DEPTHS = [0, 100, 250, 500, 750, 999]
SCALE = 0.05  # tiny data: this experiment measures metadata, not payloads


def run_long_session(notebook: str):
    spec = build_notebook(notebook, SCALE)
    cells = long_session_cells(spec, TOTAL_EXECUTIONS, seed=7)
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)

    metadata_sizes = {}
    for index, cell in enumerate(cells, start=1):
        kernel.run_cell(cell, raise_on_error=False)
        if index in CHECKPOINT_SAMPLES:
            metadata_sizes[index] = session.graph.metadata_size_estimate()

    diff_times = {}
    tip = session.head_id
    repetitions = 50
    session.graph.state_difference(tip, tip)  # warm caches
    for depth in UNDO_DEPTHS:
        target = f"t{TOTAL_EXECUTIONS - depth}"
        started = time.perf_counter()
        for _ in range(repetitions):
            session.graph.state_difference(tip, target)
        diff_times[depth] = (time.perf_counter() - started) / repetitions
    return metadata_sizes, diff_times


def linear_correlation(xs, ys) -> float:
    return float(np.corrcoef(np.asarray(xs, float), np.asarray(ys, float))[0, 1])


def test_fig19_scalability(benchmark):
    for notebook in ("HW-LM", "Qiskit"):
        metadata_sizes, diff_times = run_long_session(notebook)

        print()
        print(f"Fig 19 [{notebook}] -- {TOTAL_EXECUTIONS} random cell executions")
        print(
            format_series(
                "  graph metadata (bytes)",
                list(metadata_sizes),
                list(metadata_sizes.values()),
            )
        )
        print(
            format_series(
                "  state-diff time (ms)",
                list(diff_times),
                [t * 1e3 for t in diff_times.values()],
                y_format=lambda v: f"{v:.2f}",
            )
        )

        # Linear metadata growth (paper: linear, 9 MB at 1000 cells).
        sizes = list(metadata_sizes.values())
        assert sizes == sorted(sizes)
        assert linear_correlation(list(metadata_sizes), sizes) > 0.99
        assert sizes[-1] < 64 * 1024 * 1024  # absolutely small

        # Diff time grows (roughly linearly) with undo depth and stays
        # far below a second (paper: <= 81 ms for any checkout).
        times = list(diff_times.values())
        assert max(times) < 1.0
        assert linear_correlation(list(diff_times), times) > 0.8

    benchmark.pedantic(
        lambda: run_long_session("HW-LM"), rounds=1, iterations=1
    )
