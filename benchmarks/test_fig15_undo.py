"""Fig 15: time to undo a cell execution, per notebook/method.

Methodology (§7.5.1): run the notebook, and at each tagged dataframe/plot
operation cell, measure the time to restore the pre-execution state.
Paper claims re-verified: Kishu's incremental checkout is sub-second on
all test cases and the fastest method; CRIU-Incremental is the slowest
(it must piece the image together from the whole snapshot chain).
"""

from __future__ import annotations

import gc

from benchmarks.conftest import BENCH_SCALE, METHOD_FACTORIES
from repro.bench import format_table, human_seconds, undo_experiment
from repro.bench.disk import paper_nfs_disk
from repro.libsim.devices import reset_stores
from repro.workloads import build_notebook

METHODS = list(METHOD_FACTORIES)

#: The paper's Figs 15/16 evaluate six notebooks ("5/6", "4/6" in §7.5):
#: the two ~1 MB-state notebooks (HW-LM, Qiskit) are not undo test cases.
NOTEBOOK_NAMES = ["Cluster", "TPS", "Sklearn", "StoreSales", "TorchGPU", "Ray"]


def measure(notebook: str, method: str):
    gc.collect()
    reset_stores()
    spec = build_notebook(notebook, BENCH_SCALE)
    _, undos = undo_experiment(
        spec, METHOD_FACTORIES[method], max_targets=2, disk=paper_nfs_disk()
    )
    usable = [u.cost.seconds for u in undos if not u.cost.failed]
    return min(usable) if usable else None


def test_fig15_undo_latency(benchmark):
    results = {}
    for notebook in NOTEBOOK_NAMES:
        for method in METHODS:
            results[(notebook, method)] = measure(notebook, method)

    rows = []
    for notebook in NOTEBOOK_NAMES:
        row = [notebook]
        for method in METHODS:
            value = results[(notebook, method)]
            row.append("FAIL" if value is None else human_seconds(value))
        rows.append(row)
    print()
    print(
        format_table(
            ["Notebook"] + METHODS,
            rows,
            title=f"Fig 15 (scale={BENCH_SCALE}): cell-execution undo time",
        )
    )

    kishu_fastest = 0
    for notebook in NOTEBOOK_NAMES:
        kishu = results[(notebook, "Kishu")]
        assert kishu is not None, notebook
        # Paper: sub-second rollbacks on all test cases.
        assert kishu < 1.0, f"{notebook}: {kishu:.3f}s"
        rivals = [
            results[(notebook, m)]
            for m in METHODS
            if m not in ("Kishu", "Kishu+Det-replay")
            and results[(notebook, m)] is not None
        ]
        if rivals and kishu <= min(rivals):
            kishu_fastest += 1
    # Paper: Kishu is the fastest undo on all notebooks (8.18x at best);
    # allow one wobble at small scale.
    assert kishu_fastest >= 5, f"Kishu fastest on only {kishu_fastest}/6"

    # Paper: CRIU-Incremental is the slowest method for undos on most
    # notebooks despite its cheap checkpoints (36x slower than Kishu on
    # StoreSales), because restore must piece the image together from the
    # whole snapshot chain. Our page model's refcount churn is milder
    # than a real CPython heap's, so the claim is asserted directionally:
    # always far slower than Kishu, and slowest overall on some notebooks.
    criu_inc_bottom_two = 0
    criu_inc_big_margin = 0
    completed = 0
    for notebook in NOTEBOOK_NAMES:
        value = results[(notebook, "CRIU-Incremental")]
        if value is None:
            continue
        completed += 1
        kishu = results[(notebook, "Kishu")]
        assert value > kishu, notebook
        if value > kishu * 3:
            criu_inc_big_margin += 1
        others = sorted(
            results[(notebook, m)]
            for m in METHODS
            if m != "CRIU-Incremental" and results[(notebook, m)] is not None
        )
        if value >= others[-2]:  # among the two slowest methods
            criu_inc_bottom_two += 1
    assert criu_inc_bottom_two >= max(completed - 1, 1), (
        f"CRIU-Incremental near-slowest on only {criu_inc_bottom_two}/{completed}"
    )
    assert criu_inc_big_margin >= max(completed - 1, 1)

    benchmark.pedantic(lambda: measure("TPS", "Kishu"), rounds=1, iterations=1)
