"""Multi-session service benchmark (ISSUE 7 CI artifact).

The write-ahead commit queue's acceptance criterion: with an injected
per-write delay on the shared store, ``commit()`` cost as seen by the
session (capture + enqueue) stays flat — independent of the delay —
while the same workload committed *synchronously* pays the delay three
times per checkpoint (payload, node row, commit marker). After every
run, ``drain()`` + checkout must still satisfy the
checkout-equals-reexecution oracle: latency numbers from a run that
lost or corrupted state would be meaningless.

Results land in ``REPRO_BENCH_JSON`` (default ``BENCH_pr7_service.json``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.core.storage import SQLiteCheckpointStore
from repro.faults.injector import SlowStore
from repro.fuzz.oracle import canonical_state
from repro.fuzz.soak import percentile
from repro.service import SessionManager

ARTIFACT_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr7_service.json")

#: Injected per-write delays (seconds). Every checkpoint performs three
#: delayed store operations, so the synchronous cost floor is 3x this.
WRITE_DELAYS = (0.0, 0.005, 0.02)

_CELLS: Dict[str, List[str]] = {
    "alpha": [
        "data = list(range(200))",
        "total = sum(data)",
        "squares = [d * d for d in data]",
        "peak = max(squares)",
        "report = {'total': total, 'peak': peak}",
    ],
    "beta": [
        "text = 'kishu ' * 50",
        "words = text.split()",
        "counts = {w: words.count(w) for w in set(words)}",
        "longest = max(words, key=len)",
        "summary = (longest, len(counts))",
    ],
}


def _run_fleet(tmp_path, delay: float, *, queue: bool) -> Dict[str, object]:
    """One fleet run at one injected delay; returns latency samples and
    oracle verdicts."""
    label = "queued" if queue else "sync"
    path = str(tmp_path / f"{label}-{int(delay * 1e3)}ms.db")
    store = SlowStore(SQLiteCheckpointStore(path), write_delay=delay)
    commit_seconds: List[float] = []
    oracle_checks = 0
    oracle_failures = 0
    with SessionManager(store, queue=queue) as manager:
        sessions = {sid: manager.create(sid) for sid in _CELLS}
        truth = {}
        for step in range(max(len(c) for c in _CELLS.values())):
            for sid, session in sessions.items():
                if step >= len(_CELLS[sid]):
                    continue
                session.run_cell(_CELLS[sid][step])
                truth[(sid, session.head_id)] = canonical_state(session.kernel)
        for sid, session in sessions.items():
            commit_seconds.extend(m.checkpoint_seconds for m in session.metrics)
            # drain() + checkout: the oracle gate behind the barrier.
            session.drain()
            for entry in session.log():
                session.checkout(entry.node_id)
                oracle_checks += 1
                if canonical_state(session.kernel) != truth[(sid, entry.node_id)]:
                    oracle_failures += 1
        queue_stats = manager.queue.stats() if manager.queue is not None else None
    samples_ms = [s * 1e3 for s in commit_seconds]
    return {
        "write_delay_ms": delay * 1e3,
        "commits": len(samples_ms),
        "commit_p50_ms": round(percentile(samples_ms, 50), 4),
        "commit_p95_ms": round(percentile(samples_ms, 95), 4),
        "oracle_checks": oracle_checks,
        "oracle_failures": oracle_failures,
        "queue": queue_stats,
    }


def test_enqueue_latency_flat_under_injected_write_delay(tmp_path):
    queued = [_run_fleet(tmp_path, d, queue=True) for d in WRITE_DELAYS]
    # Synchronous contrast at the largest delay only: it exists to prove
    # the injected delay is real, not to wait through every rung.
    sync = _run_fleet(tmp_path, WRITE_DELAYS[-1], queue=False)

    # Correctness gates first.
    for run in [*queued, sync]:
        assert run["oracle_checks"] > 0
        assert run["oracle_failures"] == 0, run
    for run in queued:
        stats = run["queue"]
        assert stats["written"] == stats["enqueued"] > 0
        assert not stats["crashed"]

    # The synchronous path pays >= 3 delayed ops per checkpoint.
    floor_ms = 3 * WRITE_DELAYS[-1] * 1e3
    assert sync["commit_p50_ms"] >= floor_ms, sync

    # The queued path must not: its p95 stays below a single injected
    # delay at every rung — independent of how slow the store is.
    for run in queued:
        assert run["commit_p95_ms"] < WRITE_DELAYS[-1] * 1e3, run
    # And flat across rungs: the slowest-store p95 is within noise
    # (10ms) of the no-delay p95.
    spread = queued[-1]["commit_p95_ms"] - queued[0]["commit_p95_ms"]
    assert spread < 10.0, [r["commit_p95_ms"] for r in queued]

    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "write_delays_ms": [d * 1e3 for d in WRITE_DELAYS],
                "queued": queued,
                "sync_at_max_delay": sync,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
