"""Fig 13: cumulative incremental checkpoint storage per notebook/method.

The paper's claims re-verified here:

* Kishu's cumulative checkpoints are the smallest on every notebook
  (excluding Kishu+Det-replay, which trades checkout time for storage);
* CRIU's full dumps are the largest by far;
* CRIU-Incremental is never the next-best method;
* Det-replay beats Kishu on storage by skipping deterministic cells.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, METHOD_FACTORIES, NOTEBOOK_NAMES
from repro.bench import format_table, human_bytes, speedup

METHODS = list(METHOD_FACTORIES)


def test_fig13_checkpoint_storage(run_cache, benchmark):
    sizes = {}
    failures = {}
    for notebook in NOTEBOOK_NAMES:
        for method in METHODS:
            run = run_cache.get(notebook, method)
            sizes[(notebook, method)] = run.total_storage_bytes
            failures[(notebook, method)] = run.checkpoint_failures

    rows = []
    for notebook in NOTEBOOK_NAMES:
        row = [notebook]
        for method in METHODS:
            label = human_bytes(sizes[(notebook, method)])
            if failures[(notebook, method)]:
                label += " (FAILS)"
            row.append(label)
        rows.append(row)
    print()
    print(
        format_table(
            ["Notebook"] + METHODS,
            rows,
            title=f"Fig 13 (scale={BENCH_SCALE}): cumulative checkpoint storage",
        )
    )

    kishu_smallest = 0
    best_ratios = []
    for notebook in NOTEBOOK_NAMES:
        kishu = sizes[(notebook, "Kishu")]
        rivals = {
            method: sizes[(notebook, method)]
            for method in METHODS
            if method not in ("Kishu", "Kishu+Det-replay")
            and not failures[(notebook, method)]
        }
        next_best = min(rivals.values())
        if kishu <= next_best:
            kishu_smallest += 1
        best_ratios.append(speedup(next_best, kishu))

    # Paper: Kishu consistently smallest (here: on at least 7/8, allowing
    # one tie-scale wobble), with a multi-x gap at the best case (4.55x in
    # the paper).
    assert kishu_smallest >= 7, f"Kishu smallest on only {kishu_smallest}/8"
    assert max(best_ratios) > 2.0, f"best ratio only {max(best_ratios):.2f}x"

    # Paper: CRIU is the largest storage on every notebook it completes.
    for notebook in NOTEBOOK_NAMES:
        if failures[(notebook, "CRIU")]:
            continue
        criu = sizes[(notebook, "CRIU")]
        others = [
            sizes[(notebook, m)]
            for m in METHODS
            if m != "CRIU" and not failures[(notebook, m)]
        ]
        assert criu >= max(others), notebook

    # Paper: Det-replay saves storage versus Kishu where deterministic
    # cells exist (up to 3.95x on StoreSales in the paper).
    det_wins = sum(
        1
        for notebook in NOTEBOOK_NAMES
        if sizes[(notebook, "Kishu+Det-replay")] < sizes[(notebook, "Kishu")]
    )
    assert det_wins >= 4

    benchmark.pedantic(
        lambda: run_cache.get("TPS", "Kishu").total_storage_bytes,
        rounds=1,
        iterations=1,
    )
