"""Fig 12: checkpoint/checkout failures over the 146 library classes.

For each method, every class is placed into a fresh kernel session,
checkpointed, mutated, and checked out back. The paper's headline: Kishu
completes all 146 with no failures; CRIU fails the 6 multiprocessing /
off-CPU classes; DumpSession fails the 7 unserializable/undeserializable
classes; ElasticNotebook survives via recomputation.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import (
    CRIUMethod,
    DumpSessionMethod,
    ElasticNotebookMethod,
    KishuMethod,
)
from repro.bench import format_table, run_notebook_with_method
from repro.libsim.devices import reset_stores
from repro.libsim.registry import all_specs
from repro.workloads.spec import NotebookSpec, make_cells


def class_notebook(spec) -> NotebookSpec:
    """A three-cell notebook exercising one library class."""
    entries = [
        (
            f"from {spec.cls.__module__} import {spec.name}\n"
            f"obj = {spec.name}()",
            (),
        ),
        ("obj.probe_attr = 'A'", ()),
        ("marker = 1", ()),
    ]
    return NotebookSpec(
        name=f"class-{spec.name}", topic="compat", library=spec.category,
        final=True, hidden_states=0, out_of_order_cells=0,
        cells=make_cells(entries),
    )


def sweep(method_factory) -> Dict[str, int]:
    """Attempt checkpoint+checkout for every class; count failures."""
    failures = {"checkpoint": 0, "checkout": 0}
    failed_classes = []
    for spec in all_specs():
        reset_stores()
        run = run_notebook_with_method(class_notebook(spec), method_factory)
        if run.checkpoint_failures:
            failures["checkpoint"] += 1
            failed_classes.append(spec.name)
            continue
        cost = run.method.checkout(1)
        if cost.failed or cost.restored is None or "obj" not in cost.restored:
            failures["checkout"] += 1
            failed_classes.append(spec.name)
    failures["classes"] = failed_classes
    return failures


def test_fig12_compatibility(benchmark):
    methods = {
        "Kishu": KishuMethod,
        "CRIU": CRIUMethod,
        "DumpSession": DumpSessionMethod,
        "ElasticNotebook": ElasticNotebookMethod,
    }
    results = {name: sweep(factory) for name, factory in methods.items()}

    rows = [
        (
            name,
            outcome["checkpoint"],
            outcome["checkout"],
            outcome["checkpoint"] + outcome["checkout"],
        )
        for name, outcome in results.items()
    ]
    print()
    print(
        format_table(
            ["Method", "Checkpoint fails", "Checkout fails", "Total / 146"],
            rows,
            title="Fig 12: checkpoint/checkout failures over 146 classes",
        )
    )
    for name, outcome in results.items():
        if outcome["classes"]:
            print(f"  {name} failed on: {', '.join(sorted(outcome['classes']))}")

    # Paper: Kishu has zero failures.
    assert results["Kishu"]["checkpoint"] + results["Kishu"]["checkout"] == 0
    # Paper: CRIU fails exactly the 6 multiprocessing/off-CPU classes.
    assert results["CRIU"]["checkpoint"] == 6
    # Paper: DumpSession fails exactly the 7 unserializable classes.
    assert results["DumpSession"]["checkpoint"] + results["DumpSession"]["checkout"] == 7
    # Paper: ElasticNotebook's fault tolerance also covers everything.
    assert results["ElasticNotebook"]["checkpoint"] == 0

    benchmark.pedantic(lambda: sweep(KishuMethod), rounds=1, iterations=1)
