"""Library effect-stub benchmark (ISSUE 9 CI artifact).

Runs a library-heavy notebook workload twice — once with the stub layer
enabled (``use_stubs=True``, the default) and once disabled (the PR 8
conservative baseline) — and writes ``BENCH_pr9_stubs.json`` with two
comparisons:

* **Escalation rate.** Without stubs an attribute call on a global
  receiver inside a helper body is an unknown call, which blocks the
  hidden-global-store compensation the summary layer otherwise
  provides — the call sites escalate to check-all detection. With
  stubs the call resolves to a declared-pure effect model, the helper
  summary stays bounded, and the same cells commit on the targeted
  path: zero escalations on this workload.
* **Replayed-cell count.** Static replay plans for a set of target
  names. Without stubs every ``df.method()`` cell is conservatively a
  mutator of ``df``, chaining spurious def-use edges through the
  notebook; with stubs the declared-pure reads drop out of the mutator
  sets and every plan is strictly smaller.

The artifact also carries a ``libsim-heavy`` fuzz campaign
(``REPRO_FUZZ_ITERATIONS`` iterations, default 500) whose checkout
oracle must report zero divergences with the stub layer live — the
soundness gate that makes the de-escalation numbers meaningful, backed
by the runtime stub-mismatch oracle (zero mismatches expected, since
the shipped stubs are truthful). Results land in ``REPRO_BENCH_JSON``
(default ``BENCH_pr9_stubs.json``).
"""

from __future__ import annotations

import json
import os

from repro.analysis.dataflow import NotebookDataflowGraph, ReplayPlanner
from repro.core.session import KishuSession
from repro.fuzz.grammar import profile
from repro.fuzz.oracle import run_fuzz_iteration
from repro.kernel.kernel import NotebookKernel

ARTIFACT_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr9_stubs.json")
N_FUZZ_ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "500"))

# A notebook that leans on library objects the way real data-analysis
# notebooks do: constructors, pure reads, a pure clone, stub-declared
# in-place mutators (SimSeries.standardize, random.seed/random), and a
# helper whose body combines a hidden global store with a library read —
# the shape where stubs decide between bounded compensation and
# escalation.
WORKLOAD = [
    "import random\n"
    "from repro.libsim.data_analysis import SimDataFrame, SimSeries",
    "df = SimDataFrame(n_rows=8, n_cols=3, seed=2)",
    "s = SimSeries(n=16, seed=5)",
    "def snapshot():\n"
    "    global center\n"
    "    center = df.mean_of('c0')\n"
    "    return center\n",
    "c1 = snapshot()",
    "df2 = df.drop_column('c1')",
    "m1 = df2.mean_of('c0')",
    "s.standardize()",
    "random.seed(11)",
    "draws = [random.random() for _ in range(4)]",
    "c2 = snapshot()",
    "gap = round(m1 - c2, 9)",
    "report = f'gap {gap}, draws {len(draws)}'",
]

# (target names, chain index) pairs for the replay comparison — tail
# artifacts, mid-notebook intermediates, and a name only the helper's
# hidden store produces.
PLAN_TARGETS = [
    (("report",), len(WORKLOAD) - 1),
    (("gap",), len(WORKLOAD) - 2),
    (("m1",), 6),
    (("center",), 10),
    (("draws",), 9),
    (("df2",), 5),
]


def _run_session(cells, use_stubs):
    """Execute ``cells`` in a fresh session with the stub layer on/off."""
    kernel = NotebookKernel()
    session = KishuSession.init(kernel, use_stubs=use_stubs)
    for cell in cells:
        kernel.run_cell(cell)
    stats = session.analysis_stats
    return {
        "cells": len(cells),
        "escalations": stats.escalations,
        "escalation_rate": round(stats.escalations / len(cells), 4),
        "stub_expansions": stats.stub_expansions,
        "stub_unknown_calls": stats.stub_unknown_calls,
        "stub_mismatches": stats.stub_mismatches,
        "summary_deescalations": stats.summary_deescalations,
    }


def _plan_comparison(use_stubs):
    """Static replay plans over the workload, stubs on vs off."""
    graph = NotebookDataflowGraph.from_sources(
        WORKLOAD, use_summaries=True, use_stubs=use_stubs
    )
    planner = ReplayPlanner(graph)
    plans = []
    for names, index in PLAN_TARGETS:
        plan = planner.plan(names, index)
        effective = plan.cells_replayed if plan.is_safe else plan.total_cells
        plans.append(
            {
                "targets": list(names),
                "at_index": index,
                "cells_replayed": plan.cells_replayed,
                "safe": plan.is_safe,
                "effective_cells": effective,
            }
        )
    return {
        "plans": plans,
        "total_effective_cells": sum(p["effective_cells"] for p in plans),
        "unsafe_plans": sum(1 for p in plans if not p["safe"]),
    }


def _fuzz_campaign(iterations):
    config = profile("libsim-heavy", cells=12, branch_cells=3)
    divergent = []
    commits_checked = 0
    checkouts = 0
    escalations = 0
    for seed in range(iterations):
        _, report = run_fuzz_iteration(seed, config)
        commits_checked += report.commits_checked
        checkouts += report.checkouts
        escalations += report.escalations
        if report.divergences:
            divergent.append(seed)
    return {
        "profile": "libsim-heavy",
        "iterations": iterations,
        "commits_checked": commits_checked,
        "checkouts": checkouts,
        "escalations": escalations,
        "divergent_seeds": divergent,
        "divergences": len(divergent),
    }


def test_stub_benchmark_and_artifact():
    escalation = {
        "stubs_on": _run_session(WORKLOAD, True),
        "stubs_off": _run_session(WORKLOAD, False),
    }
    replay = {
        "stubs_on": _plan_comparison(True),
        "stubs_off": _plan_comparison(False),
    }
    campaign = _fuzz_campaign(N_FUZZ_ITERATIONS)

    # Hard gates — the ISSUE 9 acceptance criteria.
    assert campaign["divergences"] == 0, campaign["divergent_seeds"]
    assert N_FUZZ_ITERATIONS < 500 or campaign["iterations"] >= 500
    on, off = escalation["stubs_on"], escalation["stubs_off"]
    assert on["escalations"] == 0
    assert off["escalations"] > 0
    assert on["stub_expansions"] > 0
    assert on["stub_mismatches"] == 0  # the shipped stubs are truthful
    p_on, p_off = replay["stubs_on"], replay["stubs_off"]
    assert p_on["total_effective_cells"] < p_off["total_effective_cells"]
    for plan_on, plan_off in zip(p_on["plans"], p_off["plans"]):
        assert plan_on["effective_cells"] <= plan_off["effective_cells"]

    result = {
        "workload_cells": len(WORKLOAD),
        "escalation": escalation,
        "replay_plans": replay,
        "fuzz_campaign": campaign,
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
