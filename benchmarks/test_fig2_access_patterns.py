"""Fig 2 / Fig 25: workload access-pattern characteristics (§2.2, §10).

Regenerates the paper's motivating measurements on the in-progress
Sklearn notebook (Fig 2) and the final TPS notebook (Fig 25): most cells
access a small fraction of the state, and updated data splits roughly
evenly between creations and in-place modifications — the traits that
make incremental, co-variable-granularity checkpointing pay off.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE
from repro.bench import format_table
from repro.workloads import build_notebook, measure_access_patterns


def test_fig2_and_fig25_access_patterns(benchmark):
    rows = []
    stats_by_name = {}
    for name in ("Sklearn", "TPS"):
        stats = measure_access_patterns(build_notebook(name, BENCH_SCALE))
        stats_by_name[name] = stats
        rows.append(
            (
                name,
                len(stats.cells),
                stats.cells_under_10_percent,
                f"{100 * stats.creation_fraction:.0f}%",
                f"{100 * (1 - stats.creation_fraction):.0f}%",
            )
        )
    print()
    print(
        format_table(
            ["Notebook", "Cells", "Cells <10% state", "Creates", "Modifies"],
            rows,
            title=f"Fig 2 / Fig 25 (scale={BENCH_SCALE}): per-cell access patterns",
        )
    )

    sklearn = stats_by_name["Sklearn"]
    # Paper Fig 2: 40/44 Sklearn cells access <10% of the state.
    assert sklearn.cells_under_10_percent >= len(sklearn.cells) * 0.7
    # Paper: updated data splits ~45/55 between creations/modifications.
    assert 0.20 <= sklearn.creation_fraction <= 0.80

    tps = stats_by_name["TPS"]
    # Fig 25: the *final* notebook shares the same incremental traits
    # (a looser bound: our scaled-down TPS state is dominated by the main
    # frame, so frame-touching cells read a larger share than at the
    # paper's 31 MB).
    assert tps.cells_under_10_percent >= len(tps.cells) * 0.45
    assert 0.10 <= tps.creation_fraction <= 0.90

    benchmark.pedantic(
        lambda: measure_access_patterns(build_notebook("TPS", BENCH_SCALE)),
        rounds=1,
        iterations=1,
    )
