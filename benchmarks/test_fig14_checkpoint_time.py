"""Fig 14: cumulative incremental checkpoint time per notebook/method.

Paper claims re-verified: Kishu's checkpointing is a small fraction of
notebook runtime (≤15.5% in the paper); CRIU's full dumps are the slowest;
CRIU-Incremental can beat Kishu on raw checkpoint time on a minority of
notebooks (memory dumping vs serialization) without changing the overall
picture; ElasticNotebook pays a profiling tax.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, METHOD_FACTORIES, NOTEBOOK_NAMES
from repro.bench import format_table, human_seconds

METHODS = list(METHOD_FACTORIES)


def test_fig14_checkpoint_time(run_cache, benchmark):
    times = {}
    runtimes = {}
    failures = {}
    for notebook in NOTEBOOK_NAMES:
        for method in METHODS:
            run = run_cache.get(notebook, method)
            times[(notebook, method)] = run.total_checkpoint_seconds
            failures[(notebook, method)] = run.checkpoint_failures
            runtimes[notebook] = run.notebook_runtime

    rows = []
    for notebook in NOTEBOOK_NAMES:
        row = [notebook, human_seconds(runtimes[notebook])]
        for method in METHODS:
            label = human_seconds(times[(notebook, method)])
            if failures[(notebook, method)]:
                label += " (FAILS)"
            row.append(label)
        rows.append(row)
    print()
    print(
        format_table(
            ["Notebook", "Runtime"] + METHODS,
            rows,
            title=f"Fig 14 (scale={BENCH_SCALE}): cumulative checkpoint time",
        )
    )

    # Paper: Kishu's checkpoint overhead is bounded relative to runtime.
    # Our runtimes are compressed (simulated compute), so the bound is
    # looser, but Kishu must stay within the same order as the runtime.
    for notebook in NOTEBOOK_NAMES:
        kishu = times[(notebook, "Kishu")]
        assert kishu < max(runtimes[notebook] * 2.0, 1.0), notebook

    # Paper: Kishu is fastest on the majority of notebooks (5/8), with
    # CRIU-Incremental allowed to win a minority (3/8 in the paper).
    kishu_fastest = 0
    for notebook in NOTEBOOK_NAMES:
        rivals = [
            times[(notebook, m)]
            for m in METHODS
            if m not in ("Kishu", "Kishu+Det-replay")
            and not failures[(notebook, m)]
        ]
        if times[(notebook, "Kishu")] <= min(rivals):
            kishu_fastest += 1
    assert kishu_fastest >= 4, f"Kishu fastest on only {kishu_fastest}/8"

    # Paper: CRIU (full) is the slowest checkpointing on data-heavy
    # notebooks — check the biggest one it completes.
    heavy = [
        n for n in ("Sklearn", "StoreSales", "TPS") if not failures[(n, "CRIU")]
    ]
    for notebook in heavy:
        criu = times[(notebook, "CRIU")]
        assert criu >= times[(notebook, "Kishu")], notebook

    benchmark.pedantic(
        lambda: run_cache.get("TPS", "Kishu").total_checkpoint_seconds,
        rounds=1,
        iterations=1,
    )
