"""Table 8: notebook categorization (final vs in-progress, §10.1).

Regenerates the appendix's categorization table: final notebooks have
linear execution counts; in-progress ones carry hidden states (re-executed
cells) and out-of-order cells.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, NOTEBOOK_NAMES
from repro.bench import format_table
from repro.workloads import build_notebook

#: The paper's Table 8 rows.
EXPECTED = {
    "Cluster": (True, 0, 0),
    "TPS": (True, 0, 0),
    "HW-LM": (True, 0, 0),
    "StoreSales": (True, 0, 0),
    "TorchGPU": (True, 0, 0),
    "Sklearn": (False, 1, 2),
    "Qiskit": (False, 91, 1),
    "Ray": (False, 1, 0),
}


def test_table8_categorization(benchmark):
    rows = []
    for name in NOTEBOOK_NAMES:
        spec = build_notebook(name, BENCH_SCALE)
        rows.append(
            (
                spec.name,
                "Yes" if spec.final else "No",
                spec.hidden_states,
                spec.out_of_order_cells,
            )
        )
        final, hidden, out_of_order = EXPECTED[name]
        assert spec.final is final, name
        assert spec.hidden_states == hidden, name
        assert spec.out_of_order_cells == out_of_order, name

    print()
    print(
        format_table(
            ["Notebook", "Final", "Hidden States", "Out-of-order Cells"],
            rows,
            title="Table 8: notebooks by category and associated traits",
        )
    )

    benchmark.pedantic(
        lambda: build_notebook("Qiskit", BENCH_SCALE), rounds=1, iterations=1
    )
