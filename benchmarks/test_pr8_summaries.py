"""Interprocedural-summary benchmark (ISSUE 8 CI artifact).

Runs a helper-heavy notebook workload twice — once with the
interprocedural summary layer enabled (``use_summaries=True``, the
default) and once with it disabled (the PR 3/4 intraprocedural
baseline) — and writes ``BENCH_pr8_summaries.json`` with three
comparisons:

* **Escalation rate.** Without summaries every helper definition whose
  body hides a ``global`` store surfaces an escape at the def cell and
  escalates it to check-all detection; with summaries the escape is
  deferred into the function summary and the hidden store is
  compensated via summary-informed record completion, so the same
  cells commit on the targeted path.
* **Replayed-cell count.** Static replay plans for a set of target
  names. Without summaries the opaque def cells widen every plan that
  crosses them *and* mark it unsafe; an unsafe plan cannot be trusted
  (the replay engine itself declines them at checkout), so its
  effective cost is a full re-execution of the prefix. With summaries
  the def cells are clean and the def-use edges through helper calls
  are tight, so plans stay minimal and safe.
* **Checkout fallbacks.** A workload whose generator-carrying
  co-variables can never be stored forces the restore path to
  reconstruct them: with summaries the engine executes its (safe)
  minimal plans; without, every plan is declined as unsafe and the
  legacy record-driven recursion runs instead.

The artifact also carries a ``func-heavy`` fuzz campaign
(``REPRO_FUZZ_ITERATIONS`` iterations, default 500) whose checkout
oracle must report zero divergences — the soundness gate that makes
the de-escalation numbers above meaningful. Results land in
``REPRO_BENCH_JSON`` (default ``BENCH_pr8_summaries.json``).
"""

from __future__ import annotations

import json
import os

from repro.analysis.dataflow import NotebookDataflowGraph, ReplayPlanner
from repro.core.session import KishuSession
from repro.fuzz.grammar import profile
from repro.fuzz.oracle import run_fuzz_iteration
from repro.kernel.kernel import NotebookKernel

ARTIFACT_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr8_summaries.json")
N_FUZZ_ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "500"))

# A notebook that factors its work through helpers, the shape the
# summary layer exists for: two hidden-global-store helpers, one
# argument mutator, one pure helper, and data/derivation cells between
# the defs so replay plans have to cross the helper definitions.
WORKLOAD = [
    "raw = [3, 1, 4, 1, 5, 9, 2, 6]",
    "def tally(xs):\n"
    "    global total\n"
    "    total = sum(xs)\n"
    "    return total\n",
    "def record(entry):\n"
    "    global audit\n"
    "    audit = audit + [entry]\n"
    "    return len(audit)\n",
    "audit = []",
    "t = tally(raw)",
    "n1 = record('tallied')",
    "def push(xs, item):\n"
    "    xs.append(item)\n"
    "    return xs\n",
    "push(raw, 7)",
    "def normalize(xs, total):\n"
    "    return [x / total for x in xs]\n",
    "t2 = tally(raw)",
    "norm = normalize(raw, t2)",
    "n2 = record('normalized')",
    "spread = max(norm) - min(norm)",
    "report = f'{n2} events, spread {spread:.3f}'",
]

# (target names, chain index) pairs the replay comparison plans for —
# a mix of tail artifacts, mid-notebook intermediates, and a name only
# hidden stores produce.
PLAN_TARGETS = [
    (("report",), len(WORKLOAD) - 1),
    (("spread",), len(WORKLOAD) - 2),
    (("norm",), 10),
    (("total",), 9),
    (("audit", "n2"), 11),
    (("t",), 4),
]

# Same helpers, but the derived co-variables carry generators, which no
# pickler in the chain can serialize — every checkout of a state
# containing them must take the replay path.
CHECKOUT_WORKLOAD = [
    "raw = [3, 1, 4, 1, 5, 9, 2, 6]",
    "def tally(xs):\n"
    "    global total\n"
    "    total = sum(xs)\n"
    "    return total\n",
    "def record(entry):\n"
    "    global audit\n"
    "    audit = audit + [entry]\n"
    "    return len(audit)\n",
    "audit = []",
    "t = tally(raw)",
    "n1 = record('tallied')",
    "g1 = (x * x for x in raw)\nv1 = next(g1)",
    "g2 = (x + v1 for x in raw)\nv2 = next(g2)",
    "g3 = (x - v2 for x in raw)\nv3 = next(g3)",
    "n2 = record('derived')",
]


def _run_session(cells, use_summaries, checkout_targets=()):
    """Execute ``cells`` in a fresh session; optionally bounce the head
    through ``checkout_targets`` (indices into the commit list)."""
    kernel = NotebookKernel()
    session = KishuSession.init(kernel, use_summaries=use_summaries)
    heads = []
    for cell in cells:
        kernel.run_cell(cell)
        heads.append(session.head_id)
    for index in checkout_targets:
        session.checkout(heads[index])
    legacy_replays = sum(
        1
        for span in session.observer.tracer.all_spans()
        if span.name == "replay.legacy"
    )
    stats = session.analysis_stats
    plans = session.plan_stats
    return {
        "cells": len(cells),
        "escalations": stats.escalations,
        "escalation_rate": round(stats.escalations / len(cells), 4),
        "summary_deescalations": stats.summary_deescalations,
        "summary_expansions": stats.summary_expansions,
        "engine_cells_replayed": plans.cells_replayed,
        "engine_unsafe_plans": plans.unsafe_plans,
        "legacy_replays": legacy_replays,
    }


def _plan_comparison(use_summaries):
    """Static replay plans over the workload, with the effective cost
    convention the restore path enforces: an unsafe plan is declined,
    so its effective cost is re-executing the whole prefix."""
    graph = NotebookDataflowGraph.from_sources(
        WORKLOAD, use_summaries=use_summaries
    )
    planner = ReplayPlanner(graph)
    plans = []
    for names, index in PLAN_TARGETS:
        plan = planner.plan(names, index)
        effective = plan.cells_replayed if plan.is_safe else plan.total_cells
        plans.append(
            {
                "targets": list(names),
                "at_index": index,
                "cells_replayed": plan.cells_replayed,
                "safe": plan.is_safe,
                "effective_cells": effective,
            }
        )
    return {
        "plans": plans,
        "total_effective_cells": sum(p["effective_cells"] for p in plans),
        "unsafe_plans": sum(1 for p in plans if not p["safe"]),
    }


def _fuzz_campaign(iterations):
    config = profile("func-heavy", cells=15, branch_cells=4)
    divergent = []
    commits_checked = 0
    checkouts = 0
    escalations = 0
    for seed in range(iterations):
        _, report = run_fuzz_iteration(seed, config)
        commits_checked += report.commits_checked
        checkouts += report.checkouts
        escalations += report.escalations
        if report.divergences:
            divergent.append(seed)
    return {
        "profile": "func-heavy",
        "iterations": iterations,
        "commits_checked": commits_checked,
        "checkouts": checkouts,
        "escalations": escalations,
        "divergent_seeds": divergent,
        "divergences": len(divergent),
    }


def test_summary_benchmark_and_artifact():
    escalation = {
        "summaries_on": _run_session(WORKLOAD, True),
        "summaries_off": _run_session(WORKLOAD, False),
    }
    replay = {
        "summaries_on": _plan_comparison(True),
        "summaries_off": _plan_comparison(False),
    }
    bounce = (3, len(CHECKOUT_WORKLOAD) - 1, 6, len(CHECKOUT_WORKLOAD) - 1)
    checkout = {
        "summaries_on": _run_session(CHECKOUT_WORKLOAD, True, bounce),
        "summaries_off": _run_session(CHECKOUT_WORKLOAD, False, bounce),
    }
    campaign = _fuzz_campaign(N_FUZZ_ITERATIONS)

    # Hard gates — the ISSUE 8 acceptance criteria.
    assert campaign["divergences"] == 0, campaign["divergent_seeds"]
    assert N_FUZZ_ITERATIONS < 500 or campaign["iterations"] >= 500
    on, off = escalation["summaries_on"], escalation["summaries_off"]
    assert on["escalations"] < off["escalations"]
    assert on["escalation_rate"] < off["escalation_rate"]
    assert on["summary_deescalations"] > 0
    p_on, p_off = replay["summaries_on"], replay["summaries_off"]
    assert p_on["total_effective_cells"] < p_off["total_effective_cells"]
    assert p_on["unsafe_plans"] == 0 and p_off["unsafe_plans"] > 0
    c_on, c_off = checkout["summaries_on"], checkout["summaries_off"]
    # With summaries the engine's safe minimal plans carry the restore;
    # without, every plan is declined and legacy recursion runs.
    assert c_on["engine_unsafe_plans"] == 0 and c_on["legacy_replays"] == 0
    assert c_off["engine_cells_replayed"] == 0 and c_off["legacy_replays"] > 0

    result = {
        "workload_cells": len(WORKLOAD),
        "escalation": escalation,
        "replay_plans": replay,
        "checkout_fallbacks": checkout,
        "fuzz_campaign": campaign,
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
