"""Benchmark suite: regenerates every table and figure of the paper's
evaluation (§7). Run with ``pytest benchmarks/ --benchmark-only -s``."""
