"""Table 2: summary of the evaluation notebooks.

Regenerates the paper's workload summary — cell counts, runtime, state
data size, final/in-progress — for our synthetic equivalents (data sizes
are scaled by REPRO_BENCH_SCALE; the relative ordering matches Table 2).
"""

from __future__ import annotations

import pickle

from benchmarks.conftest import BENCH_SCALE, NOTEBOOK_NAMES
from repro.bench import format_table
from repro.kernel import NotebookKernel
from repro.workloads import build_notebook


def _state_megabytes(kernel: NotebookKernel) -> float:
    total = 0
    for value in kernel.user_variables().values():
        try:
            total += len(pickle.dumps(value, protocol=5))
        except Exception:
            total += 256
    return total / 1e6


def run_notebook(name: str):
    spec = build_notebook(name, BENCH_SCALE)
    kernel = NotebookKernel()
    for cell in spec.cells:
        kernel.run_cell(cell)
    return spec, kernel


def test_table2_notebook_summary(benchmark):
    rows = []
    specs = {}
    for name in NOTEBOOK_NAMES:
        spec, kernel = run_notebook(name)
        specs[name] = spec
        rows.append(
            (
                spec.name,
                spec.topic,
                spec.library,
                spec.cell_count,
                f"{kernel.total_runtime:.2f}",
                f"{_state_megabytes(kernel):.1f}",
                "Yes" if spec.final else "No",
            )
        )
    print()
    print(
        format_table(
            ["Notebook", "Topic", "Library", "Cells", "Time(s)", "Data(MB)", "Final"],
            rows,
            title=f"Table 2 (scale={BENCH_SCALE}): notebook summary",
        )
    )

    # Paper-shape assertions: cell counts match Table 2 exactly.
    expected_cells = {
        "Cluster": 24, "TPS": 49, "Sklearn": 44, "HW-LM": 81,
        "StoreSales": 41, "Qiskit": 85, "TorchGPU": 27, "Ray": 20,
    }
    for name, spec in specs.items():
        assert spec.cell_count == expected_cells[name]
    # 5 final, 3 in-progress, as in the paper.
    assert sum(spec.final for spec in specs.values()) == 5

    # Headline timing: one full notebook execution.
    benchmark(lambda: run_notebook("TPS"))
