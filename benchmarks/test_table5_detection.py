"""Table 5: summary of Kishu's update detection over the 146 classes.

Each class is probed twice — (1) a class-attribute update, (2) no update —
and the VarGraphs before/after are compared, exactly the §7.2.1
methodology. The paper's counts: 120 successes, 14 false positives, 12
pickle errors, 0 failures (no false negatives).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core.vargraph import VarGraphBuilder
from repro.libsim.registry import all_specs


def classify(builder: VarGraphBuilder, spec) -> str:
    obj = spec.make()
    baseline = builder.build("x", obj)
    noop = builder.build("x", obj)
    noop_flagged = baseline.differs_from(noop)

    obj.probe_attr = "A"
    updated = builder.build("x", obj)
    update_flagged = noop.differs_from(updated)

    if not update_flagged:
        return "fail"
    if not noop_flagged:
        return "success"
    # Flagged-on-access classes split by cause, as the paper does:
    # dynamically generated reachable objects vs non-deterministic storage.
    if spec.personality == "silent-error":
        return "pickle_error"
    return "false_positive"


def run_probe():
    builder = VarGraphBuilder()
    counts = {"success": 0, "false_positive": 0, "pickle_error": 0, "fail": 0}
    mismatches = []
    for spec in all_specs():
        outcome = classify(builder, spec)
        counts[outcome] += 1
        if outcome != spec.expected_detection and not (
            outcome == "success" and spec.expected_detection == "success"
        ):
            mismatches.append((spec.name, spec.expected_detection, outcome))
    return counts, mismatches


def test_table5_detection_summary(benchmark):
    counts, mismatches = run_probe()

    rows = [
        ("Success", "update reported when object changed", counts["success"]),
        ("False Positive", "update reported on access, object unchanged", counts["false_positive"]),
        ("Pickle Error", "non-deterministic storage; reported on access", counts["pickle_error"]),
        ("Fail", "object changed but no update reported", counts["fail"]),
    ]
    print()
    print(
        format_table(
            ["Result", "Description", "Count"],
            rows,
            title="Table 5: Kishu update detection over 146 classes",
        )
    )

    # The paper's exact counts.
    assert counts == {
        "success": 120,
        "false_positive": 14,
        "pickle_error": 12,
        "fail": 0,
    }
    # Every class landed in its expected bucket.
    assert mismatches == []

    benchmark.pedantic(run_probe, rounds=1, iterations=1)
