"""Table 4: the noteworthy classes Kishu handles that baselines fail on.

Verifies each named class against both the failing baseline and Kishu,
printing the table with the same row structure as the paper's Table 4.
"""

from __future__ import annotations

import pytest

from repro.baselines import CRIUMethod, DumpSessionMethod, KishuMethod
from repro.bench import format_table, run_notebook_with_method
from repro.libsim.devices import reset_stores
from repro.libsim.registry import spec_by_name
from repro.workloads.spec import NotebookSpec, make_cells

#: (baseline, category description, class) rows mirroring Table 4.
TABLE_4_ROWS = [
    ("CRIU", "Dist. Computing", "SimSparkSQLFrame"),
    ("CRIU", "Dist. Computing", "SimRayDataset"),
    ("CRIU", "On-device data", "SimTFTensorDevice"),
    ("CRIU", "On-device data", "SimTorchTensorGPU"),
    ("CRIU", "Data Pipelining", "SimPipeline"),
    ("CRIU", "Data Pipelining", "SimBertTokenizer"),
    ("DumpSession", "Unserializable Data", "SimLazyFrame"),
    ("DumpSession", "Unserializable Data", "SimBokehFigure"),
]

_METHODS = {"CRIU": CRIUMethod, "DumpSession": DumpSessionMethod}


def class_notebook(class_name: str) -> NotebookSpec:
    spec = spec_by_name(class_name)
    entries = [
        (
            f"from {spec.cls.__module__} import {spec.name}\n"
            f"obj = {spec.name}()",
            (),
        ),
        ("obj.probe_attr = 'A'", ()),
    ]
    return NotebookSpec(
        name=f"t4-{class_name}", topic="compat", library=spec.category,
        final=True, hidden_states=0, out_of_order_cells=0,
        cells=make_cells(entries),
    )


def attempt(method_factory, class_name: str) -> bool:
    """True if the method checkpoints and checks the class out."""
    reset_stores()
    run = run_notebook_with_method(class_notebook(class_name), method_factory)
    if run.checkpoint_failures:
        return False
    cost = run.method.checkout(0)
    return not cost.failed and cost.restored is not None and "obj" in cost.restored


def test_table4_failure_classes(benchmark):
    rows = []
    for baseline_name, description, class_name in TABLE_4_ROWS:
        baseline_ok = attempt(_METHODS[baseline_name], class_name)
        kishu_ok = attempt(KishuMethod, class_name)
        rows.append(
            (
                baseline_name,
                description,
                class_name,
                "ok" if baseline_ok else "FAIL",
                "ok" if kishu_ok else "FAIL",
            )
        )
        # The table's whole point: the baseline fails, Kishu succeeds.
        assert not baseline_ok, (baseline_name, class_name)
        assert kishu_ok, class_name

    print()
    print(
        format_table(
            ["Tool", "Description", "Failure class", "Tool result", "Kishu"],
            rows,
            title="Table 4: classes Kishu handles that existing works fail on",
        )
    )

    benchmark.pedantic(
        lambda: attempt(KishuMethod, "SimTorchTensorGPU"), rounds=1, iterations=1
    )
