"""Fig 16: time to switch to a branched session state.

Methodology (§7.5.2): run end-to-end, check out to the state before any
models are trained, re-run to the end (creating a second branch), then
measure switching back to the first branch. Paper claims re-verified:
Kishu updates only the diverged models/plots (not the input dataframes)
and is the fastest switch; Det-replay can blow up when a deterministic
fitting sequence must be replayed (the paper's 1050 s Cluster case).
"""

from __future__ import annotations

import gc

from benchmarks.conftest import BENCH_SCALE, METHOD_FACTORIES
from repro.bench import branch_experiment, format_table, human_seconds
from repro.bench.disk import paper_nfs_disk
from repro.libsim.devices import reset_stores
from repro.workloads import build_notebook

METHODS = list(METHOD_FACTORIES)

#: As in Fig 15: the paper's branch-switch experiment covers six notebooks.
NOTEBOOK_NAMES = ["Cluster", "TPS", "Sklearn", "StoreSales", "TorchGPU", "Ray"]


def measure(notebook: str, method: str):
    gc.collect()
    reset_stores()
    spec = build_notebook(notebook, BENCH_SCALE)
    _, measurement = branch_experiment(
        spec, METHOD_FACTORIES[method], disk=paper_nfs_disk()
    )
    if measurement is None or measurement.switch_cost.failed:
        return None
    return measurement.switch_cost.seconds


def test_fig16_branch_switch(benchmark):
    results = {}
    for notebook in NOTEBOOK_NAMES:
        for method in METHODS:
            results[(notebook, method)] = measure(notebook, method)

    rows = []
    for notebook in NOTEBOOK_NAMES:
        row = [notebook]
        for method in METHODS:
            value = results[(notebook, method)]
            row.append("FAIL" if value is None else human_seconds(value))
        rows.append(row)
    print()
    print(
        format_table(
            ["Notebook"] + METHODS,
            rows,
            title=f"Fig 16 (scale={BENCH_SCALE}): branch-switch time",
        )
    )

    kishu_fastest = 0
    advantage_ratios = []
    for notebook in NOTEBOOK_NAMES:
        kishu = results[(notebook, "Kishu")]
        assert kishu is not None, notebook
        # Paper: sub-second switching on most notebooks.
        assert kishu < 2.0, f"{notebook}: {kishu:.3f}s"
        rivals = [
            results[(notebook, m)]
            for m in METHODS
            if m not in ("Kishu", "Kishu+Det-replay")
            and results[(notebook, m)] is not None
        ]
        if rivals:
            advantage_ratios.append(min(rivals) / kishu)
            if kishu <= min(rivals):
                kishu_fastest += 1
    # Paper: Kishu's switch is the fastest on most notebooks (up to 4.18x
    # vs the next best). Small-state notebooks (HW-LM, Qiskit) can favour
    # bulk loads at our scale, so assert both the count and the overall
    # advantage (geometric mean > 1).
    assert kishu_fastest >= 4, f"Kishu fastest on only {kishu_fastest}/6"
    geometric_mean = 1.0
    for ratio in advantage_ratios:
        geometric_mean *= ratio
    geometric_mean **= 1.0 / len(advantage_ratios)
    assert geometric_mean > 1.5, f"mean advantage only {geometric_mean:.2f}x"

    # Paper: Det-replay's replay of the Cluster fitting sequence makes its
    # branch switch far slower than Kishu's load-based switch.
    cluster_det = results[("Cluster", "Kishu+Det-replay")]
    cluster_kishu = results[("Cluster", "Kishu")]
    assert cluster_det is not None
    assert cluster_det > cluster_kishu * 5, (
        f"det-replay {cluster_det:.3f}s vs kishu {cluster_kishu:.3f}s"
    )

    benchmark.pedantic(lambda: measure("TPS", "Kishu"), rounds=1, iterations=1)
