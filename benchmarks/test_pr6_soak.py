"""Concurrent-session soak benchmark (ISSUE 6 CI artifact).

Runs the :mod:`repro.fuzz.soak` fleet — 16 seeded sessions in parallel
threads, each against its own SQLite store with a seed-deterministic
fault plan active — and writes the aggregate report as the
``BENCH_pr6_soak.json`` artifact: p50/p95/p99 commit and checkout
latency, per-store byte growth, fault/retry counts, and the sampled
checkout-oracle verdicts (which must all pass: latency numbers from a
run that corrupted state would be meaningless).

Scale: ``REPRO_SOAK_SESSIONS`` / ``REPRO_SOAK_CELLS`` override the fleet
shape (the ISSUE 6 floor is 16 sessions; CI runs exactly that).
Results land in ``REPRO_BENCH_JSON`` (default ``BENCH_pr6_soak.json``).
"""

from __future__ import annotations

import json
import os

from repro.fuzz.soak import SoakConfig, run_soak

ARTIFACT_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr6_soak.json")
N_SESSIONS = int(os.environ.get("REPRO_SOAK_SESSIONS", "16"))
N_CELLS = int(os.environ.get("REPRO_SOAK_CELLS", "20"))


def test_soak_fleet_and_artifact():
    result = run_soak(
        SoakConfig(
            sessions=N_SESSIONS,
            cells=N_CELLS,
            seed=0,
            store="sqlite",
            faults=True,
            checkout_every=4,
        )
    )

    # Hard gates: the soak is a correctness harness first, a latency
    # report second.
    assert result["worker_errors"] == [], result["worker_errors"]
    assert result["oracle"]["checks"] > 0
    assert result["oracle"]["failures"] == 0
    assert result["commits"] >= N_SESSIONS  # every session made progress
    assert result["faults"]["fired"] > 0  # the fault plans were active

    commit = result["commit_latency"]
    checkout = result["checkout_latency"]
    assert commit["count"] > 0 and checkout["count"] > 0
    assert commit["p50_ms"] <= commit["p95_ms"] <= commit["p99_ms"]
    growth = result["store_growth"]
    assert len(growth["per_session_file_bytes"]) == N_SESSIONS
    assert growth["total_file_bytes"] > 0

    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
