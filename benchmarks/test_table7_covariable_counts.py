"""Table 7: variable vs co-variable counts in the notebooks' final states.

The paper's point: real notebook states consist of many *small*
co-variables — the co-variable count is close to the variable count
(shared references are common but localized), which is exactly the regime
where co-variable granularity wins (Fig 18).
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, NOTEBOOK_NAMES
from repro.bench import format_table
from repro.workloads import build_notebook, covariable_census


def test_table7_covariable_counts(benchmark):
    rows = []
    results = {}
    for name in NOTEBOOK_NAMES:
        n_vars, n_covars = covariable_census(build_notebook(name, BENCH_SCALE))
        results[name] = (n_vars, n_covars)
        rows.append((name, n_vars, n_covars))
    print()
    print(
        format_table(
            ["Notebook", "# vars.", "# Co-vars."],
            rows,
            title=f"Table 7 (scale={BENCH_SCALE}): variable vs co-variable count",
        )
    )

    for name, (n_vars, n_covars) in results.items():
        # Co-variables can never outnumber variables…
        assert n_covars <= n_vars, name
        # …and in real notebooks stay close to the variable count (the
        # paper's ratios range from 0.80 (Qiskit) to 1.00 (TPS)).
        assert n_covars >= n_vars * 0.65, (name, n_vars, n_covars)

    # At least one notebook has genuinely shared references (count drops).
    assert any(n_covars < n_vars for n_vars, n_covars in results.values())

    benchmark.pedantic(
        lambda: covariable_census(build_notebook("TPS", BENCH_SCALE)),
        rounds=1,
        iterations=1,
    )
