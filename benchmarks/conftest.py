"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one of the paper's tables or figures.
Because several figures measure the same (notebook × method) runs from
different angles, completed runs are cached at session scope — the
methodology (run cells sequentially, checkpoint after each) is identical
across Figs 13, 14 and Tables 6/7.

Scale: ``REPRO_BENCH_SCALE`` (default 0.25) multiplies workload data
sizes; the shapes reported by the paper hold across scales, only absolute
numbers move.
"""

from __future__ import annotations

import gc
import os
from typing import Callable, Dict, Tuple

import pytest

from repro.baselines import (
    CRIUIncrementalMethod,
    CRIUMethod,
    DetReplayMethod,
    DumpSessionMethod,
    ElasticNotebookMethod,
    KishuMethod,
)
from repro.bench import MethodRun, run_notebook_with_method
from repro.bench.disk import paper_nfs_disk
from repro.libsim.devices import reset_stores
from repro.workloads import build_notebook

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

NOTEBOOK_NAMES = [
    "Cluster",
    "TPS",
    "Sklearn",
    "HW-LM",
    "StoreSales",
    "Qiskit",
    "TorchGPU",
    "Ray",
]

METHOD_FACTORIES = {
    "Kishu": KishuMethod,
    "Kishu+Det-replay": DetReplayMethod,
    "CRIU": CRIUMethod,
    "CRIU-Incremental": CRIUIncrementalMethod,
    "DumpSession": DumpSessionMethod,
    "ElasticNotebook": ElasticNotebookMethod,
}


class RunCache:
    """Lazily computed (notebook, method) -> MethodRun cache."""

    def __init__(self) -> None:
        self._runs: Dict[Tuple[str, str], MethodRun] = {}

    def get(self, notebook: str, method: str) -> MethodRun:
        key = (notebook, method)
        if key not in self._runs:
            gc.collect()
            reset_stores()
            spec = build_notebook(notebook, BENCH_SCALE)
            self._runs[key] = run_notebook_with_method(
                spec, METHOD_FACTORIES[method], disk=paper_nfs_disk()
            )
        return self._runs[key]


@pytest.fixture(scope="session")
def run_cache() -> RunCache:
    return RunCache()


@pytest.fixture(autouse=True)
def clean_devices():
    reset_stores()
    yield
