"""Ablation: incremental VarGraph construction vs cold re-walks.

The tracking hot path rebuilds candidate co-variables' VarGraphs after
every cell (§4.3). Without the subtree cache the rebuild re-walks and
re-hashes every reachable object even when the cell touched one member of
a large shared structure. This microbenchmark runs the same notebooks
under ``KishuTracker(incremental=True)`` and ``incremental=False`` and
compares the walk-telemetry counters of the probe cell's detection:

* **shared-referencing** — Fig 18's workload with ``probe="member"``:
  ten arrays, eight bundled into one list, probe rewrites one array
  through its own name. The dirty set is that one array, so the other
  bundled arrays splice from cache instead of being re-hashed.
* **scalability** — one wide list-of-lists plus an alias into one row;
  the probe mutates through the alias, so of the ~10k reachable objects
  only the aliased row re-walks.

The counters are deterministic (object counts, not wall time), so the
assertions are stable at any machine speed. Results are also written as a
JSON artifact (``REPRO_BENCH_JSON``, default ``BENCH_pr2_tracking.json``)
for CI trend tracking.
"""

from __future__ import annotations

import gc
import json
import os

from repro.bench import run_notebook_with_tracker
from repro.tracking import KishuTracker
from repro.workloads import shared_referencing_workload
from repro.workloads.spec import NotebookSpec, make_cells

ARTIFACT_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr2_tracking.json")


def scalability_workload(n_rows: int = 200, row_len: int = 50) -> NotebookSpec:
    """A wide nested structure probed through an alias into one row.

    Rows hold floats (not ``range`` ints): CPython interns small ints, and
    objects shared *across* rows make the sibling subtrees
    non-self-contained — honest per-row splicing needs per-row objects.
    """
    entries = [
        (
            f"rows = [[j + 0.5 for j in range({row_len})]"
            f" for _ in range({n_rows})]",
            (),
        ),
        ("row_0 = rows[0]", ()),
        ("row_0[0] = -1", ("probe",)),
    ]
    return NotebookSpec(
        name=f"WalkScale-{n_rows}x{row_len}",
        topic="Incremental walk scalability",
        library="stdlib",
        final=True,
        hidden_states=0,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


def probe_walk_stats(spec: NotebookSpec, incremental: bool):
    """Walk counters of the probe (last) cell's delta detection."""
    gc.collect()
    tracker, _ = run_notebook_with_tracker(
        spec, lambda kernel: KishuTracker(kernel, incremental=incremental)
    )
    probe_cost = tracker.costs[len(spec.cells) - 1]
    assert probe_cost.walk is not None
    return probe_cost.walk


def measure(spec: NotebookSpec):
    cold = probe_walk_stats(spec, incremental=False)
    warm = probe_walk_stats(spec, incremental=True)
    return {
        "cold": cold.as_dict(),
        "incremental": warm.as_dict(),
        "visit_reduction": (
            cold.objects_visited / warm.objects_visited
            if warm.objects_visited
            else float("inf")
        ),
    }


def test_incremental_walk_ablation_smoke(benchmark):
    shared_spec = shared_referencing_workload(
        8, n_arrays=10, array_kb=64, probe="member"
    )
    scale_spec = scalability_workload()

    results = {
        "shared_referencing": measure(shared_spec),
        "scalability": measure(scale_spec),
    }

    with open(ARTIFACT_PATH, "w") as handle:
        json.dump(results, handle, indent=2)
    print()
    for name, result in results.items():
        print(
            f"{name}: {result['cold']['objects_visited']} objects visited cold, "
            f"{result['incremental']['objects_visited']} incremental "
            f"({result['visit_reduction']:.1f}x reduction)"
        )

    shared = results["shared_referencing"]
    scale = results["scalability"]

    # Acceptance bar: >=5x fewer objects visited on the probe cell of the
    # shared-referencing workload with the cache enabled.
    assert (
        shared["cold"]["objects_visited"]
        >= 5 * shared["incremental"]["objects_visited"]
    )
    # The cache also cuts hashing work: the untouched arrays splice
    # instead of being re-digested.
    assert shared["incremental"]["bytes_hashed"] < shared["cold"]["bytes_hashed"]
    assert shared["incremental"]["nodes_spliced"] > 0
    assert shared["cold"]["cache_hits"] == shared["cold"]["nodes_spliced"] == 0

    # On the wide structure the win scales with structure size: ~10k
    # reachable objects, one ~50-element row re-walked.
    assert (
        scale["cold"]["objects_visited"] >= 20 * scale["incremental"]["objects_visited"]
    )

    benchmark.pedantic(
        lambda: probe_walk_stats(shared_spec, incremental=True),
        rounds=1,
        iterations=1,
    )
