"""Ablation: the array hash fast path (§6.2).

Kishu digests array-likes (XXH64 in the paper, FNV/blake2b here) instead
of traversing their elements. This ablation disables the fast path —
arrays are traversed element-wise like ordinary containers — and measures
delta-detection cost on an array-heavy state. The design point: the fast
path turns O(elements) graph construction into O(bytes) hashing.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import format_table
from repro.core.covariable import CoVariablePool
from repro.core.delta import DeltaDetector
from repro.core.objectwalk import TraversalPolicy, Visit
from repro.core.vargraph import VarGraphBuilder
from repro.kernel.namespace import PatchedNamespace

N_ARRAYS = 6
ARRAY_ELEMENTS = 20_000


def element_wise_array_policy() -> TraversalPolicy:
    """Ablated policy: arrays traversed as tuples of Python floats."""
    policy = TraversalPolicy()
    policy.register(
        np.ndarray,
        lambda arr: Visit(kind="composite", children=tuple(arr.ravel().tolist())),
    )
    return policy


def build_state() -> PatchedNamespace:
    ns = PatchedNamespace()
    for i in range(N_ARRAYS):
        ns.plant(f"arr_{i}", np.random.default_rng(i).random(ARRAY_ELEMENTS))
    return ns


def measure(policy: TraversalPolicy = None) -> float:
    ns = build_state()
    builder = VarGraphBuilder(policy=policy) if policy else VarGraphBuilder()
    pool = CoVariablePool.from_namespace(ns.user_items(), builder)
    detector = DeltaDetector(pool)
    ns.begin_recording()
    exec("arr_0[0] += 1.0\narr_1[0] += 1.0", ns)
    record = ns.end_recording()
    started = time.perf_counter()
    delta = detector.detect(record, ns.user_items())
    elapsed = time.perf_counter() - started
    assert len(delta.modified) == 2  # both updates detected either way
    return elapsed


def test_ablation_array_hash_fastpath(benchmark):
    with_fastpath = measure()
    without_fastpath = measure(element_wise_array_policy())

    print()
    print(
        format_table(
            ["Variant", "Delta detection (2 arrays touched)"],
            [
                ("hash fast path (Kishu)", f"{with_fastpath * 1e3:.2f}ms"),
                ("element-wise traversal (ablated)", f"{without_fastpath * 1e3:.2f}ms"),
            ],
            title=f"Ablation: array digests vs element traversal "
            f"({N_ARRAYS} x {ARRAY_ELEMENTS}-element arrays)",
        )
    )

    # The fast path must win by a wide margin on array-heavy states.
    assert with_fastpath * 5 < without_fastpath, (
        f"{with_fastpath:.4f}s vs {without_fastpath:.4f}s"
    )

    benchmark.pedantic(measure, rounds=1, iterations=1)
