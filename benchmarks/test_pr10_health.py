"""Fleet health engine benchmark: backpressure demo + overhead (ISSUE 10 CI).

Two hard gates in one module:

* **Adaptive backpressure demo** — the acceptance criterion from the
  issue: with an injected per-write delay, a fleet committing faster
  than the writer drains grows its queue without bound; the same
  workload with the health engine attached escalates
  ``accept -> degrade_fsync -> block`` off the sustained queue-depth
  burn and the depth *stabilizes* under the configured ceiling. The
  test runs both fleets and asserts the contrast, not just the healthy
  half.

* **Disabled-mode overhead budget** — a disabled
  :class:`~repro.obs.health.HealthEngine` must cost one attribute check
  per verb, same discipline (and same 3% commit budget methodology) as
  ``benchmarks/test_obs_overhead.py``: time the no-op verbs directly
  over millions of calls, multiply by a conservative per-commit call
  allowance, compare against a real median commit.

Results land in ``REPRO_BENCH_JSON`` (default ``BENCH_pr10_health.json``).
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from typing import Dict, List

from repro.core.session import KishuSession
from repro.core.storage import SQLiteCheckpointStore
from repro.faults.injector import SlowStore
from repro.kernel.kernel import NotebookKernel
from repro.obs.health import HealthEngine, SLOSpec
from repro.service import SessionManager

ARTIFACT_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr10_health.json")

#: Injected store write delay: each checkpoint performs three delayed
#: ops, so the writer drains at ~3x this per commit while tiny cells
#: enqueue in well under a millisecond — a guaranteed producer/consumer
#: imbalance.
WRITE_DELAY = 0.01
COMMITS = 48
CEILING = 8
MAX_BATCH = 4

#: Wall-clock windows small enough that sustained depth burn fires
#: within a few ticks of the commit loop (ticks come once per cell).
BENCH_SPEC = SLOSpec.from_mapping(
    {
        "slo_format": 1,
        "name": "bench-backpressure",
        "slos": [
            {
                "name": "queue-depth",
                "indicator": "service.queue_depth",
                "kind": "gauge",
                "threshold": CEILING,
                "objective": 0.5,
                "short_window": 0.05,
                "long_window": 0.5,
                "min_samples": 2,
                "burn_threshold": 1.0,
                "backpressure": True,
            }
        ],
    }
)


def _run_fleet(tmp_path, *, health: bool) -> Dict[str, object]:
    """One overloaded fleet run; returns the per-commit depth profile."""
    label = "health" if health else "baseline"
    store = SlowStore(
        SQLiteCheckpointStore(str(tmp_path / f"{label}.db")),
        write_delay=WRITE_DELAY,
    )
    engine = (
        HealthEngine(spec=BENCH_SPEC, escalate_after=2, relax_after=3)
        if health
        else HealthEngine.disabled()
    )
    depths: List[int] = []
    pressures: List[str] = []
    with SessionManager(
        store, max_batch=MAX_BATCH, max_depth=1024, health=engine
    ) as manager:
        session = manager.create("hot")
        for index in range(COMMITS):
            session.run_cell(f"x{index} = {index}")
            depths.append(manager.queue.depth())
            manager.health_tick()
            pressures.append(manager.queue.pressure)
    # After the manager closes (drain + stop) every commit is durable.
    stats = manager.queue.stats()
    result: Dict[str, object] = {
        "depths": depths,
        "max_depth_seen": stats["max_depth_seen"]
        if "max_depth_seen" in stats
        else stats["max_depth"],
        "final_pressure": pressures[-1],
        "pressure_levels_hit": sorted(set(pressures)),
        "written": stats["written"],
    }
    if health:
        result["alerts"] = list(engine.evaluator.alerts)
        result["backpressure_transitions"] = engine.stats.backpressure_transitions
    return result


def test_backpressure_caps_queue_depth_under_overload(tmp_path, benchmark):
    baseline = _run_fleet(tmp_path, health=False)
    healthy = _run_fleet(tmp_path, health=True)

    # Nothing was lost in either fleet.
    assert baseline["written"] == COMMITS
    assert healthy["written"] == COMMITS

    # Baseline: producers outpace the writer monotonically — the queue
    # grows far past the ceiling the health run enforces.
    base_peak = max(baseline["depths"])
    assert base_peak >= 3 * CEILING, (
        f"baseline never overloaded (peak depth {base_peak}); "
        "the contrast below would be meaningless"
    )
    assert baseline["final_pressure"] == "accept"

    # Health run: sustained depth burn fired, the controller walked the
    # ladder to `block`, and the depth profile stabilized: every sample
    # after the first block transition fits under ceiling + one in-flight
    # batch.
    assert healthy["alerts"], "the queue-depth SLO never fired"
    assert healthy["backpressure_transitions"] >= 2
    assert "block" in healthy["pressure_levels_hit"]
    tail = healthy["depths"][-8:]
    assert max(tail) <= CEILING + MAX_BATCH, (
        f"depth did not stabilize under the ceiling: tail {tail}"
    )
    assert max(healthy["depths"]) < base_peak

    results = {
        "write_delay_ms": WRITE_DELAY * 1e3,
        "commits": COMMITS,
        "ceiling": CEILING,
        "baseline_peak_depth": base_peak,
        "baseline_final_depth": baseline["depths"][-1],
        "healthy_peak_depth": max(healthy["depths"]),
        "healthy_tail_max_depth": max(tail),
        "healthy_pressure_levels": healthy["pressure_levels_hit"],
        "healthy_backpressure_transitions": healthy["backpressure_transitions"],
        "healthy_alerts_fired": sum(
            1 for a in healthy["alerts"] if a["type"] == "slo_alert_fired"
        ),
        "depth_profile_baseline": baseline["depths"],
        "depth_profile_healthy": healthy["depths"],
    }
    print()
    print(
        f"backpressure demo: baseline peak depth {base_peak} vs "
        f"healthy tail max {max(tail)} (ceiling {CEILING}, "
        f"{healthy['backpressure_transitions']} transitions)"
    )

    existing: Dict[str, object] = {}
    if os.path.exists(ARTIFACT_PATH):
        with open(ARTIFACT_PATH, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing["backpressure"] = results
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
        handle.write("\n")

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def measure_disabled_engine_verb_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled-engine verb call, amortized."""
    engine = HealthEngine.disabled()
    gc.disable()
    try:
        started = time.perf_counter()
        for _ in range(iterations):
            engine.record_commit(0.001)
            engine.record_checkout(0.001)
            engine.ingest_event("commit", {})
            engine.tick()
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return elapsed / (iterations * 4)


def median_commit_seconds() -> float:
    session = KishuSession.init(NotebookKernel(), observe=False)
    session.run_cell("base = [[float(j) for j in range(50)] for _ in range(20)]")
    for index in range(10):
        session.run_cell(f"v{index} = [i * 0.5 for i in range(400)]")
    return statistics.median(m.checkpoint_seconds for m in session.metrics)


def test_disabled_health_engine_overhead_under_budget(benchmark):
    verb_cost = measure_disabled_engine_verb_cost()
    commit_seconds = median_commit_seconds()
    # A service commit touches the disabled engine a handful of times
    # (record + tick + a few event ingests); 10 is a generous allowance.
    calls_per_commit = 10
    overhead_fraction = calls_per_commit * verb_cost / commit_seconds

    print()
    print(
        f"disabled-engine budget: {calls_per_commit} verb calls/commit"
        f" x {verb_cost * 1e9:.0f}ns = "
        f"{calls_per_commit * verb_cost * 1e6:.2f}us"
        f" vs {commit_seconds * 1e3:.2f}ms commit"
        f" -> {overhead_fraction * 100:.4f}% (budget 3%)"
    )

    existing: Dict[str, object] = {}
    if os.path.exists(ARTIFACT_PATH):
        with open(ARTIFACT_PATH, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing["disabled_overhead"] = {
        "verb_cost_ns": verb_cost * 1e9,
        "verb_calls_per_commit": calls_per_commit,
        "median_commit_seconds_disabled": commit_seconds,
        "overhead_fraction": overhead_fraction,
        "budget_fraction": 0.03,
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert overhead_fraction < 0.03, (
        f"disabled health-engine overhead {overhead_fraction * 100:.3f}% "
        "exceeds the 3% commit budget"
    )

    benchmark.pedantic(
        measure_disabled_engine_verb_cost, args=(20_000,), rounds=1, iterations=1
    )
