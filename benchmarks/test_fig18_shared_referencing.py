"""Fig 18: checkpoint/checkout efficiency vs degree of shared referencing.

The §7.7.1 sweep: ten equal arrays, *k* of them bundled in one list, and a
probe cell that modifies one array inside the bundle. As k grows, the
updated co-variable covers more of the state:

* Kishu's probe-cell checkpoint cost grows with k (it must re-check and
  re-store the whole co-variable) until at k = 10 it degenerates to
  DumpSession-like whole-state behaviour;
* CRIU-Incremental's cost stays flat (it stores only the dirty pages of
  the one changed array regardless of bundling);
* at the typical real-notebook regime (small co-variables, Table 7's
  2.57%-of-state average) Kishu is the cheapest.
"""

from __future__ import annotations

import gc

from repro.baselines import CRIUIncrementalMethod, DumpSessionMethod, KishuMethod
from repro.bench import format_table, human_bytes
from repro.workloads import shared_referencing_workload

SWEEP = [1, 2, 4, 6, 8, 10]
ARRAY_KB = 256

METHODS = {
    "Kishu": KishuMethod,
    "CRIU-Incremental": CRIUIncrementalMethod,
    "DumpSession": DumpSessionMethod,
}


def measure(k: int, method_name: str):
    """(probe checkpoint bytes, probe checkpoint seconds, undo seconds)."""
    from repro.bench import run_notebook_with_method

    gc.collect()
    spec = shared_referencing_workload(k, n_arrays=10, array_kb=ARRAY_KB)
    run = run_notebook_with_method(spec, METHODS[method_name])
    probe_index = len(spec.cells) - 1
    probe_cost = run.method.checkpoint_costs[probe_index]
    undo = run.method.checkout(probe_index - 1)
    return probe_cost.bytes_written, probe_cost.seconds, undo.seconds


def test_fig18_shared_referencing_sweep(benchmark):
    results = {}
    for k in SWEEP:
        for name in METHODS:
            results[(k, name)] = measure(k, name)

    rows = []
    for k in SWEEP:
        row = [f"{k}/10 ({k * 10}% of state)"]
        for name in METHODS:
            size, ckpt_seconds, undo_seconds = results[(k, name)]
            row.append(f"{human_bytes(size)} / {undo_seconds * 1e3:.1f}ms")
        rows.append(row)
    print()
    print(
        format_table(
            ["Arrays in co-variable"] + [f"{m} (probe ckpt / undo)" for m in METHODS],
            rows,
            title="Fig 18: probe-cell checkpoint size and undo time vs shared referencing",
        )
    )

    # Kishu's probe checkpoint grows with the co-variable's state share.
    kishu_sizes = [results[(k, "Kishu")][0] for k in SWEEP]
    assert kishu_sizes == sorted(kishu_sizes)
    assert kishu_sizes[-1] > kishu_sizes[0] * 5

    # CRIU-Incremental's stays roughly flat (one dirty array either way) —
    # the paper's point that at 100% bundling it beats Kishu's co-variable
    # granularity.
    criu_sizes = [results[(k, "CRIU-Incremental")][0] for k in SWEEP]
    assert max(criu_sizes) < min(criu_sizes) * 3
    assert criu_sizes[-1] < kishu_sizes[-1] / 2

    # At k = 10 (whole state in one co-variable), Kishu's probe
    # checkpoint approaches DumpSession's whole-state dump.
    kishu_full = results[(10, "Kishu")][0]
    dump_full = results[(10, "DumpSession")][0]
    assert kishu_full > dump_full * 0.5

    # In the typical small-co-variable regime, Kishu's checkpoint is the
    # one-changed-array size — far below a whole-state dump and on par
    # with page-granularity deltas.
    assert results[(1, "Kishu")][0] < results[(1, "DumpSession")][0] / 4
    assert results[(1, "Kishu")][0] < results[(1, "CRIU-Incremental")][0] * 2

    benchmark.pedantic(lambda: measure(2, "Kishu"), rounds=1, iterations=1)
