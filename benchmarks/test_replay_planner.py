"""Replay-planner benchmark: minimal static replay vs full-history rerun.

The fallback path of §5.3 historically re-executed whole dependency
chains. The static :class:`~repro.analysis.dataflow.ReplayPlanner`
instead computes the minimal ordered cell subset reconstructing a target
co-variable, consulting stored payloads as shortcut versions. This
benchmark sweeps the Fig 18 shared-referencing workload — ``k`` of
``n`` arrays bundled into one list co-variable, the probe mutating one
array through the bundle — deletes the probe version's payload, and
measures how many cells the planned checkout actually re-executed.

The counters are deterministic (cell counts, not wall time), so the
assertions hold at any machine speed. Results are written as a JSON
artifact (``REPRO_BENCH_JSON``, default ``BENCH_pr4_replay.json``) for
CI trend tracking.
"""

from __future__ import annotations

import gc
import json
import os

from repro.core.session import KishuSession
from repro.core.storage import StoredPayload
from repro.kernel.kernel import NotebookKernel
from repro.workloads import shared_referencing_workload

ARTIFACT_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr4_replay.json")

N_ARRAYS = 10
ARRAY_KB = 32


def planned_checkout_stats(arrays_in_covariable: int):
    """Run the workload, lose the probe version's payload, check out back
    through the replay engine, and report the planner telemetry."""
    gc.collect()
    kernel = NotebookKernel()
    session = KishuSession.init(kernel)
    spec = shared_referencing_workload(
        arrays_in_covariable, n_arrays=N_ARRAYS, array_kb=ARRAY_KB
    )
    for cell in spec.cells:
        session.run_cell(cell.source)
    target = session.head_id
    bundle_key = session.pool.key_of("bundle")
    version = session.graph.get(target).state.version_of(bundle_key)

    # Diverge the co-variable, then lose the target version's payload.
    session.run_cell("bundle[0][:] = 0.0")
    session.store.write_payload(
        StoredPayload(node_id=version, key=bundle_key, data=None, serializer=None)
    )
    report = session.checkout(target)
    assert bundle_key in report.recomputed_keys

    stats = session.plan_stats
    assert stats.plans_executed == 1, "static replay must carry the checkout"
    assert stats.validation_mismatches == 0
    return {
        "arrays_in_covariable": arrays_in_covariable,
        "full_history_cells": len(spec.cells),
        "cells_replayed": stats.cells_replayed,
        "cells_skipped": stats.cells_skipped,
        "payload_loads": stats.payload_loads,
        "replay_fraction": stats.cells_replayed / len(spec.cells),
    }


def test_replay_planner_minimality(benchmark):
    sweep = [planned_checkout_stats(k) for k in (2, 4, 8)]

    with open(ARTIFACT_PATH, "w") as handle:
        json.dump({"shared_referencing_sweep": sweep}, handle, indent=2)
    print()
    for row in sweep:
        print(
            f"k={row['arrays_in_covariable']}: "
            f"{row['cells_replayed']} of {row['full_history_cells']} cells "
            f"replayed ({row['payload_loads']} payload loads, "
            f"{row['cells_skipped']} skipped)"
        )

    for row in sweep:
        # The acceptance bar: strictly fewer cells than full history,
        # every time.
        assert 0 < row["cells_replayed"] < row["full_history_cells"]
        assert row["cells_skipped"] > 0
    # The replay set tracks the co-variable size: bundling more arrays
    # means more producer cells in the minimal plan.
    replayed = [row["cells_replayed"] for row in sweep]
    assert replayed == sorted(replayed)
    assert replayed[-1] > replayed[0]

    benchmark.pedantic(
        lambda: planned_checkout_stats(4), rounds=1, iterations=1
    )
