"""Table 6: cumulative delta-tracking overhead, Kishu vs baselines (§7.6).

Paper claims re-verified: Kishu tracks the per-execution delta faster than
both IPyFlow (live per-statement resolution) and AblatedKishu (no access
pruning) on every notebook, staying a small fraction of notebook runtime;
IPyFlow fails on StoreSales' complex-control-flow cell.
"""

from __future__ import annotations

import gc

from benchmarks.conftest import BENCH_SCALE, NOTEBOOK_NAMES
from repro.bench import format_table, run_notebook_with_tracker
from repro.libsim.devices import reset_stores
from repro.tracking import AblatedKishuTracker, IPyFlowTracker, KishuTracker
from repro.workloads import build_notebook

TRACKERS = {
    "IPyFlow": IPyFlowTracker,
    "AblatedKishu (Check all)": AblatedKishuTracker,
    "Kishu": KishuTracker,
}


def measure(notebook: str, tracker_name: str):
    gc.collect()
    reset_stores()
    spec = build_notebook(notebook, BENCH_SCALE)
    tracker, runtime = run_notebook_with_tracker(spec, TRACKERS[tracker_name])
    return tracker, runtime


def test_table6_tracking_overhead(benchmark):
    results = {}
    for notebook in NOTEBOOK_NAMES:
        for name in TRACKERS:
            tracker, runtime = measure(notebook, name)
            results[(notebook, name)] = (
                tracker.total_tracking_seconds(),
                runtime,
                tracker.failed,
                tracker.failure_reason,
            )

    rows = []
    for notebook in NOTEBOOK_NAMES:
        row = [notebook]
        for name in TRACKERS:
            seconds, runtime, failed, _ = results[(notebook, name)]
            if failed:
                row.append("FAIL")
            else:
                percent = 100 * seconds / runtime if runtime else 0.0
                row.append(f"{seconds:.3f}s ({percent:.1f}%)")
        rows.append(row)
    print()
    print(
        format_table(
            ["Notebook"] + list(TRACKERS),
            rows,
            title=f"Table 6 (scale={BENCH_SCALE}): delta tracking overhead",
        )
    )

    # Paper: IPyFlow fails on StoreSales (cell 27's control flow).
    assert results[("StoreSales", "IPyFlow")][2], "IPyFlow should fail on StoreSales"

    kishu_fastest = 0
    for notebook in NOTEBOOK_NAMES:
        kishu_seconds = results[(notebook, "Kishu")][0]
        rivals = [
            results[(notebook, name)][0]
            for name in TRACKERS
            if name != "Kishu" and not results[(notebook, name)][2]
        ]
        if rivals and kishu_seconds <= min(rivals):
            kishu_fastest += 1
    # Paper: Kishu is consistently the fastest tracker.
    assert kishu_fastest >= 6, f"Kishu fastest on only {kishu_fastest}/8"

    # Paper: Kishu's pruning beats check-all decisively on the notebook
    # with the widest state (Sklearn's 4936x worst cell; cumulative 13x).
    sklearn_kishu = results[("Sklearn", "Kishu")][0]
    sklearn_ablated = results[("Sklearn", "AblatedKishu (Check all)")][0]
    assert sklearn_ablated > sklearn_kishu * 2

    benchmark.pedantic(lambda: measure("TPS", "Kishu"), rounds=1, iterations=1)
