"""Observability overhead budget + Chrome trace artifact (ISSUE 5 CI).

Two jobs in one module:

* **Disabled-mode overhead budget** — the tentpole's contract is that a
  session built with ``observe=False`` pays near-zero for the
  instrumentation: every ``Observer`` verb bails on one attribute check
  and ``span()`` returns a shared pre-built null context. The budget test
  makes that measurable without A/B timing noise: it times the no-op
  verbs directly (millions of calls, amortized), counts how many verb
  calls one real commit actually issues (from an *enabled* run's recorded
  spans/events/metrics), and asserts

      verb_calls_per_commit x noop_verb_cost  <  3% of median commit time.

  Both factors overcount (the call census doubles spans to count their
  enter+exit, and pads with a flat allowance for registry shortcuts), so
  the bound is conservative.

* **Fig-14 trace artifact** — runs one Fig 14 notebook (TPS) through the
  Kishu method with observation enabled, performs one checkout, and
  writes the Chrome trace-event JSON covering both lifecycles
  (``REPRO_TRACE_OUT``, default ``TRACE_fig14_kishu.json``) for CI
  upload; open it in Perfetto / ``chrome://tracing``.

Results land in ``REPRO_BENCH_JSON`` (default ``BENCH_pr5_obs.json``).
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time

from benchmarks.conftest import BENCH_SCALE
from repro.baselines import KishuMethod
from repro.bench import run_notebook_with_method
from repro.core.session import KishuSession
from repro.kernel.kernel import NotebookKernel
from repro.obs import NO_OBSERVER
from repro.workloads import build_notebook

ARTIFACT_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr5_obs.json")
TRACE_PATH = os.environ.get("REPRO_TRACE_OUT", "TRACE_fig14_kishu.json")

#: Shared-structure cells: enough payload that commits do real work, with
#: aliasing so detection walks shared subtrees — a representative commit.
def workload_cells(n_cells: int = 12):
    cells = ["base = [[float(j) for j in range(50)] for _ in range(20)]"]
    cells.append("bundle = [base[0], base[1], [0.0]]")
    for index in range(n_cells - 2):
        cells.append(f"v{index} = [i * 0.5 for i in range(400)]")
    return cells


def measure_noop_verb_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled-observer verb call, amortized over a tight
    loop mixing every verb a commit path uses."""
    obs = NO_OBSERVER
    gc.disable()
    try:
        started = time.perf_counter()
        for _ in range(iterations):
            with obs.span("bench"):
                pass
            obs.count("bench.counter")
            obs.observe("bench.bytes", 128, (64, 256))
            obs.event("bench_event", reason="none")
            obs.annotate(key=1)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return elapsed / (iterations * 5)


def census_verb_calls_per_commit(cells) -> float:
    """Upper bound on Observer verb calls per commit, from an enabled run.

    Every span start/finish, every event, and every registry write the
    run recorded, divided by commits — plus a flat 25-call allowance per
    commit for gated verbs that recorded nothing (zero counters, disabled
    branches), so the census errs high.
    """
    session = KishuSession.init(NotebookKernel())
    for cell in cells:
        session.run_cell(cell)
    commits = len(session.metrics)
    spans = sum(1 for _ in session.observer.tracer.all_spans())
    events = len(session.observer.events)
    metric_writes = 0
    for name in session.observer.metrics.names():
        instrument = session.observer.metrics.get(name)
        # Histograms know their observation count; counters/gauges count
        # at least one write each (increments are inside the allowance).
        metric_writes += getattr(instrument, "count", 1)
    calls = 2 * spans + events + metric_writes + 25 * commits
    return calls / commits


def median_commit_seconds(cells) -> float:
    session = KishuSession.init(NotebookKernel(), observe=False)
    for cell in cells:
        session.run_cell(cell)
    return statistics.median(m.checkpoint_seconds for m in session.metrics)


def test_disabled_observer_overhead_under_budget(benchmark):
    cells = workload_cells()
    noop_cost = measure_noop_verb_cost()
    calls_per_commit = census_verb_calls_per_commit(cells)
    commit_seconds = median_commit_seconds(cells)

    overhead_seconds = calls_per_commit * noop_cost
    overhead_fraction = overhead_seconds / commit_seconds

    results = {
        "noop_verb_cost_ns": noop_cost * 1e9,
        "verb_calls_per_commit": calls_per_commit,
        "median_commit_seconds_disabled": commit_seconds,
        "overhead_seconds_per_commit": overhead_seconds,
        "overhead_fraction": overhead_fraction,
        "budget_fraction": 0.03,
    }
    print()
    print(
        f"disabled-observer budget: {calls_per_commit:.0f} verb calls/commit"
        f" x {noop_cost * 1e9:.0f}ns = {overhead_seconds * 1e6:.1f}us"
        f" vs {commit_seconds * 1e3:.2f}ms commit"
        f" -> {overhead_fraction * 100:.3f}% (budget 3%)"
    )

    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert overhead_fraction < 0.03, (
        f"disabled-mode observability overhead {overhead_fraction * 100:.2f}% "
        f"exceeds the 3% commit budget"
    )

    benchmark.pedantic(measure_noop_verb_cost, args=(20_000,), rounds=1, iterations=1)


def test_fig14_run_exports_chrome_trace():
    spec = build_notebook("TPS", BENCH_SCALE)
    run = run_notebook_with_method(spec, KishuMethod)
    # One checkout so the trace covers the restore lifecycle too.
    run.method.checkout(0)

    session = run.method.session
    tracer = session.observer.tracer
    names = {span.name for span in tracer.all_spans()}
    assert {"commit", "commit.persist", "checkout", "checkout.apply"} <= names

    tracer.write_chrome_trace(TRACE_PATH)
    payload = json.loads(open(TRACE_PATH, encoding="utf-8").read())
    exported = {event["name"] for event in payload["traceEvents"]}
    assert "commit" in exported and "checkout" in exported
