"""Fig 17: per-cell tracking overhead as a multiple of cell runtime.

Paper claims re-verified on selected notebooks:

* Kishu handles long-running cells (>the notebook's heavy-cell threshold)
  far better than IPyFlow, whose per-statement resolution scales with the
  dynamic statement count of loops and model fits;
* AblatedKishu's overhead grows as the state widens, while Kishu's
  access pruning bounds it (the paper's Sklearn 4936x -> 0.84x).
"""

from __future__ import annotations

import gc

from benchmarks.conftest import BENCH_SCALE
from repro.bench import format_table, run_notebook_with_tracker
from repro.libsim.devices import reset_stores
from repro.tracking import AblatedKishuTracker, IPyFlowTracker, KishuTracker
from repro.workloads import build_notebook

SELECTED = ["TPS", "Sklearn", "HW-LM"]

TRACKERS = {
    "IPyFlow": IPyFlowTracker,
    "AblatedKishu (Check all)": AblatedKishuTracker,
    "Kishu": KishuTracker,
}


def per_cell_ratios(notebook: str, tracker_name: str):
    gc.collect()
    reset_stores()
    spec = build_notebook(notebook, BENCH_SCALE)
    tracker, _ = run_notebook_with_tracker(spec, TRACKERS[tracker_name])
    return [cost.overhead_ratio for cost in tracker.costs], [
        cost.cell_duration for cost in tracker.costs
    ]


def test_fig17_per_cell_overhead(benchmark):
    summary_rows = []
    data = {}
    for notebook in SELECTED:
        for name in TRACKERS:
            ratios, durations = per_cell_ratios(notebook, name)
            data[(notebook, name)] = (ratios, durations)

    def heavy_indices_of(durations):
        """The notebook's long-running cells (the paper marks cells >10 s
        on its own scale): within half of the longest cell's duration."""
        cutoff = max(durations) * 0.5
        return [i for i, d in enumerate(durations) if d >= cutoff and d > 0]

    for notebook in SELECTED:
        for name in TRACKERS:
            ratios, durations = data[(notebook, name)]
            heavy_set = set(heavy_indices_of(durations))
            heavy = [
                ratio
                for i, ratio in enumerate(ratios)
                if i in heavy_set and ratio != float("inf")
            ]
            finite = [r for r in ratios if r != float("inf")]
            summary_rows.append(
                (
                    notebook,
                    name,
                    f"{max(finite):.2f}x" if finite else "-",
                    f"{(sum(heavy) / len(heavy)):.4f}x" if heavy else "-",
                )
            )
    print()
    print(
        format_table(
            ["Notebook", "Tracker", "Max per-cell", "Mean on heavy cells"],
            summary_rows,
            title=f"Fig 17 (scale={BENCH_SCALE}): per-cell tracking overhead (x of cell runtime)",
        )
    )

    # Paper: on long-running (heavy) cells, Kishu's between-cell analysis
    # is orders cheaper than IPyFlow's in-cell resolution.
    for notebook in SELECTED:
        kishu_ratios, durations = data[(notebook, "Kishu")]
        ipyflow_ratios, _ = data[(notebook, "IPyFlow")]
        heavy_indices = heavy_indices_of(durations)
        assert heavy_indices, notebook
        kishu_heavy = sum(kishu_ratios[i] for i in heavy_indices) / len(heavy_indices)
        ipyflow_heavy = sum(ipyflow_ratios[i] for i in heavy_indices) / len(
            heavy_indices
        )
        assert kishu_heavy < max(ipyflow_heavy, 0.5), notebook

    # Paper: AblatedKishu's worst cell on the wide-state notebook is far
    # worse than Kishu's (4936x vs 0.84x in the paper).
    kishu_ratios, _ = data[("Sklearn", "Kishu")]
    ablated_ratios, _ = data[("Sklearn", "AblatedKishu (Check all)")]
    finite_kishu = [r for r in kishu_ratios if r != float("inf")]
    finite_ablated = [r for r in ablated_ratios if r != float("inf")]
    assert max(finite_ablated) > max(finite_kishu)

    benchmark.pedantic(
        lambda: per_cell_ratios("TPS", "Kishu"), rounds=1, iterations=1
    )
