#!/usr/bin/env python3
"""Fault-tolerant time travel: unserializable state and fallback
recomputation (§5.3 of the paper).

Not everything in a notebook pickles: hash objects, generators, live
cursors. Kishu checkpoints what it can and records enough lineage (cell
code + accessed co-variables) to *recompute* the rest at checkout —
recursively, if a dependency is itself unserializable (the paper's
Fig 11 chain).

This example builds a state containing an unpicklable hash object whose
value depends on picklable data, destroys it, and checks out — watching
the restorer load the data and replay the hash cells.

Run:  python examples/fault_tolerant_restore.py
"""

from __future__ import annotations

from repro import Blocklist, KishuSession, NotebookKernel


def main() -> None:
    kernel = NotebookKernel()
    kishu = KishuSession.init(kernel)

    kernel.run_cell("import hashlib")
    kernel.run_cell("records = ['alpha', 'beta', 'gamma']")
    # hashlib objects refuse pickling: this co-variable is checkpointed as
    # a tombstone plus lineage.
    kernel.run_cell("audit = hashlib.sha256()")
    kernel.run_cell("for r in records:\n    audit.update(r.encode())")
    expected = kernel.get("audit").hexdigest()
    target = kishu.head_id

    # Destroy the state.
    kernel.run_cell("del audit\nrecords = None")

    report = kishu.checkout(target)
    print("restored digest matches:", kernel.get("audit").hexdigest() == expected)
    print("loaded co-variables    :", [sorted(k) for k in report.loaded_keys])
    print("recomputed (fallback)  :", [sorted(k) for k in report.recomputed_keys])

    # -- the blocklist (§6.2): force recomputation for silently-mispickling
    # classes -----------------------------------------------------------------
    kernel2 = NotebookKernel()
    kishu2 = KishuSession.init(
        kernel2, blocklist=Blocklist({"SimTopicModel"})
    )
    kernel2.run_cell("from repro.libsim.nlp import SimTopicModel")
    kernel2.run_cell("topics = SimTopicModel(n_topics=4)")
    target2 = kishu2.head_id
    kernel2.run_cell("topics = None")
    report2 = kishu2.checkout(target2)
    print(
        "\nblocklisted class recomputed (never loaded):",
        any("topics" in key for key in report2.recomputed_keys),
    )
    print("topic state intact:", kernel2.get("topics").fitted_state is not None)


if __name__ == "__main__":
    main()
