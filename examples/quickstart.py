#!/usr/bin/env python3
"""Quickstart: attach Kishu to a notebook session and time-travel.

Demonstrates the complete §3.2 workflow from the paper:

1. start a kernel and attach Kishu (``init``),
2. run cells — each one becomes an incremental checkpoint,
3. inspect the checkpoint graph (``log``),
4. undo an irreversible operation (``checkout``),
5. branch: take the session down a different path and switch back.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import KishuSession, NotebookKernel


def main() -> None:
    kernel = NotebookKernel()
    kishu = KishuSession.init(kernel)

    # -- a small data-science session --------------------------------------
    kernel.run_cell("import numpy as np")
    kernel.run_cell("data = np.arange(10.0)")
    kernel.run_cell("stats = {'mean': data.mean(), 'max': data.max()}")
    before_mistake = kishu.head_id

    # -- the mistake: an irreversible in-place operation --------------------
    kernel.run_cell("data *= 0          # oops — wiped the data")
    print("after the mistake :", kernel.get("data"))

    # -- the log shows every checkpoint --------------------------------------
    print("\ncheckpoint log:")
    for entry in kishu.log():
        marker = "*" if entry.is_head else " "
        print(f"  {marker} {entry.node_id}: {entry.code_preview}")

    # -- time-travel: undo the cell as if it never happened ------------------
    report = kishu.checkout(before_mistake)
    print("\nafter checkout    :", kernel.get("data"))
    print(
        f"restored {len(report.loaded_keys)} co-variable(s), "
        f"{len(report.identical_keys)} left untouched, "
        f"in {report.seconds * 1e3:.1f} ms"
    )

    # -- branching: explore an alternative path -------------------------------
    kernel.run_cell("result = data.sum()")
    branch_a = kishu.head_id
    kishu.checkout(before_mistake)
    kernel.run_cell("result = data.prod()")
    branch_b = kishu.head_id

    kishu.checkout(branch_a)
    print("\nbranch A result   :", kernel.get("result"))
    kishu.checkout(branch_b)
    print("branch B result   :", kernel.get("result"))


if __name__ == "__main__":
    main()
