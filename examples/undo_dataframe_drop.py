#!/usr/bin/env python3
"""Un-drop a dataframe column — the paper's motivating use case (§1).

"The user cannot 'un-drop' a dataframe column": a dropped column is gone
from the frame, and rerunning cells to rebuild it is slow (and wrong if
anything upstream was random). With Kishu attached, the drop is a
checkpointed cell execution, and the pre-drop state is one checkout away.

This example also shows *incrementality* (§5.2): the session holds a
large main frame next to the small auxiliary frame being repaired, and
the checkout loads only the auxiliary frame's co-variable — the main
frame's objects in the kernel are reused untouched.

Run:  python examples/undo_dataframe_drop.py
"""

from __future__ import annotations

from repro import KishuSession, NotebookKernel


def main() -> None:
    kernel = NotebookKernel()
    kishu = KishuSession.init(kernel)

    kernel.run_cell("from repro.frame import DataFrame")
    kernel.run_cell("main_df = DataFrame.from_random(200_000, 12, seed=1)")
    kernel.run_cell("aux_df = DataFrame.from_random(2_000, 6, seed=2)")
    kernel.run_cell("aux_means = {c: float(aux_df[c].mean()) for c in aux_df.columns}")
    before_drop = kishu.head_id
    main_frame_object = kernel.get("main_df")

    print("columns before    :", kernel.get("aux_df").columns)
    kernel.run_cell("aux_df = aux_df.drop('c3')")
    print("columns after drop:", kernel.get("aux_df").columns)

    report = kishu.checkout(before_drop)
    print("columns restored  :", kernel.get("aux_df").columns)

    # Incrementality: only the auxiliary frame moved.
    print(f"\nco-variables loaded   : {[sorted(k) for k in report.loaded_keys]}")
    print(f"co-variables untouched: {len(report.identical_keys)}")
    print(f"bytes loaded          : {report.bytes_loaded:,}")
    print(
        "main frame object reused in-kernel:",
        kernel.get("main_df") is main_frame_object,
    )
    print(f"checkout latency      : {report.seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
