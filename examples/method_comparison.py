#!/usr/bin/env python3
"""Mini-evaluation: run one notebook under every checkpointing method.

A condensed version of the paper's §7.3–7.5 on a single workload: runs
the Sklearn text-mining notebook under Kishu and all five baselines,
reporting per-method checkpoint storage, checkpoint time, and the latency
of undoing the auxiliary-dataframe column drop — the numbers behind
Figs 13–15.

Run:  python examples/method_comparison.py           (scaled down)
      REPRO_SCALE=1.0 python examples/method_comparison.py
"""

from __future__ import annotations

import gc
import os

from repro.baselines import (
    CRIUIncrementalMethod,
    CRIUMethod,
    DetReplayMethod,
    DumpSessionMethod,
    ElasticNotebookMethod,
    KishuMethod,
)
from repro.bench import format_table, human_bytes, human_seconds, undo_experiment
from repro.bench.disk import paper_nfs_disk
from repro.libsim.devices import reset_stores
from repro.workloads import build_sklearn

METHODS = [
    KishuMethod,
    DetReplayMethod,
    CRIUMethod,
    CRIUIncrementalMethod,
    DumpSessionMethod,
    ElasticNotebookMethod,
]


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.2"))
    spec = build_sklearn(scale)
    print(f"notebook: {spec.name} ({spec.cell_count} cells, scale={scale})\n")

    rows = []
    for factory in METHODS:
        gc.collect()
        reset_stores()
        run, undos = undo_experiment(
            spec, factory, max_targets=2, disk=paper_nfs_disk()
        )
        usable = [u.cost.seconds for u in undos if not u.cost.failed]
        rows.append(
            (
                run.method.name,
                human_bytes(run.total_storage_bytes),
                human_seconds(run.total_checkpoint_seconds),
                human_seconds(min(usable)) if usable else "FAIL",
                run.checkpoint_failures,
            )
        )

    print(
        format_table(
            ["Method", "Storage", "Checkpoint time", "Best undo", "Failures"],
            rows,
        )
    )
    print(
        "\nExpected shape (paper Figs 13-15): Kishu stores least, checkpoints"
        "\nfast, and undoes in milliseconds; CRIU variants restore slowest."
    )


if __name__ == "__main__":
    main()
