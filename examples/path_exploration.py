#!/usr/bin/env python3
"""Path-based exploration: compare model variants by switching branches.

The paper's second use case (§2.1): a data scientist preprocesses once,
then explores several modelling paths. With Kishu, each path's variations
live as incremental deltas against the shared state, and switching paths
updates only the objects that differ — the (large) input data never
reloads.

This example fits Gaussian-mixture-style models with two different k
values on two branches rooted at the same preprocessed state, then
switches between them to compare results — the Fig 10 scenario.

Run:  python examples/path_exploration.py
"""

from __future__ import annotations

from repro import KishuSession, NotebookKernel


def main() -> None:
    kernel = NotebookKernel()
    kishu = KishuSession.init(kernel)

    # Shared prefix: load + preprocess (t1 in the paper's Fig 10).
    kernel.run_cell("import numpy as np")
    kernel.run_cell(
        "from repro.libsim.machine_learning import SimGaussianMixture"
    )
    kernel.run_cell(
        "data = np.concatenate([np.random.default_rng(0).normal(0, 1, 50_000),"
        " np.random.default_rng(1).normal(8, 1, 50_000)])"
    )
    shared_state = kishu.head_id

    # Branch 1: fit with k=3, then derive a plot (t2 -> t3).
    kernel.run_cell("gmm = SimGaussianMixture(k=3, seed=0).fit(data[:2000])")
    kernel.run_cell("plot = gmm.result()")
    branch_k3 = kishu.head_id
    print("branch k=3 means:", kernel.get("plot")["means"].round(2))

    # Back to the shared state; branch 2: fit with k=10 (t4 -> t5).
    kishu.checkout(shared_state)
    kernel.run_cell("gmm = SimGaussianMixture(k=10, seed=0).fit(data[:2000])")
    kernel.run_cell("plot = gmm.result()")
    branch_k10 = kishu.head_id
    print("branch k=10 means:", kernel.get("plot")["means"].round(2))

    # Switch back and forth; only {gmm} and {plot} move, never {data}.
    report = kishu.checkout(branch_k3)
    print("\nswitch to k=3:")
    print("  loaded    :", [sorted(k) for k in report.loaded_keys])
    print("  identical :", [sorted(k) for k in report.identical_keys])
    assert any("data" in key for key in report.identical_keys)

    report = kishu.checkout(branch_k10)
    print("switch to k=10:")
    print("  loaded    :", [sorted(k) for k in report.loaded_keys])
    print(f"  latency   : {report.seconds * 1e3:.1f} ms")

    print("\nfinal state is branch k=10:", len(kernel.get("plot")["means"]) == 10)


if __name__ == "__main__":
    main()
